//! Detector overhead bench (the "Avg. test time / Avg. update time" rows of
//! Table III): per-observation update cost of every detector on a fixed
//! pre-generated slice of an imbalanced drifting stream.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rbm_im_detectors::Observation;
use rbm_im_harness::detectors::DetectorKind;
use rbm_im_streams::registry::{benchmark_by_name, BuildConfig};
use rbm_im_streams::StreamExt;

fn bench_overhead(c: &mut Criterion) {
    rbm_im_bench::print_runner_metadata();
    let build =
        BuildConfig { seed: 42, scale_divisor: 1_000, n_drifts: 1, dynamic_imbalance: true };
    let spec = benchmark_by_name("RBF5").expect("RBF5 exists");
    let mut stream = spec.build(&build);
    let instances = stream.take_instances(2_000);

    let mut group = c.benchmark_group("detector_overhead");
    group.sample_size(10);
    group.throughput(Throughput::Elements(instances.len() as u64));
    for detector_kind in DetectorKind::all() {
        group.bench_with_input(
            BenchmarkId::new("update", detector_kind.name()),
            &detector_kind,
            |b, &kind| {
                b.iter(|| {
                    let mut detector = kind.build(spec.features, spec.classes);
                    for (i, inst) in instances.iter().enumerate() {
                        let obs = Observation::new(
                            &inst.features,
                            inst.class,
                            (inst.class + i % 2) % spec.classes,
                        );
                        detector.update(&obs);
                    }
                    detector
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
