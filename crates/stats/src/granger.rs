//! Granger causality test on (optionally first-differenced) time series.
//!
//! RBM-IM's detection rule (paper Sec. V-B) runs a Granger causality test
//! between the reconstruction-error trend series of consecutive mini-batch
//! windows for each class. Because the trend series are non-stationary, the
//! paper applies the first-difference variant of the test. If the null
//! hypothesis "the past of series X does not help predict series Y" is
//! *rejected for the no-causality direction* — i.e. no Granger-causal
//! relationship is found between the old-window trend and the new-window
//! trend — RBM-IM signals a concept drift for that class.
//!
//! The implementation is the standard nested-regression F-test:
//!
//! * restricted model:   `y_t = a + Σ_i b_i · y_{t-i} + e_t`
//! * unrestricted model: `y_t = a + Σ_i b_i · y_{t-i} + Σ_i c_i · x_{t-i} + e_t`
//! * `F = ((RSS_r − RSS_u)/p) / (RSS_u/(n − 2p − 1))` ~ `F(p, n − 2p − 1)`

use crate::descriptive::first_differences;
use crate::distributions::{ContinuousDistribution, FisherF};
use crate::matrix::Matrix;
use crate::regression::ols_multi;
use crate::{Result, StatsError};

/// Outcome of a Granger causality test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GrangerResult {
    /// The F statistic of the nested-model comparison.
    pub f_statistic: f64,
    /// The p-value under `F(lags, n - 2*lags - 1)`.
    pub p_value: f64,
    /// Number of lags used.
    pub lags: usize,
    /// Effective number of observations entering the regressions.
    pub n_effective: usize,
    /// Whether the null hypothesis "x does not Granger-cause y" is rejected
    /// at the significance level passed to the test.
    pub causality_found: bool,
}

/// Configuration of the Granger test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GrangerConfig {
    /// Number of lags included in both regressions.
    pub lags: usize,
    /// Significance level for rejecting the no-causality null.
    pub alpha: f64,
    /// Whether to first-difference both series before testing (the variant
    /// the paper uses for non-stationary trend series).
    pub first_difference: bool,
}

impl Default for GrangerConfig {
    fn default() -> Self {
        GrangerConfig { lags: 1, alpha: 0.05, first_difference: true }
    }
}

/// Tests whether `x` Granger-causes `y` using `config.lags` lags.
///
/// Both series must have the same length. After (optional) first
/// differencing there must be at least `3 * lags + 2` observations so the
/// unrestricted regression has positive residual degrees of freedom.
///
/// Degenerate inputs (constant series after differencing, collinear lag
/// matrices) are treated as "no evidence of change": the function returns a
/// result with `p_value = 1.0` and `causality_found = false` rather than an
/// error, because in the streaming setting a flat reconstruction-error trend
/// means the detector simply has nothing to react to.
pub fn granger_causality(x: &[f64], y: &[f64], config: &GrangerConfig) -> Result<GrangerResult> {
    if config.lags == 0 {
        return Err(StatsError::InvalidParameter("lags must be >= 1".into()));
    }
    if !(0.0..1.0).contains(&config.alpha) || config.alpha == 0.0 {
        return Err(StatsError::InvalidParameter(format!(
            "alpha must be in (0,1), got {}",
            config.alpha
        )));
    }
    if x.len() != y.len() {
        return Err(StatsError::InvalidParameter(format!(
            "series lengths differ: {} vs {}",
            x.len(),
            y.len()
        )));
    }
    let (xs, ys): (Vec<f64>, Vec<f64>) = if config.first_difference {
        (first_differences(x), first_differences(y))
    } else {
        (x.to_vec(), y.to_vec())
    };
    let p = config.lags;
    let min_len = 3 * p + 2;
    if ys.len() < min_len {
        return Err(StatsError::InsufficientData { needed: min_len, got: ys.len() });
    }

    let n_eff = ys.len() - p;
    // Build design matrices.
    let mut restricted_rows = Vec::with_capacity(n_eff);
    let mut unrestricted_rows = Vec::with_capacity(n_eff);
    let mut response = Vec::with_capacity(n_eff);
    for t in p..ys.len() {
        let mut r_row = Vec::with_capacity(1 + p);
        let mut u_row = Vec::with_capacity(1 + 2 * p);
        r_row.push(1.0);
        u_row.push(1.0);
        for lag in 1..=p {
            r_row.push(ys[t - lag]);
            u_row.push(ys[t - lag]);
        }
        for lag in 1..=p {
            u_row.push(xs[t - lag]);
        }
        restricted_rows.push(r_row);
        unrestricted_rows.push(u_row);
        response.push(ys[t]);
    }

    let restricted = ols_multi(&Matrix::from_rows(&restricted_rows), &response);
    let unrestricted = ols_multi(&Matrix::from_rows(&unrestricted_rows), &response);
    let (rss_r, rss_u, df_resid) = match (restricted, unrestricted) {
        (Ok(r), Ok(u)) => (r.rss, u.rss, u.residual_df()),
        // Collinear / constant lag structure: nothing informative to test.
        (Err(StatsError::SingularMatrix), _) | (_, Err(StatsError::SingularMatrix)) => {
            return Ok(GrangerResult {
                f_statistic: 0.0,
                p_value: 1.0,
                lags: p,
                n_effective: n_eff,
                causality_found: false,
            })
        }
        (Err(e), _) | (_, Err(e)) => return Err(e),
    };

    if df_resid == 0 {
        return Err(StatsError::InsufficientData { needed: min_len + 1, got: ys.len() });
    }

    // Residual variance of the unrestricted model; if it is (numerically)
    // zero the fit is perfect and the restricted model either matches it
    // (no causality) or is strictly worse (full causality).
    let denom = rss_u / df_resid as f64;
    let numer = (rss_r - rss_u).max(0.0) / p as f64;
    let (f_stat, p_value) = if denom < 1e-18 {
        if numer < 1e-18 {
            (0.0, 1.0)
        } else {
            (f64::INFINITY, 0.0)
        }
    } else {
        let f = numer / denom;
        let dist = FisherF::new(p as f64, df_resid as f64);
        (f, dist.sf(f))
    };

    Ok(GrangerResult {
        f_statistic: f_stat,
        p_value,
        lags: p,
        n_effective: n_eff,
        causality_found: p_value < config.alpha,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-noise (no RNG dependency needed in unit tests).
    fn noise(i: usize, scale: f64) -> f64 {
        ((i as f64 * 12.9898).sin() * 43758.5453).fract() * scale
    }

    #[test]
    fn detects_strong_causality() {
        // y_t = 0.9 * x_{t-1} + small noise → x Granger-causes y.
        let n = 200;
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin() + noise(i, 0.05)).collect();
        let mut y = vec![0.0; n];
        for t in 1..n {
            y[t] = 0.9 * x[t - 1] + noise(t + 1000, 0.05);
        }
        let cfg = GrangerConfig { lags: 2, alpha: 0.05, first_difference: false };
        let res = granger_causality(&x, &y, &cfg).unwrap();
        assert!(res.causality_found, "expected causality, p = {}", res.p_value);
        assert!(res.f_statistic > 10.0);
    }

    #[test]
    fn independent_series_show_no_causality() {
        // Proper pseudo-random noise (the sine-hash helper has serial
        // structure that a 2-lag regression can latch onto).
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2024);
        let n = 300;
        let x: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() - 0.5).collect();
        let y: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() - 0.5).collect();
        let cfg = GrangerConfig { lags: 2, alpha: 0.01, first_difference: false };
        let res = granger_causality(&x, &y, &cfg).unwrap();
        assert!(
            !res.causality_found,
            "independent noise must not show causality (p = {})",
            res.p_value
        );
    }

    #[test]
    fn first_differencing_handles_shared_trend() {
        // Two series with the same deterministic trend but independent
        // innovations: on levels a spurious relationship may appear, on
        // first differences it must not.
        let n = 300;
        let x: Vec<f64> = (0..n).map(|i| 0.05 * i as f64 + noise(i, 0.5)).collect();
        let y: Vec<f64> = (0..n).map(|i| 0.05 * i as f64 + noise(i + 31337, 0.5)).collect();
        let cfg = GrangerConfig { lags: 1, alpha: 0.01, first_difference: true };
        let res = granger_causality(&x, &y, &cfg).unwrap();
        assert!(!res.causality_found, "differenced independent series: p = {}", res.p_value);
    }

    #[test]
    fn constant_series_yield_no_causality_not_error() {
        let x = vec![1.0; 50];
        let y = vec![2.0; 50];
        let cfg = GrangerConfig::default();
        let res = granger_causality(&x, &y, &cfg).unwrap();
        assert!(!res.causality_found);
        assert_eq!(res.p_value, 1.0);
    }

    #[test]
    fn identical_series_perfect_fit_path() {
        // y lags behind x exactly; both regressions can become near-perfect.
        let n = 60;
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.2).sin()).collect();
        let mut y = vec![0.0; n];
        y[1..n].copy_from_slice(&x[..(n - 1)]);
        let cfg = GrangerConfig { lags: 1, alpha: 0.05, first_difference: false };
        let res = granger_causality(&x, &y, &cfg).unwrap();
        assert!(res.causality_found);
    }

    #[test]
    fn error_cases() {
        let x = vec![1.0, 2.0, 3.0];
        let y = vec![1.0, 2.0];
        assert!(matches!(
            granger_causality(&x, &y, &GrangerConfig::default()),
            Err(StatsError::InvalidParameter(_))
        ));
        let short = vec![1.0, 2.0, 3.0];
        assert!(matches!(
            granger_causality(&short, &short, &GrangerConfig::default()),
            Err(StatsError::InsufficientData { .. })
        ));
        let long = vec![1.0; 50];
        assert!(matches!(
            granger_causality(&long, &long, &GrangerConfig { lags: 0, ..Default::default() }),
            Err(StatsError::InvalidParameter(_))
        ));
        assert!(matches!(
            granger_causality(&long, &long, &GrangerConfig { alpha: 0.0, ..Default::default() }),
            Err(StatsError::InvalidParameter(_))
        ));
    }

    #[test]
    fn result_reports_configuration() {
        let n = 100;
        let x: Vec<f64> = (0..n).map(|i| noise(i, 1.0)).collect();
        let y: Vec<f64> = (0..n).map(|i| noise(i + 55, 1.0)).collect();
        let cfg = GrangerConfig { lags: 3, alpha: 0.05, first_difference: false };
        let res = granger_causality(&x, &y, &cfg).unwrap();
        assert_eq!(res.lags, 3);
        assert_eq!(res.n_effective, n - 3);
    }
}
