//! Wire-protocol robustness: malformed, truncated, garbage and
//! future-version frames yield clean [`Frame::Error`] replies — never a
//! handler panic, never a poisoned serving plane — and every discarded
//! frame is visible in [`ServeReport::frames_dropped`] on the final report.
//!
//! The fuzz cases are deterministic (fixed cut points, fixed XOR mask per
//! byte position) so a failure reproduces byte-for-byte.

use proptest::prelude::*;
use rbm_im_detectors::{DetectorState, DriftDetector, Observation};
use rbm_im_harness::pipeline::RunConfig;
use rbm_im_harness::registry::{DetectorRegistry, DetectorSpec};
use rbm_im_net::wire::{self, FT_SHUTDOWN};
use rbm_im_net::{ErrorCode, Frame, NetClient, NetServer, NetServerHandle};
use rbm_im_obs::MetricsRegistry;
use rbm_im_serve::{
    ChaosSpillIo, FaultConfig, FaultPlane, FaultRate, FaultSite, IngestError, ServeConfig,
    SnapshotSink,
};
use rbm_im_streams::{Instance, StreamSchema};
use std::io::{BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// A raw (non-`NetClient`) connection for sending hand-crafted bytes.
struct RawConn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl RawConn {
    fn open(addr: SocketAddr) -> RawConn {
        let stream = TcpStream::connect(addr).expect("connect raw");
        stream.set_read_timeout(Some(Duration::from_secs(10))).expect("set read timeout");
        let read_half = stream.try_clone().expect("clone stream");
        RawConn { reader: BufReader::new(read_half), writer: stream }
    }

    fn send(&mut self, bytes: &[u8]) {
        self.writer.write_all(bytes).expect("send raw bytes");
        self.writer.flush().expect("flush raw bytes");
    }

    /// Half-closes the write side (signals EOF to the server while keeping
    /// the read side open for a best-effort error reply).
    fn close_write(&mut self) {
        let _ = self.writer.shutdown(Shutdown::Write);
    }

    fn read_reply(&mut self) -> Result<Frame, wire::WireError> {
        wire::read_frame(&mut self.reader)
    }

    fn expect_error(&mut self, expected: ErrorCode, context: &str) {
        match self.read_reply() {
            Ok(Frame::Error { code, .. }) => {
                assert_eq!(code, expected, "{context}: error code");
            }
            other => panic!("{context}: expected Error({expected}), got {other:?}"),
        }
    }

    /// Drains whatever the server sends until it closes the connection or
    /// the read times out. Used by fuzz cases where any non-panic response
    /// (a reply, or a clean close) is acceptable.
    fn drain_replies(&mut self) {
        loop {
            let mut probe = [0u8; 256];
            match self.reader.read(&mut probe) {
                Ok(0) => return,   // server closed
                Ok(_) => continue, // some reply bytes
                Err(_) => return,  // timeout / reset
            }
        }
    }
}

fn small_config() -> ServeConfig {
    ServeConfig {
        num_shards: 1,
        run: RunConfig { metric_window: 100, ..Default::default() },
        ..Default::default()
    }
}

/// Proves the serving plane behind `addr` is still healthy: a fresh
/// connection can attach, ingest and drain.
fn assert_server_healthy(addr: SocketAddr, probe_id: &str) {
    let client = NetClient::connect(addr).expect("healthy server accepts connections");
    let feed = client
        .attach(probe_id, StreamSchema::new(probe_id, 2, 2), &DetectorSpec::new("ddm"))
        .expect("healthy server attaches");
    feed.ingest_batch(vec![Instance::with_index(vec![0.5, 0.5], 0, 0)])
        .expect("healthy server ingests");
    client.drain().expect("healthy server drains");
    client.detach(probe_id).expect("healthy server detaches");
}

/// Frame-scoped corruption — bad magic, future version, unknown type,
/// trailing garbage, reply frames sent to the server — each gets an error
/// reply on a connection that stays usable, and each is counted.
#[test]
fn frame_scoped_errors_leave_the_connection_usable() {
    let server = NetServer::bind("127.0.0.1:0", small_config()).expect("bind");
    let addr = server.local_addr();
    let mut conn = RawConn::open(addr);

    // Layout of an encoded frame: [0..4] length prefix, [4..8] magic,
    // [8..10] version, [10] frame type, [11..] body.
    let valid = wire::encode_frame(&Frame::Drain);

    let mut bad_magic = valid.clone();
    bad_magic[4..8].copy_from_slice(b"XXXX");
    conn.send(&bad_magic);
    conn.expect_error(ErrorCode::Malformed, "bad magic");

    let mut future_version = valid.clone();
    future_version[8..10].copy_from_slice(&999u16.to_le_bytes());
    conn.send(&future_version);
    conn.expect_error(ErrorCode::UnsupportedVersion, "future version");

    let mut unknown_type = valid.clone();
    unknown_type[10] = 0x7f;
    conn.send(&unknown_type);
    conn.expect_error(ErrorCode::UnknownFrameType, "unknown frame type");

    // A Shutdown frame with trailing garbage is malformed — it must NOT
    // shut the serving plane down.
    let mut trailing = wire::encode_frame(&Frame::Shutdown);
    trailing.extend_from_slice(&[0xde, 0xad, 0xbe]);
    let body_len = (trailing.len() - 4) as u32;
    trailing[0..4].copy_from_slice(&body_len.to_le_bytes());
    conn.send(&trailing);
    conn.expect_error(ErrorCode::Malformed, "trailing garbage on shutdown");

    // Reply frames arriving at the server are a protocol violation.
    conn.send(&wire::encode_frame(&Frame::Ack));
    conn.expect_error(ErrorCode::Malformed, "reply frame sent to server");

    // An undecodable attach spec is a serve error, not a dead connection.
    conn.send(&wire::encode_frame(&Frame::Attach {
        stream: "bad-spec".to_string(),
        schema: StreamSchema::new("bad-spec", 2, 2),
        spec: "%%%not-a-spec%%%".to_string(),
        run: None,
    }));
    conn.expect_error(ErrorCode::Serve, "invalid detector spec");

    // The same connection still serves valid requests.
    conn.send(&wire::encode_frame(&Frame::Drain));
    match conn.read_reply() {
        Ok(Frame::Ack) => {}
        other => panic!("connection should still serve Drain: {other:?}"),
    }
    assert_server_healthy(addr, "probe-after-corruption");

    assert_eq!(
        server.frames_dropped(),
        5,
        "five discarded frames counted (serve errors are not drops)"
    );
    let report = server.shutdown();
    assert_eq!(report.frames_dropped, 5, "drop counter folded into the final report");
    assert_eq!(report.panicked_shards, 0);
}

/// Framing-level garbage — a nonsense length prefix, a frame cut off
/// mid-payload — cannot be resynchronized: the server sends a best-effort
/// error reply, closes that connection, and stays healthy.
#[test]
fn framing_level_garbage_gets_a_best_effort_reply_then_close() {
    let server = NetServer::bind("127.0.0.1:0", small_config()).expect("bind");
    let addr = server.local_addr();

    // An HTTP request: the first four bytes ("GET ") decode as a ~542 MB
    // length prefix, rejected as oversized.
    let mut http = RawConn::open(addr);
    http.send(b"GET / HTTP/1.1\r\nHost: example\r\n\r\n");
    http.expect_error(ErrorCode::Malformed, "HTTP request");
    match http.read_reply() {
        Err(_) => {} // connection closed after the reply
        Ok(frame) => panic!("connection must close after framing failure, got {frame:?}"),
    }

    // A frame truncated mid-payload (write side closed): best-effort error
    // reply, then close.
    let valid = wire::encode_frame(&Frame::Checkpoint { stream: "s".to_string() });
    let mut cut = RawConn::open(addr);
    cut.send(&valid[..valid.len() - 3]);
    cut.close_write();
    cut.expect_error(ErrorCode::Malformed, "truncated mid-payload");

    assert_server_healthy(addr, "probe-after-garbage");
    let report = server.shutdown();
    assert_eq!(report.frames_dropped, 2);
    assert_eq!(report.panicked_shards, 0);
}

/// Every request frame type, truncated at several cut points and with
/// single-byte corruption at every (sampled) position: the server may
/// reply with an error or close the connection, but it never panics and
/// the serving plane stays healthy throughout.
#[test]
fn truncation_and_byte_flip_fuzz_never_panics_the_worker() {
    let server = NetServer::bind("127.0.0.1:0", small_config()).expect("bind");
    let addr = server.local_addr();

    let request_frames: Vec<(&str, Vec<u8>)> = vec![
        (
            "attach",
            wire::encode_frame(&Frame::Attach {
                stream: "fz".to_string(),
                schema: StreamSchema::new("fz", 3, 2),
                spec: "adwin(delta=0.01)".to_string(),
                run: Some(RunConfig::default()),
            }),
        ),
        ("detach", wire::encode_frame(&Frame::Detach { stream: "fz".to_string() })),
        (
            "ingest",
            wire::encode_frame(&Frame::Ingest {
                stream: "fz".to_string(),
                blocking: false,
                instances: vec![
                    Instance::with_index(vec![0.25, 0.5, 0.75], 1, 0),
                    Instance::with_index(vec![0.1, 0.2, 0.3], 0, 1),
                ],
            }),
        ),
        ("drain", wire::encode_frame(&Frame::Drain)),
        ("checkpoint", wire::encode_frame(&Frame::Checkpoint { stream: "fz".to_string() })),
        ("shutdown", wire::encode_frame(&Frame::Shutdown)),
        ("subscribe", wire::encode_frame(&Frame::Subscribe)),
    ];

    for (name, bytes) in &request_frames {
        // Truncations: inside the length prefix, inside the header, at the
        // midpoint, one byte short.
        let cuts = [1usize, 6, 10, bytes.len() / 2, bytes.len() - 1];
        for &cut in cuts.iter().filter(|&&c| c < bytes.len()) {
            let mut conn = RawConn::open(addr);
            conn.send(&bytes[..cut]);
            conn.close_write();
            conn.drain_replies(); // error reply or clean close; never a hang
            drop(conn);
            // Truncating a Shutdown frame must not shut the plane down.
            assert!(server.frames_dropped() < u64::MAX, "handle is alive");
        }

        // Single-byte corruption: XOR a fixed mask at every position
        // (sampled past 64 to bound runtime). Positions whose mutation
        // would produce a *valid* Shutdown frame are skipped — a real
        // shutdown is correct behavior, not a robustness failure, and the
        // fuzz loop needs the server to outlive it.
        let positions: Vec<usize> = (0..bytes.len()).filter(|&i| i < 64 || i % 7 == 0).collect();
        for &pos in &positions {
            let mut mutated = bytes.clone();
            mutated[pos] ^= 0xA5;
            if pos == 10 && mutated[10] == FT_SHUTDOWN {
                continue;
            }
            let mut conn = RawConn::open(addr);
            conn.send(&mutated);
            conn.close_write();
            conn.drain_replies();
            drop(conn);
        }
        // After each frame type's batch, the plane must still serve.
        assert_server_healthy(addr, &format!("probe-after-{name}"));
    }

    let report = server.shutdown();
    assert!(
        report.frames_dropped > 0,
        "the fuzz barrage must have produced counted drops, got {}",
        report.frames_dropped
    );
    assert_eq!(report.panicked_shards, 0, "no shard worker panicked under fuzz");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A `MetricsData` frame built from an arbitrary registry state — any
    /// mix of counters, gauges and histogram observations — survives the
    /// RBMC codec byte-for-byte (decode then re-encode is the identity),
    /// and every strict truncation of the encoded frame decodes to a clean
    /// [`WireError`](wire::WireError), never a panic.
    #[test]
    fn metrics_frame_roundtrips_and_truncations_fail_clean(
        counters in prop::collection::vec((0usize..5, 0u64..1 << 48), 0..6),
        gauges in prop::collection::vec((0usize..4, -1_000_000i64..1_000_000), 0..4),
        hist_values in prop::collection::vec(0u64..u64::MAX, 0..64),
        cut_frac in 0.0f64..1.0,
    ) {
        let registry = MetricsRegistry::new();
        for (name, v) in &counters {
            registry.counter(&format!("counter_{name}"), &[]).add(*v);
        }
        for (name, v) in &gauges {
            registry.gauge(&format!("gauge_{name}"), &[("shard", "0")]).set(*v);
        }
        let hist = registry.histogram("rbm_net_request_latency_seconds", &[("frame", "ingest")]);
        for &v in &hist_values {
            hist.record(v);
        }
        let frame = Frame::MetricsData(Box::new(registry.snapshot()));
        let bytes = wire::encode_frame(&frame);

        let mut cursor = &bytes[..];
        let back = wire::read_frame(&mut cursor).expect("decode full frame");
        prop_assert!(cursor.is_empty(), "frame fully consumed");
        prop_assert_eq!(wire::encode_frame(&back), bytes.clone(), "re-encode is the identity");

        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        if cut < bytes.len() {
            let mut truncated = &bytes[..cut];
            prop_assert!(
                wire::read_frame(&mut truncated).is_err(),
                "truncation at {cut}/{} must fail clean", bytes.len()
            );
        }
    }
}

/// A TCP client can fetch a `Metrics` snapshot and a `HealthSnapshot`
/// mid-run: structural counters (enqueued/processed instances) are always
/// recorded, so the snapshot is non-trivial even without `RBM_OBS=on`, and
/// the breakdown counters surface wire drops per category.
#[test]
fn metrics_and_health_are_queryable_mid_run() {
    let server = NetServer::bind("127.0.0.1:0", small_config()).expect("bind");
    let addr = server.local_addr();
    let client = NetClient::connect(addr).expect("connect");
    let feed = client
        .attach("feed", StreamSchema::new("feed", 2, 2), &DetectorSpec::new("ddm"))
        .expect("attach");
    feed.ingest_batch((0..50).map(|i| Instance::with_index(vec![0.3, 0.7], 0, i)).collect())
        .expect("ingest");
    client.drain().expect("drain");

    let snapshot = client.metrics().expect("metrics over the wire");
    assert_eq!(snapshot.counter_total("rbm_serve_processed_instances_total"), 50);
    assert_eq!(snapshot.counter_total("rbm_net_frames_dropped_total"), 0);

    let health = client.health().expect("health over the wire");
    assert_eq!(health.streams, 1);
    assert_eq!(health.shards.len(), 1);
    assert_eq!(health.shards[0].processed_instances, 50);

    // A dropped frame ticks the right category — visible mid-run in the
    // next snapshot, and in the final report's breakdown.
    let mut raw = RawConn::open(addr);
    let mut unknown = wire::encode_frame(&Frame::Drain);
    unknown[10] = 0x7f;
    raw.send(&unknown);
    raw.expect_error(ErrorCode::UnknownFrameType, "unknown frame type");
    let snapshot = client.metrics().expect("metrics after drop");
    assert_eq!(snapshot.counter_total("rbm_net_frames_dropped_total"), 1);

    let report = client.shutdown().expect("shutdown");
    assert_eq!(report.frames_dropped, 1);
    assert_eq!(report.frames_dropped_by.unknown_frame_type, 1);
    assert_eq!(report.frames_dropped_by.total(), 1);
    server.shutdown();
}

/// A detector whose `update` blocks on a gate — holds the single shard
/// worker mid-step so queue backpressure becomes deterministic (the same
/// device as the in-process serving suite).
struct GateDetector {
    gate: Arc<(Mutex<GateState>, Condvar)>,
}

#[derive(Default)]
struct GateState {
    open: bool,
    entered: bool,
}

impl DriftDetector for GateDetector {
    fn update(&mut self, _observation: &Observation<'_>) -> DetectorState {
        let (lock, condvar) = &*self.gate;
        let mut state = lock.lock().unwrap();
        state.entered = true;
        condvar.notify_all();
        while !state.open {
            state = condvar.wait(state).unwrap();
        }
        DetectorState::Stable
    }
    fn state(&self) -> DetectorState {
        DetectorState::Stable
    }
    fn reset(&mut self) {}
    fn name(&self) -> &'static str {
        "Gate"
    }
}

/// Shard backpressure crosses the wire: a non-blocking ingest against a
/// full queue gets a `Busy` reply carrying the rejected count, and the
/// client maps it back onto `IngestError::Full` with the instances intact.
#[test]
fn busy_reply_carries_the_rejected_count() {
    let gate = Arc::new((Mutex::new(GateState::default()), Condvar::new()));
    let mut registry = DetectorRegistry::with_defaults();
    {
        let gate = Arc::clone(&gate);
        registry.register("gate", &[], move |_, _, _| {
            Ok(Box::new(GateDetector { gate: Arc::clone(&gate) }))
        });
    }
    let capacity = 4;
    let server = NetServer::bind_with_registry(
        "127.0.0.1:0",
        ServeConfig {
            num_shards: 1,
            queue_capacity: capacity,
            run: RunConfig { metric_window: 100, detector_batch: 1, ..Default::default() },
            ..Default::default()
        },
        Arc::new(registry),
    )
    .expect("bind");
    let addr = server.local_addr();

    let client = NetClient::connect(addr).expect("connect");
    let feed = client
        .attach("gated", StreamSchema::new("gated", 2, 2), &DetectorSpec::new("gate"))
        .expect("attach");
    let instance = |i: u64| Instance::with_index(vec![0.0, 1.0], 0, i);

    // First instance: wait until the worker provably holds it inside the
    // detector, so the queue is empty again and counts are exact.
    feed.try_ingest(instance(0)).expect("first instance");
    {
        let (lock, condvar) = &*gate;
        let mut state = lock.lock().unwrap();
        while !state.entered {
            state = condvar.wait(state).unwrap();
        }
    }
    // Fill the queue exactly.
    for i in 0..capacity as u64 {
        feed.try_ingest(instance(1 + i)).expect("fill the queue");
    }

    // Raw-frame view: the server answers Busy with the rejected count.
    let mut raw = RawConn::open(addr);
    raw.send(&wire::encode_frame(&Frame::Ingest {
        stream: "gated".to_string(),
        blocking: false,
        instances: (0..3).map(|i| instance(90 + i)).collect(),
    }));
    match raw.read_reply() {
        Ok(Frame::Busy { rejected }) => assert_eq!(rejected, 3, "whole batch rejected"),
        other => panic!("expected Busy, got {other:?}"),
    }

    // Client view: Busy maps onto IngestError::Full with the instances
    // riding back intact.
    let batch: Vec<Instance> = (0..3).map(|i| instance(80 + i)).collect();
    match feed.try_ingest_batch(batch.clone()) {
        Err(IngestError::Full(rejected)) => assert_eq!(rejected, batch),
        other => panic!("expected Full, got {other:?}"),
    }

    // Open the gate; everything actually queued flows through.
    {
        let (lock, condvar) = &*gate;
        lock.lock().unwrap().open = true;
        condvar.notify_all();
    }
    client.drain().expect("drain");
    let report = client.shutdown().expect("shutdown");
    assert_eq!(report.streams.len(), 1);
    assert_eq!(report.streams[0].result.instances, 1 + capacity as u64);
    assert_eq!(report.frames_dropped, 0, "backpressure is not a protocol error");
    server.shutdown();
}

/// After a wire-initiated shutdown, surviving connections get
/// `Unavailable` error replies (not hangs, not panics) and the local
/// handle still returns the report the wire client received.
#[test]
fn operations_after_shutdown_answer_unavailable() {
    let server: NetServerHandle = NetServer::bind("127.0.0.1:0", small_config()).expect("bind");
    let addr = server.local_addr();

    let first = NetClient::connect(addr).expect("connect first");
    let survivor = NetClient::connect(addr).expect("connect survivor");
    first
        .attach("feed", StreamSchema::new("feed", 2, 2), &DetectorSpec::new("ddm"))
        .expect("attach")
        .ingest_batch(vec![Instance::with_index(vec![0.1, 0.9], 1, 0)])
        .expect("ingest");
    first.drain().expect("drain");
    let report = first.shutdown().expect("wire shutdown");
    assert_eq!(report.streams.len(), 1);
    assert_eq!(report.streams[0].result.instances, 1);

    let is_unavailable = |err: rbm_im_net::NetError| {
        matches!(err, rbm_im_net::NetError::Remote { code: ErrorCode::Unavailable, .. })
    };
    assert!(is_unavailable(survivor.drain().expect_err("drain after shutdown")));
    assert!(is_unavailable(survivor.detach("feed").expect_err("detach after shutdown")));
    assert!(is_unavailable(
        survivor
            .attach("late", StreamSchema::new("late", 2, 2), &DetectorSpec::new("ddm"))
            .expect_err("attach after shutdown")
    ));
    assert!(is_unavailable(survivor.shutdown().expect_err("second shutdown")));

    // The local handle returns the same (stashed) report.
    let local = server.shutdown();
    assert_eq!(local.streams.len(), 1);
    assert_eq!(local.streams[0].result.instances, 1);
}

/// Crash mid-frame on the reply path: the chaos plane cuts a reply in
/// half between the write and the flush of the rest (the same wire state
/// a server killed mid-reply leaves behind). The client surfaces a clean
/// error — never a hang, never a garbage decode adopted as truth — the
/// connection is dead afterwards, and a fresh connection finds the stream
/// intact with every pre-crash instance still counted.
#[test]
fn truncated_reply_mid_frame_surfaces_cleanly_and_reconnect_recovers() {
    let plane = Arc::new(FaultPlane::new(FaultConfig::quiet(0x7e57_0001)));
    let server = NetServer::bind_with_faults(
        "127.0.0.1:0",
        small_config(),
        Arc::new(DetectorRegistry::with_defaults()),
        Some(Arc::clone(&plane)),
    )
    .expect("bind");
    let addr = server.local_addr();

    // Clean phase: nothing armed, the connection behaves normally.
    let client = NetClient::connect(addr).expect("connect");
    let feed = client
        .attach("crashy", StreamSchema::new("crashy", 2, 2), &DetectorSpec::new("ddm"))
        .expect("attach");
    feed.ingest_batch((0..20).map(|i| Instance::with_index(vec![0.4, 0.6], 0, i)).collect())
        .expect("clean ingest");
    client.drain().expect("clean drain");

    // The next reply is truncated at the midpoint and the connection
    // aborted — exactly a kill between reply write and flush.
    plane.arm(FaultSite::NetTruncate, 1);
    let crashed = client.drain().expect_err("a half-written reply must surface as an error");
    assert!(
        matches!(crashed, rbm_im_net::NetError::Io(_) | rbm_im_net::NetError::Wire(_)),
        "truncation is a transport/decode error, got {crashed:?}"
    );
    assert_eq!(plane.injected(FaultSite::NetTruncate), 1, "exactly one injected truncation");

    // The dead connection stays dead: no silent resynchronization.
    assert!(client.drain().is_err(), "the aborted connection must not come back");

    // Reconnect semantics: the stream and its state live on the server,
    // not the connection. A fresh client resumes it mid-stream.
    let reconnected = NetClient::connect(addr).expect("reconnect");
    let feed = reconnected.client("crashy");
    feed.ingest_batch((0..20).map(|i| Instance::with_index(vec![0.4, 0.6], 1, 20 + i)).collect())
        .expect("ingest after reconnect");
    reconnected.drain().expect("drain after reconnect");
    let result = reconnected.detach("crashy").expect("detach after reconnect");
    assert_eq!(result.instances, 40, "no pre-crash instance was lost");
    assert_server_healthy(addr, "probe-after-reply-truncation");

    let report = server.shutdown();
    assert_eq!(report.panicked_shards, 0);
}

/// The truncation + byte-flip sweep again, this time with the chaos
/// plane live underneath: random hibernate/rehydrate cycles inside the
/// shard worker, delayed replies on the wire, and a [`SnapshotSink`]
/// whose I/O injects ENOSPC and corrupt-on-read while wire-fetched
/// checkpoints are spilled mid-barrage. Malformed bytes plus injected
/// faults must still never panic the plane or lose the live stream.
#[test]
fn fuzz_sweep_survives_an_active_fault_plane_and_faulted_spills() {
    let plane = Arc::new(FaultPlane::new(FaultConfig {
        hibernate: FaultRate::every(0.05),
        net_delay: FaultRate::every(0.25),
        net_delay_ms: 1,
        spill_enospc: FaultRate::every(0.25),
        spill_corrupt_read: FaultRate::every(0.25),
        ..FaultConfig::quiet(0xfa57_c4a0)
    }));
    let server = NetServer::bind_with_faults(
        "127.0.0.1:0",
        small_config(),
        Arc::new(DetectorRegistry::with_defaults()),
        Some(Arc::clone(&plane)),
    )
    .expect("bind");
    let addr = server.local_addr();
    let dir = std::env::temp_dir().join(format!(
        "rbm-net-chaos-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let sink = SnapshotSink::new(&dir)
        .expect("sink")
        .with_io(Arc::new(ChaosSpillIo::new(Arc::clone(&plane))));

    // A live stream keeps real state in play while the barrage runs.
    let client = NetClient::connect(addr).expect("connect");
    let feed = client
        .attach(
            "fz-live",
            StreamSchema::new("fz-live", 3, 2),
            &DetectorSpec::parse("adwin(delta=0.01)").expect("spec"),
        )
        .expect("attach");

    let request_frames: Vec<(&str, Vec<u8>)> = vec![
        (
            "attach",
            wire::encode_frame(&Frame::Attach {
                stream: "fz".to_string(),
                schema: StreamSchema::new("fz", 3, 2),
                spec: "adwin(delta=0.01)".to_string(),
                run: Some(RunConfig::default()),
            }),
        ),
        (
            // NOT the live stream: a byte flip can leave an Ingest frame
            // decodable, and a decodable ingest into the live stream
            // would (correctly) change its instance count.
            "ingest",
            wire::encode_frame(&Frame::Ingest {
                stream: "fz-nobody".to_string(),
                blocking: false,
                instances: vec![Instance::with_index(vec![0.25, 0.5, 0.75], 1, 0)],
            }),
        ),
        ("checkpoint", wire::encode_frame(&Frame::Checkpoint { stream: "fz-live".to_string() })),
        ("drain", wire::encode_frame(&Frame::Drain)),
    ];

    let mut ingested = 0u64;
    let mut failed_spills = 0u64;
    for (round, (name, bytes)) in request_frames.iter().enumerate() {
        for &cut in
            [1usize, 6, 10, bytes.len() / 2, bytes.len() - 1].iter().filter(|&&c| c < bytes.len())
        {
            let mut conn = RawConn::open(addr);
            conn.send(&bytes[..cut]);
            conn.close_write();
            conn.drain_replies();
        }
        for pos in (0..bytes.len()).filter(|&i| i < 32 || i % 11 == 0) {
            let mut mutated = bytes.clone();
            mutated[pos] ^= 0xA5;
            if pos == 10 && mutated[10] == FT_SHUTDOWN {
                continue;
            }
            let mut conn = RawConn::open(addr);
            conn.send(&mutated);
            conn.close_write();
            conn.drain_replies();
        }

        // Interleave real traffic with the garbage: ingest (hibernate
        // chaos thrashes the worker underneath), checkpoint over the
        // wire, spill through the faulted sink, read it back.
        feed.ingest_batch(
            (0..25)
                .map(|i| Instance::with_index(vec![0.2, 0.5, 0.8], (i % 2) as usize, ingested + i))
                .collect(),
        )
        .expect("live ingest under chaos");
        ingested += 25;
        client.drain().expect("live drain under chaos");
        let checkpoint = client.checkpoint_stream("fz-live").expect("checkpoint over the wire");
        match sink.spill_checkpoint(&checkpoint) {
            Ok(_) => match sink.load_checkpoint("fz-live") {
                Ok(Some(loaded)) => assert_eq!(loaded.stream, "fz-live"),
                Ok(None) => panic!("spilled checkpoint vanished"),
                Err(_) => {} // injected corrupt-on-read: a clean load error
            },
            Err(error) => {
                assert!(
                    error.to_string().contains("chaos: injected"),
                    "only injected faults may fail the spill: {error}"
                );
                failed_spills += 1;
            }
        }
        assert_server_healthy(addr, &format!("probe-round-{round}-{name}"));
    }

    // Deterministic floor on spill-fault coverage: an armed burst fails
    // the final spill with certainty, whatever the rate draws did.
    plane.arm(FaultSite::SpillEnospc, 1);
    let last = client.checkpoint_stream("fz-live").expect("final checkpoint");
    let error = sink.spill_checkpoint(&last).expect_err("armed ENOSPC must fail the spill");
    assert!(error.to_string().contains("chaos: injected ENOSPC"), "got: {error}");
    failed_spills += 1;

    assert!(plane.injected(FaultSite::NetDelay) > 0, "reply delays must have fired");
    assert!(plane.injected(FaultSite::SpillEnospc) >= 1, "ENOSPC must have fired");
    assert!(failed_spills >= 1);

    let result = client.detach("fz-live").expect("detach the live stream");
    assert_eq!(result.instances, ingested, "no live instance lost under the barrage");
    let report = server.shutdown();
    assert!(report.frames_dropped > 0, "the barrage must have produced counted drops");
    assert_eq!(report.panicked_shards, 0, "no shard worker panicked under chaos");
    let _ = std::fs::remove_dir_all(&dir);
}
