//! Synthetic data-stream generators.
//!
//! The paper's artificial benchmarks (Table I, bottom half) are produced by
//! four classical MOA generators — Agrawal, rotating Hyperplane, RandomRBF
//! and RandomTree — each instantiated with 5, 10 and 20 classes. This module
//! re-implements those generators natively, plus SEA, LED and a Gaussian
//! mixture generator used by the real-world substitutes and the examples.
//!
//! All generators:
//!
//! * are seeded and fully deterministic (`restart` reproduces the exact
//!   sequence),
//! * produce roughly balanced classes by construction (multi-class label
//!   bands are calibrated on a pilot sample at construction time), so that
//!   the [`imbalance`](crate::imbalance) wrapper has full control over the
//!   class distribution via rejection sampling,
//! * expose a *concept parameter* (Agrawal function id, hyperplane weights,
//!   RBF centroid layout, tree shape) so the [`drift`](crate::drift)
//!   operators can switch or interpolate concepts.

mod agrawal;
mod hyperplane;
mod led;
mod mixture;
mod random_tree;
mod rbf;
mod sea;

pub use agrawal::{AgrawalGenerator, NUM_AGRAWAL_FUNCTIONS};
pub use hyperplane::HyperplaneGenerator;
pub use led::LedGenerator;
pub use mixture::{GaussianClass, GaussianMixtureGenerator};
pub use random_tree::RandomTreeGenerator;
pub use rbf::RandomRbfGenerator;
pub use sea::SeaGenerator;

/// Calibrates `num_classes − 1` thresholds that split the empirical
/// distribution of `scores` into bands of (approximately) equal mass.
///
/// Used by score-based generators (Agrawal, Hyperplane, SEA) to turn a
/// continuous concept score into a roughly balanced multi-class label.
pub(crate) fn quantile_thresholds(scores: &mut [f64], num_classes: usize) -> Vec<f64> {
    assert!(num_classes >= 2);
    assert!(!scores.is_empty());
    scores.sort_by(|a, b| a.partial_cmp(b).expect("scores must not be NaN"));
    let n = scores.len();
    (1..num_classes)
        .map(|k| {
            let pos = (k * n) / num_classes;
            scores[pos.min(n - 1)]
        })
        .collect()
}

/// Maps a score to a class index given ascending `thresholds` (as produced
/// by [`quantile_thresholds`]).
pub(crate) fn class_from_score(score: f64, thresholds: &[f64]) -> usize {
    let mut class = 0usize;
    for &t in thresholds {
        if score > t {
            class += 1;
        } else {
            break;
        }
    }
    class
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{DataStream, StreamExt};

    #[test]
    fn quantile_thresholds_split_evenly() {
        let mut scores: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let t = quantile_thresholds(&mut scores, 4);
        assert_eq!(t.len(), 3);
        assert!((t[0] - 250.0).abs() <= 1.0);
        assert!((t[1] - 500.0).abs() <= 1.0);
        assert!((t[2] - 750.0).abs() <= 1.0);
    }

    #[test]
    fn class_from_score_respects_bands() {
        let thresholds = vec![1.0, 2.0, 3.0];
        assert_eq!(class_from_score(0.5, &thresholds), 0);
        assert_eq!(class_from_score(1.5, &thresholds), 1);
        assert_eq!(class_from_score(2.5, &thresholds), 2);
        assert_eq!(class_from_score(10.0, &thresholds), 3);
        // Boundary values stay in the lower band (score > t strictly).
        assert_eq!(class_from_score(1.0, &thresholds), 0);
    }

    /// Every generator should produce (a) the advertised schema, (b) a
    /// deterministic sequence under restart, and (c) a roughly balanced
    /// class distribution. This exercises all of them through one harness.
    fn check_generator(mut stream: Box<dyn DataStream + Send>, tolerance: f64) {
        let schema = stream.schema().clone();
        let sample = stream.take_instances(4000);
        assert_eq!(sample.len(), 4000);
        for inst in &sample {
            assert_eq!(inst.num_features(), schema.num_features, "{}", schema.name);
            assert!(inst.class < schema.num_classes, "{}", schema.name);
            assert!(inst.features.iter().all(|f| f.is_finite()), "{}", schema.name);
        }
        // Determinism.
        stream.restart();
        let again = stream.take_instances(100);
        assert_eq!(&sample[..100], &again[..], "{} must be deterministic", schema.name);
        // Rough balance.
        let mut counts = vec![0usize; schema.num_classes];
        for inst in &sample {
            counts[inst.class] += 1;
        }
        let expected = sample.len() as f64 / schema.num_classes as f64;
        for (c, &count) in counts.iter().enumerate() {
            assert!(
                (count as f64) > expected * tolerance,
                "{}: class {c} underrepresented ({count} / expected {expected})",
                schema.name
            );
        }
    }

    #[test]
    fn all_generators_satisfy_contract() {
        check_generator(Box::new(AgrawalGenerator::new(1, 5, 42)), 0.4);
        check_generator(Box::new(AgrawalGenerator::new(4, 10, 7)), 0.3);
        check_generator(Box::new(HyperplaneGenerator::new(20, 5, 0.001, 42)), 0.4);
        check_generator(Box::new(HyperplaneGenerator::new(40, 10, 0.0, 9)), 0.3);
        check_generator(Box::new(RandomRbfGenerator::new(20, 5, 3, 0.0, 42)), 0.5);
        check_generator(Box::new(RandomRbfGenerator::new(40, 10, 2, 0.001, 3)), 0.4);
        check_generator(Box::new(RandomTreeGenerator::new(20, 5, 4, 42)), 0.25);
        // SEA's concept score (sum of two uniforms) is triangular, so the
        // outer bands are naturally thinner — a looser balance tolerance.
        check_generator(Box::new(SeaGenerator::new(3, 0.05, 42)), 0.15);
        check_generator(Box::new(LedGenerator::new(0.1, 42)), 0.4);
        check_generator(Box::new(GaussianMixtureGenerator::balanced(8, 6, 2, 42)), 0.5);
    }
}
