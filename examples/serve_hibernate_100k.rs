//! A 100k-stream fleet in bounded memory: the tiered stream state plane
//! end to end, at scale.
//!
//! One hundred thousand drifting feeds are attached, warmed up, and
//! hibernated in waves onto an 8-shard fleet whose hot tier is capped by
//! a [`TierPolicy`] byte budget that is provably too small to hold even
//! one wave — the supervisor evicts LRU streams under the cap while the
//! waves are still ingesting, then demotes the parked in-memory
//! checkpoints to binary spill files so steady-state cold streams cost
//! file-system bytes, not RAM. A skewed phase then drives live traffic at
//! 32 of the 100k feeds — a mixed fleet of the trainable RBM detectors
//! and a classic ADWIN baseline: each feed rehydrates transparently on
//! its first ingest and meets a mid-tail concept drift, while the rest of
//! the fleet stays cold on disk. Nothing is lost: every stream's count is
//! exactly what was ingested, and sampled hot *and* cold streams detach
//! with results bitwise-identical to sequential single-stream runs.
//!
//! Stream count and spill directory are tunable:
//! `RBM_STREAMS=5000 cargo run -p rbm-im-serve --release --example
//! serve_hibernate_100k`
//! (`RBM_SPILL_DIR` overrides the checkpoint spill location.)

use rbm_im_harness::pipeline::{PipelineBuilder, RunConfig, RunResult};
use rbm_im_harness::registry::{DetectorRegistry, DetectorSpec};
use rbm_im_obs::MetricId;
use rbm_im_serve::{
    deterministic_spec, IngestError, ServeConfig, ServerHandle, SnapshotSink, StreamClient,
    Supervisor, SupervisorConfig, TierPolicy,
};
use rbm_im_streams::generators::RandomRbfGenerator;
use rbm_im_streams::{DataStream, Instance, ReplayStream, StreamExt, StreamSchema};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Fleet size (`RBM_STREAMS` overrides; the headline run is 100k).
fn stream_count() -> usize {
    std::env::var("RBM_STREAMS").ok().and_then(|v| v.parse().ok()).unwrap_or(100_000)
}

/// Streams attached + warmed per wave. Each wave alone overflows the hot
/// budget below, so supervisor evictions race the wave's own ingest.
const WAVE: usize = 512;
/// Warm-up instances per stream: enough to finish the detector's warmup
/// (2 minibatches of 10) and settle real pipeline state worth spilling.
const WARMUP_INSTANCES: usize = 24;
/// Feeds that stay live in the skewed phase.
const HOT_FEEDS: usize = 32;
/// Skewed-phase tail per hot feed (concept A, then a drift to concept B).
const TAIL_A: usize = 376;
const TAIL_B: usize = 600;

/// Hot-tier byte budget: 8 MiB ≈ 85 hot streams — far below one wave,
/// let alone the fleet.
const HOT_BUDGET_BYTES: u64 = 8 * 1024 * 1024;

/// Deterministic per-stream feed: every stream's instances regenerate
/// from its seed alone, so nothing but the 32 hot tails is ever held in
/// memory and sampled verification can replay any stream exactly.
fn feed_instances(seed: u64, hot: bool) -> (StreamSchema, Vec<Instance>) {
    let mut gen = RandomRbfGenerator::new(8, 4, 2, 0.0, seed);
    let schema = gen.schema().clone();
    let mut instances = gen.take_instances(WARMUP_INSTANCES);
    if hot {
        instances.extend(gen.take_instances(TAIL_A));
        gen.regenerate();
        instances.extend(gen.take_instances(TAIL_B));
    }
    (schema, instances)
}

fn stream_id(i: usize) -> String {
    format!("stream-{i:06}")
}

fn seed_of(i: usize) -> u64 {
    40_000 + i as u64
}

/// The fleet mixes the trainable RBM detectors with a classic ADWIN
/// baseline, like a real multi-tenant deployment; a short prequential
/// window keeps the 100k checkpoints cheap.
fn spec_of(i: usize) -> DetectorSpec {
    let specs = [
        "rbm(mini_batch=25, warmup=4, persistence=1)",
        "adwin(delta=0.01)",
        "rbm-im(minibatch=25, hidden=8, warmup=4, persistence=1)",
    ];
    DetectorSpec::parse(specs[i % specs.len()]).unwrap()
}

fn run_config() -> RunConfig {
    RunConfig { metric_window: 200, detector_batch: 10, ..Default::default() }
}

fn ingest_all(client: &StreamClient, mut batch: Vec<Instance>) {
    loop {
        match client.try_ingest_batch(batch) {
            Ok(()) => return,
            Err(IngestError::Full(rejected)) => {
                batch = rejected;
                std::thread::yield_now();
            }
            Err(IngestError::Closed(_)) => panic!("shard closed during ingest"),
        }
    }
}

/// Sequential single-stream ground truth with the server's effective
/// (seed-injected) spec.
fn sequential_baseline(
    i: usize,
    id: &str,
    schema: StreamSchema,
    instances: Vec<Instance>,
) -> RunResult {
    let effective = deterministic_spec(
        DetectorRegistry::global(),
        ServeConfig::default().base_seed,
        id,
        &spec_of(i),
    );
    PipelineBuilder::new()
        .stream(ReplayStream::new(schema, instances))
        .stream_label(id.to_string())
        .detector_spec(effective)
        .config(run_config())
        .run()
        .unwrap()
}

fn assert_results_match(context: &str, served: &RunResult, sequential: &RunResult) {
    assert_eq!(served.detections, sequential.detections, "{context}: drift offsets");
    assert_eq!(served.instances, sequential.instances, "{context}: instance count");
    assert_eq!(served.pm_auc, sequential.pm_auc, "{context}: pmAUC");
    assert_eq!(served.pm_gmean, sequential.pm_gmean, "{context}: pmGM");
}

fn cold_resident_bytes(server: &ServerHandle) -> i64 {
    let id = MetricId::new("rbm_serve_cold_resident_bytes", &[]);
    server.metrics().snapshot().gauges.iter().find(|(i, _)| *i == id).map(|(_, v)| *v).unwrap_or(0)
}

fn main() {
    let start = Instant::now();
    let n = stream_count();
    let spill_dir = std::env::var("RBM_SPILL_DIR").map(PathBuf::from).unwrap_or_else(|_| {
        std::env::temp_dir().join(format!("rbm-hibernate-100k-{}", std::process::id()))
    });
    let _ = std::fs::remove_dir_all(&spill_dir);
    let max_hot = (HOT_BUDGET_BYTES / TierPolicy::APPROX_HOT_STREAM_BYTES) as usize;
    // The hot feeds of the skewed phase, spread across the id space (and
    // therefore across shards).
    let hot_stride = (n / HOT_FEEDS).max(1);
    let is_hot = |i: usize| i.is_multiple_of(hot_stride) && i / hot_stride < HOT_FEEDS;

    println!(
        "phase 1: attach + warm up {n} streams in waves of {WAVE}, hot budget {} KiB \
         (max {max_hot} hot)",
        HOT_BUDGET_BYTES / 1024
    );
    let server = Arc::new(ServerHandle::start(ServeConfig {
        num_shards: 8,
        queue_capacity: 256,
        run: run_config(),
        ..Default::default()
    }));
    let supervisor = Supervisor::start(
        Arc::clone(&server),
        SnapshotSink::new(&spill_dir).expect("spill dir"),
        SupervisorConfig {
            tick: Duration::from_millis(2),
            checkpoint: None, // demote spills only — no periodic schedule
            resize: None,
            tier: Some(
                TierPolicy::budget_bytes(HOT_BUDGET_BYTES).with_max_demotions_per_tick(4096),
            ),
        },
    );

    let mut wave_start = 0usize;
    while wave_start < n {
        let wave_end = (wave_start + WAVE).min(n);
        let clients: Vec<StreamClient> = (wave_start..wave_end)
            .map(|i| {
                let (schema, instances) = feed_instances(seed_of(i), false);
                let client = server.attach(&stream_id(i), schema, &spec_of(i)).unwrap();
                // One batch per stream: the whole warm-up is a single shard
                // message, so a mid-wave eviction never splits it.
                ingest_all(&client, instances);
                client
            })
            .collect();
        server.drain();
        // Explicitly hibernate the wave; streams the supervisor's budget
        // pass evicted first come back `AlreadyCold`, which is fine.
        for client in &clients {
            server.hibernate_stream(client.id()).expect("hibernate warmed stream");
        }
        wave_start = wave_end;
        if wave_start.is_multiple_of(WAVE * 32) || wave_start == n {
            let health = server.health();
            println!(
                "  {wave_start:>6}/{n} attached — hot {} / cold {}, cold resident {} KiB",
                health.hot_streams,
                health.cold_streams,
                cold_resident_bytes(&server) / 1024
            );
        }
        // Back-pressure on the demotion pipeline: if parked in-memory
        // checkpoints pile up faster than the supervisor spills them to
        // disk, pause the fill until the backlog drains.
        while cold_resident_bytes(&server) > 2 * HOT_BUDGET_BYTES as i64 {
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    // Let the supervisor demote the last waves' in-memory checkpoints.
    let drain_deadline = Instant::now() + Duration::from_secs(120);
    while cold_resident_bytes(&server) > 0 {
        assert!(Instant::now() < drain_deadline, "cold→disk demotion stalled");
        std::thread::sleep(Duration::from_millis(5));
    }
    let health = server.health();
    assert_eq!(health.hot_streams + health.cold_streams, n, "no stream lost in the fill");
    assert!(
        health.hot_streams <= max_hot,
        "hot tier over budget: {} > {max_hot}",
        health.hot_streams
    );
    println!(
        "  fill done: hot {} / cold {} (≤ {max_hot} hot), cold resident {} B in RAM — \
         cold state lives in {}",
        health.hot_streams,
        health.cold_streams,
        cold_resident_bytes(&server),
        spill_dir.display()
    );

    println!("phase 2: skewed live traffic at {HOT_FEEDS} of {n} feeds (drift mid-tail)");
    std::thread::scope(|scope| {
        for i in (0..n).filter(|&i| is_hot(i)) {
            let server = &server;
            scope.spawn(move || {
                let (_, instances) = feed_instances(seed_of(i), true);
                let client = server.client(&stream_id(i));
                for chunk in instances[WARMUP_INSTANCES..].chunks(50) {
                    ingest_all(&client, chunk.to_vec());
                }
            });
        }
    });
    server.drain();
    let health = server.health();
    assert!(
        health.hot_streams <= max_hot,
        "hot tier over budget after skewed phase: {} > {max_hot}",
        health.hot_streams
    );
    let snapshot = server.metrics().snapshot();
    let rehydrates = snapshot.merged_histogram("rbm_serve_rehydrate_seconds");
    println!(
        "  hot {} / cold {} — {} hibernations, {} rehydrates \
         (p50 {:.3}ms / p99 {:.3}ms)",
        health.hot_streams,
        health.cold_streams,
        snapshot.counter_total("rbm_serve_hibernations_total"),
        rehydrates.count(),
        rehydrates.quantile(0.5) as f64 / 1e6,
        rehydrates.quantile(0.99) as f64 / 1e6,
    );

    println!("phase 3: sampled bitwise verification against sequential runs");
    // Three live feeds and three never-woken cold feeds detach; each must
    // match a sequential run of exactly what it ingested.
    let samples: Vec<(usize, bool)> = vec![
        (0, true),
        (hot_stride * (HOT_FEEDS / 2), true),
        (hot_stride * (HOT_FEEDS - 1), true),
        (1, false),
        (n / 2 + 1, false),
        (n - 1, false),
    ];
    let mut sampled = 0usize;
    for &(i, hot) in &samples {
        assert_eq!(is_hot(i), hot, "sample {i} tier");
        let id = stream_id(i);
        let served = server.detach(&id).expect("detach sample");
        let (schema, instances) = feed_instances(seed_of(i), hot);
        let baseline = sequential_baseline(i, &id, schema, instances);
        let tier = if hot { "hot" } else { "cold" };
        assert_results_match(&format!("{id} ({tier})"), &served, &baseline);
        sampled += 1;
    }
    println!("  {sampled}/{} sampled streams bitwise-identical to sequential runs", samples.len());

    let report = supervisor.stop();
    assert!(report.errors.is_empty(), "supervisor errors: {:?}", report.errors);
    println!(
        "  supervisor: {} hibernations, {} cold→disk demotions, {} spills, 0 errors",
        report.hibernations,
        report.disk_demotions,
        report.periodic_spills + report.urgent_spills,
    );

    // Shutdown rehydrates every remaining cold stream from its spill file
    // and finalizes it; every single stream must report exactly the
    // instances it ingested — nothing lost across 100k tier transitions.
    let shutdown_started = Instant::now();
    let report = Arc::try_unwrap(server).expect("supervisor stopped").shutdown();
    assert_eq!(report.streams.len(), n - samples.len(), "every stream finalized");
    for stream in &report.streams {
        let i: usize = stream.stream.trim_start_matches("stream-").parse().unwrap();
        let expected =
            if is_hot(i) { WARMUP_INSTANCES + TAIL_A + TAIL_B } else { WARMUP_INSTANCES };
        assert_eq!(
            stream.result.instances, expected as u64,
            "{}: lost instances across tier transitions",
            stream.stream
        );
    }
    let drifted = report
        .streams
        .iter()
        .filter(|s| is_hot(s.stream.trim_start_matches("stream-").parse().unwrap()))
        .filter(|s| !s.result.detections.is_empty())
        .count();
    println!(
        "done: {} streams finalized ({} instances, zero lost), {drifted} of the remaining live \
         feeds flagged their drift, shutdown drained the cold tier in {:?}, total wall {:?}",
        report.streams.len(),
        report.total_instances(),
        shutdown_started.elapsed(),
        start.elapsed()
    );
    let _ = std::fs::remove_dir_all(&spill_dir);
}
