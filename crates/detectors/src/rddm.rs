//! RDDM — Reactive Drift Detection Method (de Barros et al., 2017).
//!
//! RDDM is DDM plus a pruning mechanism that discards outdated instances:
//! the concept statistics are periodically recomputed over a bounded recent
//! window, which restores DDM's sensitivity on long stable concepts (where
//! plain DDM becomes numb because `s_i` shrinks with `1/sqrt(n)` while
//! `p_min`/`s_min` freeze at historic lows).
//!
//! This implementation keeps a circular buffer of the most recent
//! prediction outcomes (capped at `max_instances`); when the buffer is full
//! or a warning persists for too long, the statistics are rebuilt from the
//! most recent `min_instances` outcomes only.

use crate::{DetectorState, DriftDetector, Observation};
use std::collections::VecDeque;

/// Configuration of [`Rddm`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RddmConfig {
    /// Warning threshold multiplier (DDM's 2.0 by default, expressed as a
    /// probability-style threshold 0.95 in the paper's grid; the multiplier
    /// formulation is used internally).
    pub warning_level: f64,
    /// Drift threshold multiplier.
    pub drift_level: f64,
    /// Minimum number of recent instances kept after pruning.
    pub min_instances: usize,
    /// Maximum number of instances accumulated before a forced recomputation.
    pub max_instances: usize,
    /// Minimum number of errors before the test activates.
    pub min_errors: u64,
    /// Maximum number of consecutive warning steps before the warning is
    /// escalated to a drift (the "reactive" mechanism).
    pub warning_limit: usize,
}

impl Default for RddmConfig {
    fn default() -> Self {
        RddmConfig {
            warning_level: 1.773,
            drift_level: 2.258,
            min_instances: 3_000,
            max_instances: 30_000,
            min_errors: 30,
            warning_limit: 1_000,
        }
    }
}

/// The RDDM detector.
#[derive(Debug, Clone)]
pub struct Rddm {
    config: RddmConfig,
    /// Recent prediction outcomes (true = error).
    window: VecDeque<bool>,
    n: u64,
    errors: u64,
    p_min: f64,
    s_min: f64,
    warning_steps: usize,
    state: DetectorState,
}

impl Rddm {
    /// Creates an RDDM detector with the default configuration.
    pub fn new() -> Self {
        Self::with_config(RddmConfig::default())
    }

    /// Creates an RDDM detector with an explicit configuration.
    pub fn with_config(config: RddmConfig) -> Self {
        assert!(config.drift_level > config.warning_level);
        assert!(config.max_instances > config.min_instances);
        Rddm {
            config,
            window: VecDeque::with_capacity(config.max_instances),
            n: 0,
            errors: 0,
            p_min: f64::MAX,
            s_min: f64::MAX,
            warning_steps: 0,
            state: DetectorState::Stable,
        }
    }

    /// Rebuilds the running statistics from the most recent
    /// `min_instances` outcomes (the pruning step).
    fn recompute_from_recent(&mut self) {
        let keep = self.config.min_instances.min(self.window.len());
        let start = self.window.len() - keep;
        let recent: Vec<bool> = self.window.iter().skip(start).copied().collect();
        self.window = recent.iter().copied().collect();
        self.n = recent.len() as u64;
        self.errors = recent.iter().filter(|&&e| e).count() as u64;
        self.p_min = f64::MAX;
        self.s_min = f64::MAX;
    }

    fn signal_drift(&mut self) -> DetectorState {
        self.window.clear();
        self.n = 0;
        self.errors = 0;
        self.p_min = f64::MAX;
        self.s_min = f64::MAX;
        self.warning_steps = 0;
        DetectorState::Drift
    }
}

impl Default for Rddm {
    fn default() -> Self {
        Self::new()
    }
}

impl DriftDetector for Rddm {
    fn update(&mut self, observation: &Observation<'_>) -> DetectorState {
        let error = !observation.correct;
        if self.window.len() == self.config.max_instances {
            // Forced pruning: the concept has been stable for a long time.
            self.recompute_from_recent();
        }
        self.window.push_back(error);
        self.n += 1;
        if error {
            self.errors += 1;
        }
        if self.errors < self.config.min_errors {
            self.state = DetectorState::Stable;
            return self.state;
        }
        let p = self.errors as f64 / self.n as f64;
        let s = (p * (1.0 - p) / self.n as f64).sqrt();
        if p + s < self.p_min + self.s_min {
            self.p_min = p;
            self.s_min = s;
        }
        self.state = if p + s >= self.p_min + self.config.drift_level * self.s_min {
            self.signal_drift()
        } else if p + s >= self.p_min + self.config.warning_level * self.s_min {
            self.warning_steps += 1;
            if self.warning_steps >= self.config.warning_limit {
                // Reactive escalation: a warning that never resolves is
                // treated as a (slow) drift.
                self.signal_drift()
            } else {
                DetectorState::Warning
            }
        } else {
            self.warning_steps = 0;
            DetectorState::Stable
        };
        self.state
    }

    fn state(&self) -> DetectorState {
        self.state
    }

    fn reset(&mut self) {
        *self = Rddm::with_config(self.config);
    }

    fn name(&self) -> &'static str {
        "RDDM"
    }

    fn snapshot_state(&self) -> Option<serde::Value> {
        use serde::{Serialize, Value};
        Some(Value::object(vec![
            ("window", self.window.serialize_value()),
            ("n", self.n.serialize_value()),
            ("errors", self.errors.serialize_value()),
            ("p_min", self.p_min.serialize_value()),
            ("s_min", self.s_min.serialize_value()),
            ("warning_steps", self.warning_steps.serialize_value()),
            ("state", self.state.serialize_value()),
        ]))
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), serde::Error> {
        self.window = state.field("window")?;
        self.n = state.field("n")?;
        self.errors = state.field("errors")?;
        self.p_min = state.field("p_min")?;
        self.s_min = state.field("s_min")?;
        self.warning_steps = state.field("warning_steps")?;
        self.state = state.field("state")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{
        assert_detects_abrupt_change, assert_quiet_on_stationary, run_error_stream,
    };

    #[test]
    fn detects_abrupt_error_increase() {
        assert_detects_abrupt_change(&mut Rddm::new(), 800, 2);
    }

    #[test]
    fn quiet_on_stationary_stream() {
        assert_quiet_on_stationary(&mut Rddm::new(), 5);
    }

    #[test]
    fn remains_reactive_after_a_long_stable_concept() {
        // Long stable run (beyond max_instances) followed by a change: the
        // pruning must keep RDDM able to react reasonably fast.
        let config =
            RddmConfig { max_instances: 5_000, min_instances: 1_000, ..Default::default() };
        let mut rddm = Rddm::with_config(config);
        let detections = run_error_stream(&mut rddm, 0.05, 0.4, 20_000, 24_000, 13);
        let delay =
            detections.iter().find(|&&p| p >= 20_000).map(|&p| p - 20_000).unwrap_or(usize::MAX);
        assert!(delay < 1_500, "RDDM should stay reactive after pruning, delay = {delay}");
    }

    #[test]
    fn warning_limit_escalates_to_drift() {
        let config = RddmConfig { warning_limit: 50, ..Default::default() };
        let mut rddm = Rddm::with_config(config);
        // A persistent mild degradation that hovers in the warning zone.
        let detections = run_error_stream(&mut rddm, 0.10, 0.16, 4_000, 12_000, 21);
        assert!(
            detections.iter().any(|&p| p >= 4_000),
            "persistent warnings should eventually escalate, detections: {detections:?}"
        );
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut rddm = Rddm::new();
        run_error_stream(&mut rddm, 0.1, 0.5, 1000, 3000, 4);
        rddm.reset();
        assert_eq!(rddm.state(), DetectorState::Stable);
        assert_eq!(rddm.name(), "RDDM");
    }

    #[test]
    #[should_panic]
    fn invalid_window_config_rejected() {
        Rddm::with_config(RddmConfig {
            min_instances: 100,
            max_instances: 50,
            ..Default::default()
        });
    }
}
