//! Experiment 2 — detection of local concept drifts (Fig. 8).
//!
//! For each artificial benchmark configuration the paper sweeps the number
//! of classes affected by a local drift from 1 to M (drift injected into the
//! smallest classes first) and reports the pmAUC of the classifier driven by
//! each detector. The fewer classes drift, the harder the detection.

use crate::detectors::DetectorKind;
use crate::pipeline::{run_grid_observed, GridStream, RunConfig, RunResult};
use crate::registry::DetectorRegistry;
use rbm_im_streams::drift::DriftKind;
use rbm_im_streams::scenarios::{scenario3, ScenarioConfig};
use serde::{Deserialize, Serialize};

/// Configuration of Experiment 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Experiment2Config {
    /// Detectors to evaluate.
    pub detectors: Vec<DetectorKind>,
    /// Number of features of the synthetic stream.
    pub num_features: usize,
    /// Number of classes M; the sweep runs over 1..=M drifting classes.
    pub num_classes: usize,
    /// Stream length in instances.
    pub length: u64,
    /// Maximum imbalance ratio.
    pub imbalance_ratio: f64,
    /// Number of local drift events injected.
    pub n_drifts: usize,
    /// Seed.
    pub seed: u64,
    /// Which class counts to sweep (defaults to 1..=num_classes when empty).
    pub classes_with_drift: Vec<usize>,
    /// Prequential run settings.
    pub run: RunConfig,
}

impl Default for Experiment2Config {
    fn default() -> Self {
        Experiment2Config {
            detectors: DetectorKind::paper_detectors(),
            num_features: 20,
            num_classes: 5,
            length: 50_000,
            imbalance_ratio: 100.0,
            n_drifts: 2,
            seed: 42,
            classes_with_drift: Vec::new(),
            run: RunConfig::default(),
        }
    }
}

/// One point of the Fig. 8 series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocalDriftPoint {
    /// Number of classes affected by the local drift.
    pub classes_with_drift: usize,
    /// Run outcome of each detector at this point.
    pub runs: Vec<RunResult>,
}

/// Full outcome of Experiment 2: one series per detector.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Experiment2Result {
    /// The swept points, in increasing number of drifting classes.
    pub points: Vec<LocalDriftPoint>,
    /// Detector order.
    pub detectors: Vec<DetectorKind>,
}

impl Experiment2Result {
    /// pmAUC series of one detector, indexed like `points`.
    pub fn series(&self, detector: DetectorKind) -> Vec<f64> {
        self.points
            .iter()
            .map(|p| {
                p.runs
                    .iter()
                    .find(|r| r.detector == detector.name())
                    .map(|r| r.pm_auc)
                    .unwrap_or(f64::NAN)
            })
            .collect()
    }
}

/// Runs the local-drift sweep: all (sweep point × detector) cells form one
/// parallel grid. `progress` fires live as each cell completes (completion
/// order); the returned points are in deterministic sweep order.
pub fn run_experiment2(
    config: &Experiment2Config,
    progress: impl FnMut(usize, &RunResult) + Send,
) -> Experiment2Result {
    let sweep: Vec<usize> = if config.classes_with_drift.is_empty() {
        (1..=config.num_classes).collect()
    } else {
        config.classes_with_drift.clone()
    };
    let detectors: Vec<_> = config.detectors.iter().map(|d| d.spec()).collect();
    let streams: Vec<GridStream> = sweep
        .iter()
        .map(|&k| {
            let scenario_config = ScenarioConfig {
                num_features: config.num_features,
                num_classes: config.num_classes,
                length: config.length,
                imbalance_ratio: config.imbalance_ratio,
                n_drifts: config.n_drifts,
                drift_kind: DriftKind::Sudden,
                seed: config.seed,
            };
            GridStream::new(format!("scenario3-k{k}"), move || {
                scenario3(&scenario_config, k).stream
            })
        })
        .collect();
    // Recover the sweep point of a completed cell from its stream label.
    let k_by_name: std::collections::BTreeMap<String, usize> =
        streams.iter().map(|s| s.name.clone()).zip(sweep.iter().copied()).collect();
    let progress = std::sync::Mutex::new(progress);
    let results =
        run_grid_observed(DetectorRegistry::global(), &detectors, &streams, &config.run, |run| {
            let k = k_by_name[&run.stream];
            (progress.lock().expect("progress sink poisoned"))(k, run);
        })
        .expect("every DetectorKind resolves against the default registry");
    let mut points = Vec::new();
    for (chunk, &k) in results.chunks(detectors.len().max(1)).zip(sweep.iter()) {
        points.push(LocalDriftPoint { classes_with_drift: k, runs: chunk.to_vec() });
    }
    Experiment2Result { points, detectors: config.detectors.clone() }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> Experiment2Config {
        Experiment2Config {
            detectors: vec![DetectorKind::Fhddm, DetectorKind::RbmIm],
            num_features: 8,
            num_classes: 4,
            length: 4_000,
            imbalance_ratio: 10.0,
            n_drifts: 1,
            seed: 3,
            classes_with_drift: vec![1, 4],
            run: RunConfig { metric_window: 500, ..Default::default() },
        }
    }

    #[test]
    fn sweep_produces_one_point_per_class_count() {
        let mut calls = 0usize;
        let result = run_experiment2(&tiny_config(), |_, _| calls += 1);
        assert_eq!(calls, 4);
        assert_eq!(result.points.len(), 2);
        assert_eq!(result.points[0].classes_with_drift, 1);
        assert_eq!(result.points[1].classes_with_drift, 4);
        let series = result.series(DetectorKind::RbmIm);
        assert_eq!(series.len(), 2);
        assert!(series.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn default_sweep_covers_all_class_counts() {
        let config = Experiment2Config { num_classes: 5, ..Default::default() };
        assert!(config.classes_with_drift.is_empty());
        // Only validate the sweep expansion logic, not a full run.
        let sweep: Vec<usize> = (1..=config.num_classes).collect();
        assert_eq!(sweep, vec![1, 2, 3, 4, 5]);
    }
}
