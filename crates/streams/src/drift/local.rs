//! Local concept drift: real drift affecting only a subset of classes.
//!
//! This is the core mechanism behind the paper's Experiment 2 (Fig. 8) and
//! Scenario 3 of the taxonomy: at a scheduled position, the conditional
//! feature distribution `p(x | y)` of the *affected classes only* changes,
//! while the remaining classes keep their concept. A detector that
//! aggregates statistics over the whole stream is easily blinded to such a
//! change when the affected classes are minorities.
//!
//! [`LocalDriftStream`] wraps any base stream and applies a per-class affine
//! feature transform (a rotation-like shuffle plus a shift) to the affected
//! classes once their drift activates. The transform strength ramps
//! according to the configured [`DriftKind`]. Because the transform changes
//! where the affected classes live in feature space, it changes the decision
//! boundary (a *real* drift), not just feature marginals.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::DriftKind;
use crate::instance::{Instance, StreamSchema};
use crate::stream::DataStream;

/// Description of a single local drift event.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalDriftEvent {
    /// Classes whose conditional distribution changes.
    pub affected_classes: Vec<usize>,
    /// Stream position at which the drift starts.
    pub position: u64,
    /// Transition width in instances (ignored for sudden drifts).
    pub width: u64,
    /// Speed profile.
    pub kind: DriftKind,
    /// Magnitude of the feature-space displacement applied to affected
    /// classes (in units of the feature scale; `0.5` is a severe drift).
    pub magnitude: f64,
}

/// Wrapper applying local (per-class) real concept drift to a base stream.
pub struct LocalDriftStream<S> {
    inner: S,
    schema: StreamSchema,
    events: Vec<LocalDriftEvent>,
    /// Per-class random transform parameters, generated lazily per event.
    transforms: Vec<ClassTransform>,
    seed: u64,
    rng: StdRng,
    counter: u64,
}

/// Affine per-class transform: a per-dimension sign/permutation-free shift
/// plus a mild scaling, sufficient to relocate the class in feature space.
#[derive(Debug, Clone)]
struct ClassTransform {
    class: usize,
    event_index: usize,
    shift: Vec<f64>,
    scale: Vec<f64>,
}

impl<S: DataStream> LocalDriftStream<S> {
    /// Wraps `inner` with the given local-drift events.
    ///
    /// # Panics
    /// Panics if any event references a class outside the base schema or
    /// has non-positive magnitude.
    pub fn new(inner: S, events: Vec<LocalDriftEvent>, seed: u64) -> Self {
        let schema = inner.schema().renamed(format!("{}-localdrift", inner.schema().name));
        for e in &events {
            assert!(!e.affected_classes.is_empty(), "a local drift must affect at least one class");
            assert!(e.magnitude > 0.0, "drift magnitude must be > 0");
            for &c in &e.affected_classes {
                assert!(
                    c < schema.num_classes,
                    "class {c} out of range for {} classes",
                    schema.num_classes
                );
            }
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let transforms = Self::build_transforms(&events, schema.num_features, &mut rng);
        LocalDriftStream { inner, schema, events, transforms, seed, rng, counter: 0 }
    }

    fn build_transforms(
        events: &[LocalDriftEvent],
        num_features: usize,
        rng: &mut StdRng,
    ) -> Vec<ClassTransform> {
        let mut transforms = Vec::new();
        for (ei, event) in events.iter().enumerate() {
            for &class in &event.affected_classes {
                let shift: Vec<f64> = (0..num_features)
                    .map(|_| {
                        let direction = if rng.gen::<bool>() { 1.0 } else { -1.0 };
                        direction * rng.gen_range(0.5..1.0) * event.magnitude
                    })
                    .collect();
                let scale: Vec<f64> = (0..num_features)
                    .map(|_| 1.0 + rng.gen_range(-0.3..0.3) * event.magnitude)
                    .collect();
                transforms.push(ClassTransform { class, event_index: ei, shift, scale });
            }
        }
        transforms
    }

    /// The configured drift events.
    pub fn events(&self) -> &[LocalDriftEvent] {
        &self.events
    }

    /// Activation level of event `ei` at stream position `t`: 0 before the
    /// drift, 1 after it completes, intermediate during gradual/incremental
    /// transitions.
    fn activation(&self, ei: usize, t: u64) -> f64 {
        let e = &self.events[ei];
        match e.kind {
            DriftKind::Sudden => {
                if t >= e.position {
                    1.0
                } else {
                    0.0
                }
            }
            DriftKind::Gradual | DriftKind::Incremental => {
                if t < e.position {
                    0.0
                } else if e.width == 0 || t >= e.position + e.width {
                    1.0
                } else {
                    (t - e.position) as f64 / e.width as f64
                }
            }
        }
    }
}

impl<S: DataStream> DataStream for LocalDriftStream<S> {
    fn next_instance(&mut self) -> Option<Instance> {
        let mut inst = self.inner.next_instance()?;
        let t = self.counter;
        for transform in &self.transforms {
            if transform.class != inst.class {
                continue;
            }
            let mut alpha = self.activation(transform.event_index, t);
            if alpha <= 0.0 {
                continue;
            }
            // Gradual drift: instances flip between concepts; incremental:
            // concepts interpolate. Both end in the fully drifted transform.
            if self.events[transform.event_index].kind == DriftKind::Gradual && alpha < 1.0 {
                alpha = if self.rng.gen::<f64>() < alpha { 1.0 } else { 0.0 };
            }
            if alpha <= 0.0 {
                continue;
            }
            for ((f, s), sc) in
                inst.features.iter_mut().zip(transform.shift.iter()).zip(transform.scale.iter())
            {
                let transformed = *f * sc + s;
                *f = *f * (1.0 - alpha) + transformed * alpha;
            }
        }
        inst.index = t;
        self.counter += 1;
        Some(inst)
    }

    fn schema(&self) -> &StreamSchema {
        &self.schema
    }

    fn restart(&mut self) {
        self.inner.restart();
        self.rng = StdRng::seed_from_u64(self.seed);
        // Transforms are deterministic in the seed; rebuild so gradual
        // sampling restarts identically.
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.transforms = Self::build_transforms(&self.events, self.schema.num_features, &mut rng);
        self.rng = rng;
        self.counter = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::RandomRbfGenerator;
    use crate::stream::StreamExt;

    fn class_mean(instances: &[Instance], class: usize, dim: usize) -> Vec<f64> {
        let mut mean = vec![0.0; dim];
        let mut count = 0usize;
        for inst in instances.iter().filter(|i| i.class == class) {
            for (m, f) in mean.iter_mut().zip(inst.features.iter()) {
                *m += f;
            }
            count += 1;
        }
        if count > 0 {
            for m in mean.iter_mut() {
                *m /= count as f64;
            }
        }
        mean
    }

    fn distance(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt()
    }

    #[test]
    fn affected_class_moves_untouched_class_stays() {
        let base = RandomRbfGenerator::new(6, 4, 2, 0.0, 3);
        let event = LocalDriftEvent {
            affected_classes: vec![2],
            position: 2000,
            width: 0,
            kind: DriftKind::Sudden,
            magnitude: 0.6,
        };
        let mut stream = LocalDriftStream::new(base, vec![event], 9);
        let sample = stream.take_instances(4000);
        let before = &sample[..2000];
        let after = &sample[2000..];
        let moved = distance(&class_mean(before, 2, 6), &class_mean(after, 2, 6));
        let stayed = distance(&class_mean(before, 0, 6), &class_mean(after, 0, 6));
        assert!(moved > 0.3, "affected class must relocate, moved {moved}");
        assert!(stayed < 0.1, "untouched class must stay, moved {stayed}");
    }

    #[test]
    fn before_position_nothing_changes() {
        let base = RandomRbfGenerator::new(5, 3, 2, 0.0, 17);
        let mut reference = RandomRbfGenerator::new(5, 3, 2, 0.0, 17);
        let event = LocalDriftEvent {
            affected_classes: vec![0],
            position: 10_000,
            width: 0,
            kind: DriftKind::Sudden,
            magnitude: 0.5,
        };
        let mut stream = LocalDriftStream::new(base, vec![event], 1);
        let wrapped = stream.take_instances(500);
        let plain = reference.take_instances(500);
        for (w, p) in wrapped.iter().zip(plain.iter()) {
            assert_eq!(w.features, p.features);
            assert_eq!(w.class, p.class);
        }
    }

    #[test]
    fn incremental_drift_ramps_smoothly() {
        let base = RandomRbfGenerator::new(4, 2, 1, 0.0, 5);
        let event = LocalDriftEvent {
            affected_classes: vec![1],
            position: 1000,
            width: 2000,
            kind: DriftKind::Incremental,
            magnitude: 0.8,
        };
        let mut stream = LocalDriftStream::new(base, vec![event], 2);
        let sample = stream.take_instances(4000);
        let early = class_mean(&sample[..1000], 1, 4);
        let mid = class_mean(&sample[1500..2500], 1, 4);
        let late = class_mean(&sample[3000..], 1, 4);
        let d_early_mid = distance(&early, &mid);
        let d_early_late = distance(&early, &late);
        assert!(
            d_early_late > d_early_mid,
            "drift should keep progressing: mid {d_early_mid}, late {d_early_late}"
        );
        assert!(d_early_mid > 0.05, "mid-transition should already have moved");
    }

    #[test]
    fn multiple_events_affect_multiple_classes() {
        let base = RandomRbfGenerator::new(5, 5, 2, 0.0, 8);
        let events = vec![
            LocalDriftEvent {
                affected_classes: vec![0, 1],
                position: 1000,
                width: 0,
                kind: DriftKind::Sudden,
                magnitude: 0.5,
            },
            LocalDriftEvent {
                affected_classes: vec![4],
                position: 2000,
                width: 0,
                kind: DriftKind::Sudden,
                magnitude: 0.5,
            },
        ];
        let mut stream = LocalDriftStream::new(base, events, 4);
        assert_eq!(stream.events().len(), 2);
        let sample = stream.take_instances(3000);
        let before = &sample[..1000];
        let after = &sample[2200..];
        for c in [0usize, 1, 4] {
            let moved = distance(&class_mean(before, c, 5), &class_mean(after, c, 5));
            assert!(moved > 0.2, "class {c} should have drifted, moved {moved}");
        }
        let moved2 = distance(&class_mean(before, 2, 5), &class_mean(after, 2, 5));
        assert!(moved2 < 0.1, "class 2 should not drift, moved {moved2}");
    }

    #[test]
    fn restart_is_deterministic() {
        let base = RandomRbfGenerator::new(4, 3, 2, 0.0, 12);
        let event = LocalDriftEvent {
            affected_classes: vec![1],
            position: 100,
            width: 200,
            kind: DriftKind::Gradual,
            magnitude: 0.4,
        };
        let mut stream = LocalDriftStream::new(base, vec![event], 21);
        let a = stream.take_instances(600);
        stream.restart();
        let b = stream.take_instances(600);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn rejects_out_of_range_class() {
        let base = RandomRbfGenerator::new(4, 3, 2, 0.0, 12);
        LocalDriftStream::new(
            base,
            vec![LocalDriftEvent {
                affected_classes: vec![7],
                position: 0,
                width: 0,
                kind: DriftKind::Sudden,
                magnitude: 0.5,
            }],
            0,
        );
    }
}
