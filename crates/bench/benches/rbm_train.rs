//! `rbm_train`: microbenchmark of the RBM CD-k hot loops.
//!
//! Compares the flat-matrix batch-level trainer (`RbmNetwork::train_batch`
//! on the `linalg` kernels, zero steady-state allocations) against the
//! retained seed implementation (`reference::ReferenceRbmNetwork`,
//! per-instance CD-k over `Vec<Vec<f64>>`) at the paper's default
//! mini-batch size (50), plus the per-class reconstruction-error pass the
//! detector runs before every training step. The two implementations are
//! bitwise-identical in output (see `crates/rbm/tests/equivalence.rs`), so
//! any gap is pure kernel speed. `BENCH_rbm_train.json` records the
//! measured baseline; the acceptance bar for the flat path is ≥2× the
//! reference's training throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rbm_im::network::{RbmNetwork, RbmNetworkConfig, Workspace};
use rbm_im::reference::ReferenceRbmNetwork;
use rbm_im_streams::generators::GaussianMixtureGenerator;
use rbm_im_streams::{MiniBatch, StreamExt};

/// The paper's default mini-batch size (Tab. II).
const BATCH: usize = 50;
/// Batches cycled through per measurement so the trainers see fresh data.
const ROTATION: usize = 64;

fn make_batches(num_features: usize, num_classes: usize, seed: u64) -> Vec<MiniBatch> {
    let mut stream = GaussianMixtureGenerator::balanced(num_features, num_classes, 1, seed);
    (0..ROTATION)
        .map(|_| MiniBatch { start_index: 0, instances: stream.take_instances(BATCH) })
        .collect()
}

fn bench_rbm_train(c: &mut Criterion) {
    rbm_im_bench::print_runner_metadata();
    let mut group = c.benchmark_group("rbm_train");
    group.sample_size(10);
    group.throughput(Throughput::Elements(BATCH as u64));
    // Two shapes: the harness default (10 features) and a wider stream where
    // the GEMMs dominate outright.
    for &(num_features, num_classes) in &[(10usize, 4usize), (40, 4)] {
        let shape = format!("{num_features}f{num_classes}c");
        let config = RbmNetworkConfig::default();
        let batches = make_batches(num_features, num_classes, 7);

        group.bench_with_input(BenchmarkId::new("train/flat", &shape), &(), |b, _| {
            let mut net = RbmNetwork::new(num_features, num_classes, config);
            let mut i = 0usize;
            b.iter(|| {
                let err = net.train_batch(&batches[i % ROTATION]);
                i += 1;
                err
            })
        });
        group.bench_with_input(BenchmarkId::new("train/reference", &shape), &(), |b, _| {
            let mut net = ReferenceRbmNetwork::new(num_features, num_classes, config);
            let mut i = 0usize;
            b.iter(|| {
                let err = net.train_batch(&batches[i % ROTATION]);
                i += 1;
                err
            })
        });

        // The detector's per-batch detection pass (Eq. 27) ahead of
        // training, through the immutable `_with` scoring surface with a
        // caller-owned workspace (the only scoring surface since the `&mut
        // self` variants were removed).
        group.bench_with_input(BenchmarkId::new("errors/flat", &shape), &(), |b, _| {
            let mut net = RbmNetwork::new(num_features, num_classes, config);
            for batch in batches.iter().take(8) {
                net.train_batch(batch);
            }
            let flat: Vec<(Vec<f64>, Vec<usize>)> = batches
                .iter()
                .map(|batch| {
                    let mut features = Vec::new();
                    let mut classes = Vec::new();
                    for inst in &batch.instances {
                        features.extend_from_slice(&inst.features);
                        classes.push(inst.class);
                    }
                    (features, classes)
                })
                .collect();
            let mut ws = Workspace::default();
            let mut errs = Vec::new();
            let mut i = 0usize;
            b.iter(|| {
                let (features, classes) = &flat[i % ROTATION];
                net.reconstruction_errors_flat_with(&mut ws, features, classes, &mut errs);
                i += 1;
                errs.len()
            })
        });
        group.bench_with_input(BenchmarkId::new("errors/reference", &shape), &(), |b, _| {
            let mut net = ReferenceRbmNetwork::new(num_features, num_classes, config);
            for batch in batches.iter().take(8) {
                net.train_batch(batch);
            }
            let mut i = 0usize;
            b.iter(|| {
                let errs = net.batch_reconstruction_errors(&batches[i % ROTATION]);
                i += 1;
                errs
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rbm_train);
criterion_main!(benches);
