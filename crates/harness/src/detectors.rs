//! Registry of drift detectors known to the harness.

use rbm_im::{RbmIm, RbmImConfig};
use rbm_im_detectors::{
    Adwin, Cusum, Ddm, DdmOci, Ecdd, Eddm, Fhddm, HddmA, HddmW, PageHinkley, PerfSim, Rddm, Wstd,
};
use rbm_im_detectors::ddm_oci::DdmOciConfig;
use rbm_im_detectors::perfsim::PerfSimConfig;
use rbm_im_detectors::DriftDetector;
use serde::{Deserialize, Serialize};

/// Every detector the harness can evaluate. The six `paper_detectors` are the
/// ones compared in Table III; the rest are available for extended studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DetectorKind {
    /// Wilcoxon rank-sum test detector (reference, standard).
    Wstd,
    /// Reactive DDM (reference, standard).
    Rddm,
    /// Fast Hoeffding DDM (reference, standard).
    Fhddm,
    /// PerfSim (reference, skew-insensitive).
    PerfSim,
    /// DDM-OCI (reference, skew-insensitive).
    DdmOci,
    /// RBM-IM (the paper's contribution).
    RbmIm,
    /// Classical DDM.
    Ddm,
    /// Early DDM.
    Eddm,
    /// ADWIN.
    Adwin,
    /// Hoeffding-bound detector, averages test.
    HddmA,
    /// Hoeffding-bound detector, weighted test.
    HddmW,
    /// Page–Hinkley.
    PageHinkley,
    /// CUSUM.
    Cusum,
    /// EWMA for concept drift detection.
    Ecdd,
}

impl DetectorKind {
    /// The six detectors evaluated in Table III, in the paper's column order.
    pub fn paper_detectors() -> Vec<DetectorKind> {
        vec![
            DetectorKind::Wstd,
            DetectorKind::Rddm,
            DetectorKind::Fhddm,
            DetectorKind::PerfSim,
            DetectorKind::DdmOci,
            DetectorKind::RbmIm,
        ]
    }

    /// Every detector kind known to the harness.
    pub fn all() -> Vec<DetectorKind> {
        vec![
            DetectorKind::Wstd,
            DetectorKind::Rddm,
            DetectorKind::Fhddm,
            DetectorKind::PerfSim,
            DetectorKind::DdmOci,
            DetectorKind::RbmIm,
            DetectorKind::Ddm,
            DetectorKind::Eddm,
            DetectorKind::Adwin,
            DetectorKind::HddmA,
            DetectorKind::HddmW,
            DetectorKind::PageHinkley,
            DetectorKind::Cusum,
            DetectorKind::Ecdd,
        ]
    }

    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            DetectorKind::Wstd => "WSTD",
            DetectorKind::Rddm => "RDDM",
            DetectorKind::Fhddm => "FHDDM",
            DetectorKind::PerfSim => "PerfSim",
            DetectorKind::DdmOci => "DDM-OCI",
            DetectorKind::RbmIm => "RBM-IM",
            DetectorKind::Ddm => "DDM",
            DetectorKind::Eddm => "EDDM",
            DetectorKind::Adwin => "ADWIN",
            DetectorKind::HddmA => "HDDM-A",
            DetectorKind::HddmW => "HDDM-W",
            DetectorKind::PageHinkley => "PageHinkley",
            DetectorKind::Cusum => "CUSUM",
            DetectorKind::Ecdd => "ECDD",
        }
    }

    /// Whether the detector is one of the skew-insensitive methods.
    pub fn skew_insensitive(&self) -> bool {
        matches!(self, DetectorKind::PerfSim | DetectorKind::DdmOci | DetectorKind::RbmIm)
    }

    /// Instantiates the detector for a stream with the given schema.
    pub fn build(&self, num_features: usize, num_classes: usize) -> Box<dyn DriftDetector + Send> {
        match self {
            DetectorKind::Wstd => Box::new(Wstd::new()),
            DetectorKind::Rddm => Box::new(Rddm::new()),
            DetectorKind::Fhddm => Box::new(Fhddm::new()),
            DetectorKind::PerfSim => Box::new(PerfSim::new(PerfSimConfig::for_classes(num_classes))),
            DetectorKind::DdmOci => Box::new(DdmOci::new(DdmOciConfig::for_classes(num_classes))),
            DetectorKind::RbmIm => Box::new(RbmIm::new(num_features, num_classes, RbmImConfig::default())),
            DetectorKind::Ddm => Box::new(Ddm::new()),
            DetectorKind::Eddm => Box::new(Eddm::new()),
            DetectorKind::Adwin => Box::new(Adwin::new(0.002)),
            DetectorKind::HddmA => Box::new(HddmA::new()),
            DetectorKind::HddmW => Box::new(HddmW::new(0.05)),
            DetectorKind::PageHinkley => Box::new(PageHinkley::new()),
            DetectorKind::Cusum => Box::new(Cusum::new()),
            DetectorKind::Ecdd => Box::new(Ecdd::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbm_im_detectors::Observation;

    #[test]
    fn paper_detector_list_matches_table_two() {
        let names: Vec<&str> = DetectorKind::paper_detectors().iter().map(|d| d.name()).collect();
        assert_eq!(names, vec!["WSTD", "RDDM", "FHDDM", "PerfSim", "DDM-OCI", "RBM-IM"]);
    }

    #[test]
    fn every_kind_builds_and_updates() {
        let features = vec![0.1, 0.2, 0.3, 0.4];
        for kind in DetectorKind::all() {
            let mut detector = kind.build(4, 3);
            assert_eq!(detector.name(), kind.name());
            for i in 0..120usize {
                let obs = Observation::new(&features, i % 3, (i + 1) % 3);
                detector.update(&obs);
            }
            detector.reset();
        }
    }

    #[test]
    fn skew_insensitive_flags() {
        assert!(DetectorKind::RbmIm.skew_insensitive());
        assert!(DetectorKind::PerfSim.skew_insensitive());
        assert!(DetectorKind::DdmOci.skew_insensitive());
        assert!(!DetectorKind::Wstd.skew_insensitive());
        assert!(!DetectorKind::Adwin.skew_insensitive());
    }

    #[test]
    fn serde_round_trip() {
        let kind = DetectorKind::RbmIm;
        let json = serde_json::to_string(&kind).unwrap();
        let back: DetectorKind = serde_json::from_str(&json).unwrap();
        assert_eq!(kind, back);
    }
}
