//! Online classifiers for multi-class imbalanced data streams.
//!
//! The paper drives every drift detector through the same base classifier —
//! **Adaptive Cost-Sensitive Perceptron Trees** (Krawczyk & Skryjomski,
//! ECML-PKDD 2017) — so that differences in Table III are attributable to
//! the detector alone. The original implementation is not open source; this
//! crate re-implements its behaviourally relevant design (an incremental
//! decision tree whose leaves hold cost-sensitive perceptrons, with costs
//! derived from inverse class frequencies and adaptation gated by an
//! external drift detector) plus two simpler online learners used in tests,
//! examples and ablations:
//!
//! * [`perceptron::CostSensitivePerceptron`] — flat multi-class perceptron
//!   with skew-aware update scaling,
//! * [`naive_bayes::GaussianNaiveBayes`] — incremental Gaussian NB,
//! * [`cspt::CostSensitivePerceptronTree`] — the paper's base classifier.
//!
//! All classifiers implement [`OnlineClassifier`]: test-then-train usage is
//! `predict` / `predict_scores` followed by `learn`.

#![warn(missing_docs)]

pub mod cspt;
pub mod naive_bayes;
pub mod perceptron;

pub use cspt::CostSensitivePerceptronTree;
pub use naive_bayes::GaussianNaiveBayes;
pub use perceptron::CostSensitivePerceptron;

use rbm_im_streams::Instance;

/// An online (incremental) classifier operating on a fixed schema.
pub trait OnlineClassifier {
    /// Predicts the class of an instance (ties broken toward the lower
    /// class index; see [`argmax`]).
    fn predict(&self, features: &[f64]) -> usize {
        argmax(&self.predict_scores(features))
    }

    /// Per-class scores (higher = more likely); need not be normalized but
    /// every implementation here returns values in `[0, 1]` summing to 1 so
    /// they can feed the pmAUC estimator directly.
    fn predict_scores(&self, features: &[f64]) -> Vec<f64>;

    /// Caller-buffer variant of [`OnlineClassifier::predict_scores`]: clears
    /// `out` and fills it with the per-class scores. Evaluation hot loops
    /// keep one buffer alive for the whole stream instead of allocating a
    /// fresh `Vec` per instance; implementations should override this with
    /// an allocation-free fill where possible.
    fn predict_scores_into(&self, features: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.predict_scores(features));
    }

    /// Learns from one labeled instance.
    fn learn(&mut self, instance: &Instance);

    /// Number of classes.
    fn num_classes(&self) -> usize;

    /// Resets the model to its untrained state — called by the harness when
    /// the attached drift detector signals a change (the adaptation
    /// mechanism the paper's base classifier relies on).
    fn reset(&mut self);

    /// Captures the classifier's complete mutable state as a serde
    /// [`Value`](serde::Value) — the checkpoint half of the workspace-wide
    /// snapshot/restore contract. A snapshot is restored (with
    /// [`OnlineClassifier::restore_state`]) onto a freshly built classifier
    /// of the same shape and configuration, after which prediction and
    /// learning continue **bitwise identically** to a classifier that was
    /// never checkpointed. Returns `None` for classifiers that do not
    /// support checkpointing (the default); every classifier this workspace
    /// ships overrides it.
    fn snapshot_state(&self) -> Option<serde::Value> {
        None
    }

    /// Restores state captured by [`OnlineClassifier::snapshot_state`] onto
    /// this (identically configured, typically freshly built) classifier.
    fn restore_state(&mut self, state: &serde::Value) -> Result<(), serde::Error> {
        let _ = state;
        Err(serde::Error::msg("this classifier does not support checkpointing"))
    }
}

/// Index of the maximum score, with ties broken toward the lower class
/// index. This is the single argmax used by both
/// [`OnlineClassifier::predict`] and the evaluation pipeline, so the two can
/// never disagree on tie-breaking. Returns 0 for an empty slice; NaN scores
/// never win.
pub fn argmax(scores: &[f64]) -> usize {
    let mut best = 0usize;
    let mut best_score = f64::NEG_INFINITY;
    for (i, &score) in scores.iter().enumerate() {
        if score > best_score {
            best = i;
            best_score = score;
        }
    }
    best
}

/// Normalizes a non-negative score vector into a probability distribution;
/// degenerate vectors become uniform. Exposed for custom classifier
/// implementations that produce unnormalized scores.
pub fn normalize_scores(mut scores: Vec<f64>) -> Vec<f64> {
    let min = scores.iter().cloned().fold(f64::INFINITY, f64::min);
    if min < 0.0 {
        for s in scores.iter_mut() {
            *s -= min;
        }
    }
    let total: f64 = scores.iter().sum();
    if total <= 0.0 || !total.is_finite() {
        let n = scores.len().max(1);
        return vec![1.0 / n as f64; n];
    }
    for s in scores.iter_mut() {
        *s /= total;
    }
    scores
}

/// Softmax with max-subtraction for numerical stability.
pub fn softmax(scores: &[f64]) -> Vec<f64> {
    let mut out = Vec::new();
    softmax_into(scores, &mut out);
    out
}

/// Buffer-reusing [`softmax`]: clears `out` and fills it with the softmax of
/// `scores` (uniform for degenerate inputs). Allocation-free once `out` has
/// grown to the class count.
pub fn softmax_into(scores: &[f64], out: &mut Vec<f64>) {
    out.clear();
    out.extend_from_slice(scores);
    softmax_in_place(out);
}

/// In-place [`softmax`]: replaces raw scores with the softmax distribution
/// (uniform for degenerate inputs) without any allocation. Classifiers fill
/// the caller's score buffer with raw scores and finish with this.
///
/// Re-exported from [`rbm_im::linalg`] — the one shared implementation that
/// the RBM's class-layer reconstruction (Eq. 12) also runs on, so the
/// classifiers and the RBM can never disagree numerically.
pub use rbm_im::linalg::softmax_in_place;

#[cfg(test)]
mod tests {
    use super::*;

    /// All three classifiers: snapshot mid-stream, serialize to JSON,
    /// restore onto a fresh twin, continue learning — predictions must stay
    /// bitwise-identical to the uninterrupted model.
    #[test]
    fn checkpoint_roundtrip_resumes_bitwise_for_every_classifier() {
        use rbm_im_streams::generators::GaussianMixtureGenerator;
        use rbm_im_streams::StreamExt;

        type Factory = Box<dyn Fn() -> Box<dyn OnlineClassifier>>;
        let factories: Vec<(&str, Factory)> = vec![
            ("perceptron", Box::new(|| Box::new(CostSensitivePerceptron::new(6, 3, 0.05)))),
            ("naive-bayes", Box::new(|| Box::new(GaussianNaiveBayes::new(6, 3)))),
            ("cspt", Box::new(|| Box::new(CostSensitivePerceptronTree::new(6, 3)))),
        ];
        let mut stream = GaussianMixtureGenerator::balanced(6, 3, 1, 77);
        // Enough data that the CSPT grows splits before the cut.
        let data = stream.take_instances(5_000);

        for (name, make) in &factories {
            for cut in [0usize, 1, 2_741] {
                let mut uninterrupted = make();
                let mut head = make();
                for inst in &data[..cut] {
                    uninterrupted.learn(inst);
                    head.learn(inst);
                }
                let snapshot = head
                    .snapshot_state()
                    .unwrap_or_else(|| panic!("{name}: must support checkpointing"));
                let json = serde_json::to_string(&snapshot).unwrap();
                let mut resumed = make();
                resumed
                    .restore_state(&serde_json::parse_value(&json).unwrap())
                    .unwrap_or_else(|e| panic!("{name}: restore: {e}"));
                for (i, inst) in data[cut..].iter().enumerate() {
                    assert_eq!(
                        uninterrupted.predict_scores(&inst.features),
                        resumed.predict_scores(&inst.features),
                        "{name} @ cut {cut}, offset {i}"
                    );
                    uninterrupted.learn(inst);
                    resumed.learn(inst);
                }
            }
        }
    }

    #[test]
    fn normalize_scores_handles_degenerate_inputs() {
        assert_eq!(normalize_scores(vec![0.0, 0.0]), vec![0.5, 0.5]);
        let n = normalize_scores(vec![1.0, 3.0]);
        assert!((n[0] - 0.25).abs() < 1e-12);
        assert!((n[1] - 0.75).abs() < 1e-12);
        // Negative values are shifted before normalization.
        let n = normalize_scores(vec![-1.0, 1.0]);
        assert_eq!(n[0], 0.0);
        assert_eq!(n[1], 1.0);
    }

    #[test]
    fn argmax_breaks_ties_toward_lower_index() {
        assert_eq!(argmax(&[0.2, 0.5, 0.5, 0.1]), 1);
        assert_eq!(argmax(&[0.5, 0.5]), 0);
        assert_eq!(argmax(&[0.1, 0.9, 0.3]), 1);
        assert_eq!(argmax(&[]), 0);
        // NaN scores never win.
        assert_eq!(argmax(&[f64::NAN, 0.3, f64::NAN]), 1);
    }

    #[test]
    fn softmax_into_reuses_buffer_and_matches_softmax() {
        let mut buffer = vec![9.0; 8];
        softmax_into(&[1.0, 2.0, 3.0], &mut buffer);
        assert_eq!(buffer, softmax(&[1.0, 2.0, 3.0]));
        softmax_into(&[f64::NEG_INFINITY, f64::NEG_INFINITY], &mut buffer);
        assert_eq!(buffer, vec![0.5, 0.5]);
    }

    #[test]
    fn softmax_is_a_distribution_and_order_preserving() {
        let s = softmax(&[1.0, 2.0, 3.0]);
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(s[2] > s[1] && s[1] > s[0]);
        // Large values do not overflow.
        let s = softmax(&[1000.0, 1001.0]);
        assert!(s[1] > s[0]);
        assert!(s.iter().all(|p| p.is_finite()));
    }
}
