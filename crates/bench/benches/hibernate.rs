//! `hibernate`: tier-transition microlatency of the hibernation plane.
//!
//! The tiered stream state plane (`ARCHITECTURE.md` §9) stands on two
//! transitions: **park** (a dirty `hibernate_stream` of a hot stream —
//! checkpoint capture + binary encode into the cold handle) and **wake**
//! (the first ingest of a cold stream — decode + rebuild + replay of the
//! parked state, then the instance itself). Both are measured end to end
//! through the server control/ingest API for a warmed-up heavyweight
//! RBM stream (5 000 instances, `metric_window` 1 000 — the ~47 KB
//! checkpoint of `BENCH_checkpoint.json`) and the lightweight ADWIN case.
//! The in-shard `rbm_serve_rehydrate_seconds` histogram (p50/p99) and the
//! resident bytes per parked cold stream are printed alongside;
//! `BENCH_hibernate.json` records the measured baseline.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use rbm_im_harness::pipeline::RunConfig;
use rbm_im_harness::registry::DetectorSpec;
use rbm_im_obs::MetricId;
use rbm_im_serve::{ServeConfig, ServerHandle, StreamClient};
use rbm_im_streams::generators::RandomRbfGenerator;
use rbm_im_streams::{DataStream, Instance, StreamExt};

const WARM_INSTANCES: usize = 5_000;

/// A 1-shard server with one warmed stream, plus spare instances for the
/// per-iteration wake-ups.
fn warmed_server(spec: &DetectorSpec) -> (ServerHandle, StreamClient, Vec<Instance>) {
    let mut gen = RandomRbfGenerator::new(10, 4, 2, 0.0, 21);
    let schema = gen.schema().clone();
    let run = RunConfig { metric_window: 1_000, detector_batch: 50, ..Default::default() };
    let server = ServerHandle::start(ServeConfig {
        num_shards: 1,
        queue_capacity: 256,
        run,
        ..Default::default()
    });
    let client = server.attach("bench", schema, spec).unwrap();
    client.ingest_batch(gen.take_instances(WARM_INSTANCES)).unwrap();
    server.drain();
    let spares = gen.take_instances(4_096);
    (server, client, spares)
}

fn cold_resident_bytes(server: &ServerHandle) -> i64 {
    let id = MetricId::new("rbm_serve_cold_resident_bytes", &[]);
    server.metrics().snapshot().gauges.iter().find(|(i, _)| *i == id).map(|(_, v)| *v).unwrap_or(0)
}

fn bench_hibernate(c: &mut Criterion) {
    rbm_im_bench::print_runner_metadata();
    let mut group = c.benchmark_group("hibernate");
    group.sample_size(10);
    let specs =
        [("rbm-im", "rbm(mini_batch=50, warmup=4, seed=7)"), ("adwin", "adwin(delta=0.01)")];
    for (label, spec_text) in specs {
        let spec = DetectorSpec::parse(spec_text).unwrap();
        let (server, client, spares) = warmed_server(&spec);

        // Park: a dirty eviction of a hot stream (capture + binary encode
        // into the in-memory cold handle). The setup wakes the stream
        // back up with one instance so every iteration parks from hot.
        let mut next = 0usize;
        group.bench_with_input(BenchmarkId::new("park-dirty", label), &(), |b, _| {
            b.iter_batched(
                || {
                    client.ingest(spares[next % spares.len()].clone()).unwrap();
                    next += 1;
                    server.drain();
                },
                |_| server.hibernate_stream("bench").unwrap(),
                BatchSize::PerIteration,
            )
        });

        // Wake: first ingest of a cold stream — decode + rebuild + replay
        // of the parked pipeline state, then the instance itself.
        let mut next = 0usize;
        group.bench_with_input(BenchmarkId::new("wake-on-ingest", label), &(), |b, _| {
            b.iter_batched(
                || {
                    server.hibernate_stream("bench").unwrap();
                },
                |_| {
                    client.ingest(spares[next % spares.len()].clone()).unwrap();
                    next += 1;
                    server.drain();
                },
                BatchSize::PerIteration,
            )
        });

        // The shard's own rehydrate clock, without the control/queue hop
        // the wall-clock wake number includes.
        let rehydrates =
            server.metrics().snapshot().merged_histogram("rbm_serve_rehydrate_seconds");
        println!(
            "hibernate/{label}: in-shard rehydrate p50 {:.3}ms / p99 {:.3}ms over {} wakes",
            rehydrates.quantile(0.5) as f64 / 1e6,
            rehydrates.quantile(0.99) as f64 / 1e6,
            rehydrates.count(),
        );

        // Steady-state cost of a parked stream: encoded checkpoint bytes
        // resident per cold stream (disk-demoted streams drop to ~0 RAM).
        server.hibernate_stream("bench").unwrap();
        println!(
            "hibernate/{label}: {} B resident per in-memory cold stream",
            cold_resident_bytes(&server)
        );
        drop(server.shutdown());
    }
    group.finish();
}

criterion_group!(benches, bench_hibernate);
criterion_main!(benches);
