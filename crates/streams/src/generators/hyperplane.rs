//! Rotating hyperplane generator (multi-class variant).
//!
//! The classical MOA hyperplane generator samples points uniformly from the
//! unit hypercube and labels them by which side of a hyperplane
//! `Σ w_i x_i = θ` they fall on; gradual drift is induced by slowly rotating
//! the hyperplane (changing a subset of the weights by a small magnitude per
//! instance, with randomly flipping directions).
//!
//! The multi-class variant used for the paper's `Hyperplane5/10/20`
//! benchmarks splits the *signed distance to the hyperplane* into `M`
//! quantile-calibrated bands, so rotating the hyperplane smoothly relabels
//! instances near every band boundary — a *gradual, global* real drift as
//! listed in Table I.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::{class_from_score, quantile_thresholds};
use crate::instance::{Instance, StreamSchema};
use crate::stream::DataStream;

/// Rotating hyperplane generator.
pub struct HyperplaneGenerator {
    schema: StreamSchema,
    num_classes: usize,
    seed: u64,
    rng: StdRng,
    /// Current hyperplane weights (one per feature).
    weights: Vec<f64>,
    /// Per-weight drift direction (+1 / −1).
    directions: Vec<f64>,
    /// Magnitude of weight change applied per instance (0 = stationary).
    drift_magnitude: f64,
    /// Number of weights affected by the continuous rotation.
    drifting_weights: usize,
    /// Probability of a drifting weight flipping its direction each instance.
    direction_flip_prob: f64,
    thresholds: Vec<f64>,
    noise: f64,
    counter: u64,
}

impl HyperplaneGenerator {
    /// Creates a hyperplane stream over `num_features` uniform features and
    /// `num_classes` quantile bands; `drift_magnitude` is the per-instance
    /// weight change (`0.001` is MOA's default "slow rotation", `0.0`
    /// freezes the concept).
    pub fn new(num_features: usize, num_classes: usize, drift_magnitude: f64, seed: u64) -> Self {
        assert!(num_features >= 2, "need at least two features");
        assert!(num_classes >= 2, "need at least two classes");
        assert!(drift_magnitude >= 0.0, "drift magnitude must be >= 0");
        let mut rng = StdRng::seed_from_u64(seed);
        let weights: Vec<f64> = (0..num_features).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let directions: Vec<f64> =
            (0..num_features).map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 }).collect();
        let schema = StreamSchema::new(
            format!("hyperplane-d{num_features}-c{num_classes}"),
            num_features,
            num_classes,
        );
        let mut gen = HyperplaneGenerator {
            schema,
            num_classes,
            seed,
            rng,
            weights,
            directions,
            drift_magnitude,
            drifting_weights: (num_features / 2).max(1),
            direction_flip_prob: 0.1,
            thresholds: Vec::new(),
            noise: 0.0,
            counter: 0,
        };
        gen.calibrate();
        gen
    }

    /// Sets the label-noise fraction.
    pub fn with_noise(mut self, noise: f64) -> Self {
        assert!((0.0..1.0).contains(&noise));
        self.noise = noise;
        self
    }

    /// Sets how many leading weights are affected by the rotation.
    pub fn with_drifting_weights(mut self, k: usize) -> Self {
        assert!(k >= 1 && k <= self.weights.len());
        self.drifting_weights = k;
        self
    }

    /// Current hyperplane weights (exposed for tests and diagnostics).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Re-randomizes the hyperplane orientation — a *sudden* global drift.
    pub fn reorient(&mut self) {
        for w in self.weights.iter_mut() {
            *w = self.rng.gen_range(-1.0..1.0);
        }
        self.calibrate();
    }

    fn calibrate(&mut self) {
        let mut pilot_rng = StdRng::seed_from_u64(self.seed ^ 0x5eed_cafe);
        let weights = self.weights.clone();
        let mut scores: Vec<f64> = (0..2000)
            .map(|_| {
                let x: Vec<f64> =
                    (0..weights.len()).map(|_| pilot_rng.gen_range(0.0..1.0)).collect();
                Self::score(&weights, &x)
            })
            .collect();
        self.thresholds = quantile_thresholds(&mut scores, self.num_classes);
    }

    fn score(weights: &[f64], x: &[f64]) -> f64 {
        weights.iter().zip(x.iter()).map(|(w, v)| w * v).sum()
    }

    fn apply_rotation(&mut self) {
        if self.drift_magnitude == 0.0 {
            return;
        }
        for i in 0..self.drifting_weights {
            self.weights[i] += self.directions[i] * self.drift_magnitude;
            if self.rng.gen::<f64>() < self.direction_flip_prob {
                self.directions[i] = -self.directions[i];
            }
        }
    }
}

impl DataStream for HyperplaneGenerator {
    fn next_instance(&mut self) -> Option<Instance> {
        let features: Vec<f64> =
            (0..self.schema.num_features).map(|_| self.rng.gen_range(0.0..1.0)).collect();
        let score = Self::score(&self.weights, &features);
        let mut class = class_from_score(score, &self.thresholds);
        if self.noise > 0.0 && self.rng.gen::<f64>() < self.noise {
            class = self.rng.gen_range(0..self.num_classes);
        }
        self.apply_rotation();
        let inst = Instance::with_index(features, class, self.counter);
        self.counter += 1;
        Some(inst)
    }

    fn schema(&self) -> &StreamSchema {
        &self.schema
    }

    fn restart(&mut self) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.weights = (0..self.schema.num_features).map(|_| rng.gen_range(-1.0..1.0)).collect();
        self.directions = (0..self.schema.num_features)
            .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
            .collect();
        self.rng = rng;
        self.counter = 0;
        self.calibrate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::StreamExt;

    #[test]
    fn stationary_hyperplane_has_fixed_weights() {
        let mut g = HyperplaneGenerator::new(10, 5, 0.0, 3);
        let w0 = g.weights().to_vec();
        g.take_instances(500);
        assert_eq!(g.weights(), &w0[..]);
    }

    #[test]
    fn rotation_moves_weights() {
        let mut g = HyperplaneGenerator::new(10, 5, 0.01, 3);
        let w0 = g.weights().to_vec();
        g.take_instances(2000);
        let moved =
            g.weights().iter().zip(w0.iter()).filter(|(a, b)| (**a - **b).abs() > 1e-9).count();
        assert!(moved >= 5, "at least the drifting weights must have moved, got {moved}");
    }

    #[test]
    fn rotation_changes_labeling_over_time() {
        // Compare the label the *initial* concept would give with the label
        // the rotated concept gives late in the stream: they must diverge.
        let mut g = HyperplaneGenerator::new(10, 4, 0.02, 17);
        let initial_weights = g.weights().to_vec();
        let initial_thresholds = g.thresholds.clone();
        let sample = g.take_instances(20_000);
        let late = &sample[15_000..];
        let mut disagreements = 0;
        for inst in late {
            let s = HyperplaneGenerator::score(&initial_weights, &inst.features);
            let original_label = class_from_score(s, &initial_thresholds);
            if original_label != inst.class {
                disagreements += 1;
            }
        }
        assert!(
            disagreements > late.len() / 10,
            "rotated concept should relabel a noticeable share, got {disagreements}/{}",
            late.len()
        );
    }

    #[test]
    fn reorient_is_a_sudden_drift() {
        let mut g = HyperplaneGenerator::new(8, 3, 0.0, 5);
        let w0 = g.weights().to_vec();
        g.reorient();
        assert_ne!(g.weights(), &w0[..]);
    }

    #[test]
    fn restart_reproduces_sequence_even_with_rotation() {
        let mut g = HyperplaneGenerator::new(12, 5, 0.005, 99);
        let a = g.take_instances(300);
        g.restart();
        let b = g.take_instances(300);
        assert_eq!(a, b);
    }

    #[test]
    fn noise_is_applied() {
        let clean: Vec<usize> = HyperplaneGenerator::new(10, 5, 0.0, 21)
            .take_instances(800)
            .iter()
            .map(|i| i.class)
            .collect();
        let noisy: Vec<usize> = HyperplaneGenerator::new(10, 5, 0.0, 21)
            .with_noise(0.25)
            .take_instances(800)
            .iter()
            .map(|i| i.class)
            .collect();
        // Noise draws extra RNG values so sequences diverge; just check a
        // meaningful number of labels differ.
        let diff = clean.iter().zip(noisy.iter()).filter(|(a, b)| a != b).count();
        assert!(diff > 80);
    }

    #[test]
    #[should_panic]
    fn rejects_single_feature() {
        HyperplaneGenerator::new(1, 3, 0.0, 0);
    }
}
