//! Dense linear-algebra kernels backing the flat-matrix RBM.
//!
//! Everything in this module operates on **flat row-major** storage: a
//! matrix with `rows × cols` entries keeps element `(r, c)` at index
//! `r * cols + c` of one contiguous `Vec<f64>`. Compared to the seed's
//! `Vec<Vec<f64>>` (one heap allocation per row, a pointer chase per row
//! access) this layout is cache-friendly, allocation-free once sized, and
//! auto-vectorizable: every kernel below keeps its inner loop over
//! contiguous slices so LLVM emits SIMD without any `unsafe` or intrinsics.
//!
//! **Reproducibility contract.** The batched CD-k trainer promises results
//! bitwise-identical to the retained per-instance reference implementation
//! ([`crate::reference`]). Floating-point addition is not associative, so
//! every kernel here fixes its accumulation order to the one the reference
//! uses: [`gemm_acc`] adds rank-1 contributions in ascending inner-dimension
//! order (`c[r][j] += a[r][0]·b[0][j]`, then `a[r][1]·b[1][j]`, …), which is
//! exactly the order of the reference's scalar `act += v[i] * w[i][j]`
//! loops. Blocked variants only tile the *independent* output dimensions
//! (rows and column panels), never the reduction, so tiling cannot change
//! the rounding. The kernels still vectorize because the element-wise
//! accumulation (`axpy`) parallelizes across output columns, not across the
//! reduction.
//!
//! **Execution modes.** Every hot kernel has a policy-dispatched `_with`
//! variant taking a [`KernelPolicy`]; three modes exist:
//!
//! 1. *sequential exact* — the plain kernels below; the baseline;
//! 2. *parallel exact* ([`KernelPolicy::parallel`]) — output **rows** are
//!    split into contiguous ranges executed on the persistent `rayon`
//!    worker pool. Each row's full reduction runs on one worker with the
//!    identical code path, and the reduction is never split, so results
//!    are **bitwise-identical to sequential at any thread count**;
//! 3. *fast-math* ([`KernelPolicy::fast_math`], opt-in) — the
//!    transcendental kernels (`sigmoid`, column softmax) switch `exp` to
//!    the branch-free polynomial [`fast_exp`], deliberately trading
//!    bitwise identity for a tolerance-tested `≤ 1e-9` absolute
//!    equivalence and a vectorizable inner loop.
//!
//! Modes 1 and 2 may be mixed freely (per call, per thread count); mode 3
//! changes results within tolerance and is never enabled by default.

/// A dense row-major matrix over `f64`.
///
/// Element `(r, c)` lives at `data[r * cols + c]`; each row is one
/// contiguous `cols`-long slice, so row access is a single slice index and
/// row-wise kernels (axpy, sigmoid, softmax) run over contiguous memory.
/// [`DenseMatrix::resize`] re-shapes in place without shrinking the backing
/// allocation, which is what lets the training [`Workspace`](crate::network::Workspace)
/// (`crate::network::Workspace`) reach a zero-allocation steady state: the
/// first mini-batch grows every buffer to its working size and subsequent
/// batches reuse the capacity.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix by evaluating `f(row, col)` in row-major order.
    ///
    /// The row-major evaluation order is part of the contract: the RBM
    /// weight initialization draws its RNG stream in exactly this order, so
    /// it must match the reference implementation's nested
    /// row-outer/column-inner loops.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        DenseMatrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Re-shapes the matrix to `rows × cols`, zero-filling the contents.
    ///
    /// Never releases the backing allocation: growing beyond any previously
    /// seen size allocates once, after which all re-shapes are free. This is
    /// the primitive behind the zero-allocation steady state of the training
    /// workspace.
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Re-shapes the matrix to `rows × cols` **without** zero-filling: the
    /// contents are unspecified (stale values from earlier shapes may
    /// linger). For buffers whose every element is overwritten right after
    /// re-shaping (bias broadcasts, packed inputs, pre-drawn uniforms), this
    /// skips [`DenseMatrix::resize`]'s memset. Same no-shrink capacity
    /// behaviour as `resize`.
    pub fn reshape_uninit(&mut self, rows: usize, cols: usize) {
        let len = rows * cols;
        if self.data.len() < len {
            self.data.resize(len, 0.0);
        } else {
            self.data.truncate(len);
        }
        self.rows = rows;
        self.cols = cols;
    }

    /// Borrows row `r` as a contiguous slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a contiguous slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element access (bounds-checked).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Mutable element access (bounds-checked).
    #[inline]
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }

    /// The whole storage as one flat slice (row-major).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The whole storage as one flat mutable slice (row-major).
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Fills every element with `value`.
    pub fn fill(&mut self, value: f64) {
        self.data.fill(value);
    }

    /// Fills row `r` with `src[r]` (broadcast along columns). This seeds a
    /// **feature-major** activation matrix (layer units × batch) with its
    /// bias vector: every instance (column) starts from the same bias.
    pub fn broadcast_cols(&mut self, src: &[f64]) {
        assert_eq!(src.len(), self.rows, "broadcast length must match row count");
        for (r, &value) in src.iter().enumerate() {
            self.row_mut(r).fill(value);
        }
    }
}

/// `y[j] += alpha * x[j]` over contiguous slices — the vectorizable core of
/// every GEMM/GEMV here. Each output element receives exactly one addend, so
/// the kernel is embarrassingly parallel across `j` and LLVM unrolls it into
/// packed SIMD adds/mults.
#[inline]
pub fn axpy(y: &mut [f64], alpha: f64, x: &[f64]) {
    assert_eq!(y.len(), x.len(), "axpy length mismatch");
    for (yj, &xj) in y.iter_mut().zip(x.iter()) {
        *yj += alpha * xj;
    }
}

/// Sequential dot product. Accumulates in ascending index order (the
/// reference implementation's order); deliberately *not* unrolled into
/// multiple accumulators, which would change the rounding.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    let mut acc = 0.0;
    for (&xi, &yi) in x.iter().zip(y.iter()) {
        acc += xi * yi;
    }
    acc
}

// ---------------------------------------------------------------------------
// Kernel execution policy
// ---------------------------------------------------------------------------

/// Row-parallelism mode of the policy-dispatched kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParallelMode {
    /// Parallelize only when the kernel is large enough to amortize the
    /// fork/join handshake (a fixed work threshold); narrow streams stay on
    /// the sequential path. The default.
    #[default]
    Auto,
    /// Always sequential, regardless of pool size.
    Off,
    /// Parallelize whenever more than one output row exists and the pool
    /// has more than one thread (no size threshold — mainly for tests and
    /// microbenches).
    On,
}

impl ParallelMode {
    /// Reads the process-wide default from `RBM_KERNEL_PARALLEL`
    /// (`auto`/`off`/`on`, case-insensitive); unset or unrecognized values
    /// mean [`ParallelMode::Auto`]. Safe to consult from config defaults:
    /// the mode selects an execution strategy, never a different result
    /// (parallel-exact is bitwise-identical to sequential).
    pub fn from_env() -> ParallelMode {
        match std::env::var("RBM_KERNEL_PARALLEL").unwrap_or_default().to_ascii_lowercase().trim() {
            "off" => ParallelMode::Off,
            "on" => ParallelMode::On,
            _ => ParallelMode::Auto,
        }
    }
}

/// How the policy-dispatched (`_with`) kernels execute.
///
/// The default policy (`KernelPolicy::default()`) is sequential-equivalent:
/// `Auto` parallelism with the whole pool available and exact math.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct KernelPolicy {
    /// Row-parallelism mode (never changes results — see [`ParallelMode`]).
    pub parallel: ParallelMode,
    /// Upper bound on total threads a kernel may use, `0` = the whole pool
    /// ([`rayon::pool_threads`]). Caps, never grows, the pool; benches use
    /// it to sweep 1/2/4 threads inside one process.
    pub max_threads: usize,
    /// Opt-in fast-math: `sigmoid`/column-softmax use [`fast_exp`] instead
    /// of `f64::exp`, trading bitwise identity for a ≤ 1e-9 absolute
    /// tolerance (proptest-bounded) and a vectorizable inner loop.
    pub fast_math: bool,
    /// Opt-in kernel timing: each policy-dispatched kernel records its
    /// wall-clock duration into the process-global metrics registry
    /// ([`rbm_im_obs::global`]) as `rbm_kernel_seconds{kernel}`. Off by
    /// default and additionally gated on [`rbm_im_obs::enabled`]; timing
    /// observes, never changes, kernel results.
    pub timing: bool,
}

impl KernelPolicy {
    /// The baseline policy: sequential, exact. Bitwise-identical to calling
    /// the plain kernels.
    pub const EXACT_SEQUENTIAL: KernelPolicy = KernelPolicy {
        parallel: ParallelMode::Off,
        max_threads: 0,
        fast_math: false,
        timing: false,
    };
}

/// Drop-guard of the opt-in kernel timing: armed only when the policy asks
/// for timing *and* observability is globally enabled, it records the
/// elapsed nanoseconds into `rbm_kernel_seconds{kernel}` in the global
/// registry on drop (covering every early-return path of a kernel).
struct KernelTimer {
    kernel: &'static str,
    start: Option<std::time::Instant>,
}

impl KernelTimer {
    #[inline]
    fn start(policy: &KernelPolicy, kernel: &'static str) -> KernelTimer {
        let start = if policy.timing && rbm_im_obs::enabled() {
            Some(std::time::Instant::now())
        } else {
            None
        };
        KernelTimer { kernel, start }
    }
}

impl Drop for KernelTimer {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            rbm_im_obs::global()
                .histogram("rbm_kernel_seconds", &[("kernel", self.kernel)])
                .record(start.elapsed().as_nanos() as u64);
        }
    }
}

/// Minimum per-kernel work (inner-loop multiply-adds) before `Auto` engages
/// the pool. Below this the fork/join handshake (~a few µs of mutex +
/// condvar traffic) costs more than the row work it buys; the narrow
/// 10-feature streams of the paper's Table I stay sequential, 80-feature
/// wide streams at batch 100 go parallel.
const PAR_MIN_WORK: usize = 1 << 15;

/// Number of worker chunks a kernel with `rows` independent output rows and
/// `work` total multiply-adds should split into under `policy` (1 =
/// sequential).
fn plan_workers(policy: &KernelPolicy, rows: usize, work: usize) -> usize {
    if rows < 2 {
        return 1;
    }
    let pool = rayon::pool_threads();
    let cap = if policy.max_threads == 0 { pool } else { policy.max_threads.min(pool) };
    if cap <= 1 {
        return 1;
    }
    match policy.parallel {
        ParallelMode::Off => 1,
        ParallelMode::On => cap.min(rows),
        ParallelMode::Auto => {
            if work < PAR_MIN_WORK {
                1
            } else {
                // Scale worker count with available work so medium kernels
                // don't fan out to threads they can't feed.
                cap.min(rows).min(work / PAR_MIN_WORK + 1)
            }
        }
    }
}

/// Raw mutable base pointer smuggled into pool chunks. Each chunk derives a
/// **disjoint** row/column range from it, so no two chunks alias.
#[derive(Clone, Copy)]
struct SendPtr(*mut f64);
// SAFETY: chunks only dereference disjoint ranges (asserted at each use
// site), and the posting thread blocks until all chunks retire.
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

impl SendPtr {
    /// The wrapped pointer. Method (not field) access on purpose: closures
    /// then capture the `Sync` wrapper, not the raw pointer itself, which
    /// edition-2021 disjoint capture would otherwise pluck out.
    #[inline]
    fn ptr(self) -> *mut f64 {
        self.0
    }
}

/// Splits `rows` into `workers` balanced contiguous ranges; returns the
/// bounds of range `chunk`.
#[inline]
fn chunk_bounds(rows: usize, workers: usize, chunk: usize) -> (usize, usize) {
    (chunk * rows / workers, (chunk + 1) * rows / workers)
}

// ---------------------------------------------------------------------------
// Fast-math exp
// ---------------------------------------------------------------------------

/// Branch-free polynomial `exp` for the opt-in fast-math mode.
///
/// Classic constant-folded range reduction: `x = k·ln2 + r` with
/// `|r| ≤ ln2/2`, `k` extracted by magic-number rounding, `ln2` split into
/// high/low parts so the reduction is exact to ~1e-20, `e^r` evaluated as a
/// degree-11 Taylor polynomial in Horner form (truncation error ≈ 6e-15
/// relative), and `2^k` rebuilt by exponent-bit construction. The argument
/// is clamped to `[-708, 709]`, inside which `2^k` stays a normal f64;
/// outside it the exact `exp` under/overflows and the sigmoid/softmax
/// consumers saturate identically to within the documented tolerance.
///
/// Maximum relative error vs `f64::exp` is ~2e-14 (proptest-bounded at
/// 1e-13 in this crate's test-suite), far inside the advertised ≤ 1e-9
/// network-level tolerance. Unlike `f64::exp` (an opaque libm call with
/// internal branches), this body is straight-line arithmetic, so LLVM can
/// vectorize loops over it.
#[inline]
pub fn fast_exp(x: f64) -> f64 {
    const LOG2_E: f64 = std::f64::consts::LOG2_E;
    // ln(2) split so that `k * LN2_HI` is exact for |k| < 2^(52-42): the
    // high part carries only the leading 42 significand bits.
    const LN2_HI: f64 = 0.693_147_180_369_123_8;
    const LN2_LO: f64 = 1.908_214_929_270_587_7e-10;
    // 1.5·2^52: adding it pushes the integer part of a small f64 into the
    // lowest significand bits, rounding to nearest — subtracting it back
    // yields round(x·log2e) without a branch or an explicit `round` call.
    const SHIFT: f64 = 6_755_399_441_055_744.0;
    let x = x.clamp(-708.0, 709.0);
    let kf = (x * LOG2_E + SHIFT) - SHIFT;
    let r = (x - kf * LN2_HI) - kf * LN2_LO;
    // Taylor coefficients 1/n! for n = 11 down to 0, Horner-folded. The
    // loop has a const trip count so LLVM unrolls it to the same
    // straight-line chain the nested expression would produce, with an
    // identical operation order (each step is `p*r + c`).
    const HORNER: [f64; 12] = [
        1.0 / 39_916_800.0,
        1.0 / 3_628_800.0,
        1.0 / 362_880.0,
        1.0 / 40_320.0,
        1.0 / 5_040.0,
        1.0 / 720.0,
        1.0 / 120.0,
        1.0 / 24.0,
        1.0 / 6.0,
        0.5,
        1.0,
        1.0,
    ];
    let mut p = HORNER[0];
    for &c in &HORNER[1..] {
        p = p * r + c;
    }
    // 2^k by exponent construction; kf ∈ [-1022, 1023] after the clamp.
    let scale = f64::from_bits((((kf as i64) + 1023) << 52) as u64);
    scale * p
}

/// Column panel width of the blocked GEMM. 256 doubles (2 KiB per panel
/// row) keeps a few panel rows of `b` resident in L1 while still giving the
/// axpy inner loop long contiguous runs.
const GEMM_PANEL: usize = 256;

/// Blocked GEMM accumulate: `c += a · b` with `a: m×k`, `b: k×n`, `c: m×n`.
///
/// Row-major throughout. The loop nest is panel-of-`n` outer, rows of `c`
/// next, reduction (`k`) innermost-but-one, with the element-wise update
/// over the column panel innermost — i.e. the outer-product formulation of
/// GEMM. The reduction is unrolled four-wide, but each output element still
/// receives its `k` addends **one at a time, in ascending order** (the
/// unrolled body is a chain of separate `t += aᵢ·bᵢⱼ` statements, which the
/// compiler may not reassociate), so the result is bitwise-identical to the
/// naive ordered triple loop while the column loop vectorizes and the
/// per-iteration slicing overhead is amortized — this matters at RBM sizes,
/// where the hidden dimension is often in the single digits.
pub fn gemm_acc(c: &mut DenseMatrix, a: &DenseMatrix, b: &DenseMatrix) {
    assert_eq!(a.cols, b.rows, "gemm inner dimensions must agree");
    assert_eq!(c.rows, a.rows, "gemm output rows must match a");
    assert_eq!(c.cols, b.cols, "gemm output cols must match b");
    let (m, n, k) = (c.rows, c.cols, a.cols);
    gemm_rows(&mut c.data, &a.data, &b.data, m, n, k);
}

/// Policy-dispatched [`gemm_acc`]: splits the `m` output rows into
/// contiguous chunks across the pool when `policy` allows. Bitwise-identical
/// to the sequential kernel at any thread count — a chunk runs exactly the
/// code `gemm_acc` would run on those rows (the row blocking is relative to
/// the chunk base, and per-element accumulation order never depends on it).
pub fn gemm_acc_with(policy: &KernelPolicy, c: &mut DenseMatrix, a: &DenseMatrix, b: &DenseMatrix) {
    assert_eq!(a.cols, b.rows, "gemm inner dimensions must agree");
    assert_eq!(c.rows, a.rows, "gemm output rows must match a");
    assert_eq!(c.cols, b.cols, "gemm output cols must match b");
    let _timer = KernelTimer::start(policy, "gemm");
    let (m, n, k) = (c.rows, c.cols, a.cols);
    let workers = plan_workers(policy, m, m * n * k);
    if workers <= 1 {
        gemm_rows(&mut c.data, &a.data, &b.data, m, n, k);
        return;
    }
    let c_base = SendPtr(c.data.as_mut_ptr());
    let (a_data, b_data) = (&a.data[..], &b.data[..]);
    rayon::parallel_chunks(workers, workers - 1, |chunk| {
        let (lo, hi) = chunk_bounds(m, workers, chunk);
        if lo == hi {
            return;
        }
        // SAFETY: chunk ranges partition 0..m, so the row slices are
        // disjoint; the matrices were size-checked above.
        let c_rows =
            unsafe { std::slice::from_raw_parts_mut(c_base.ptr().add(lo * n), (hi - lo) * n) };
        gemm_rows(c_rows, &a_data[lo * k..hi * k], b_data, hi - lo, n, k);
    });
}

/// Row-range core of [`gemm_acc`]: `c (rows×n) += a (rows×k) · b (k×n)`
/// over flat row-major slices. `c`/`a` hold exactly `rows` rows (callers
/// offset into the full matrices); `b` is the full `k×n` operand.
fn gemm_rows(c: &mut [f64], a: &[f64], b: &[f64], rows: usize, n: usize, k: usize) {
    debug_assert_eq!(c.len(), rows * n);
    debug_assert_eq!(a.len(), rows * k);
    debug_assert_eq!(b.len(), k * n);
    let mut j0 = 0;
    while j0 < n {
        let j1 = (j0 + GEMM_PANEL).min(n);
        let width = j1 - j0;
        // Register block of four output rows: one slice of each `b` row per
        // reduction step serves four independent accumulation streams,
        // which amortizes the slicing and gives the column loop ILP even at
        // single-digit widths (RBM hidden/class layers are that narrow).
        let mut r0 = 0;
        while r0 + 4 <= rows {
            let (block, _) = c[r0 * n..].split_at_mut(4 * n);
            let mut crows = block.chunks_exact_mut(n);
            let c0 = &mut crows.next().unwrap()[j0..j1];
            let c1 = &mut crows.next().unwrap()[j0..j1];
            let c2 = &mut crows.next().unwrap()[j0..j1];
            let c3 = &mut crows.next().unwrap()[j0..j1];
            let (ar0, ar1, ar2, ar3) = (
                &a[r0 * k..(r0 + 1) * k],
                &a[(r0 + 1) * k..(r0 + 2) * k],
                &a[(r0 + 2) * k..(r0 + 3) * k],
                &a[(r0 + 3) * k..(r0 + 4) * k],
            );
            // All five slices have length exactly `width`, so the indexed
            // loop below carries no bounds checks after LLVM folds them.
            let (c0, c1, c2, c3) =
                (&mut c0[..width], &mut c1[..width], &mut c2[..width], &mut c3[..width]);
            for i in 0..k {
                let b_row = &b[i * n + j0..i * n + j1][..width];
                let (a0, a1, a2, a3) = (ar0[i], ar1[i], ar2[i], ar3[i]);
                for j in 0..width {
                    let bj = b_row[j];
                    c0[j] += a0 * bj;
                    c1[j] += a1 * bj;
                    c2[j] += a2 * bj;
                    c3[j] += a3 * bj;
                }
            }
            r0 += 4;
        }
        for r in r0..rows {
            let a_row = &a[r * k..(r + 1) * k];
            let c_row = &mut c[r * n + j0..r * n + j1];
            for (i, &a_ri) in a_row.iter().enumerate() {
                let b_row = &b[i * n + j0..i * n + j1];
                axpy(c_row, a_ri, b_row);
            }
        }
        j0 = j1;
    }
}

/// Fused double-GEMM accumulate: `c += a1 · b1 + a2 · b2` with
/// `a1: m×k1`, `b1: k1×n`, `a2: m×k2`, `b2: k2×n`, `c: m×n`.
///
/// Exactly [`gemm_acc`] run twice — all `a1·b1` addends land before any
/// `a2·b2` addend, each in ascending reduction order, matching the
/// reference's "visible terms, then class terms" activation sums — but each
/// output row block is sliced and traversed once instead of twice. This is
/// the hidden-layer activation kernel: `h = σ(b ⊕ v·w + z·uᵀ)` feeds both
/// phases of CD-k.
pub fn gemm2_acc(
    c: &mut DenseMatrix,
    a1: &DenseMatrix,
    b1: &DenseMatrix,
    a2: &DenseMatrix,
    b2: &DenseMatrix,
) {
    assert_eq!(a1.cols, b1.rows, "gemm2 first inner dimensions must agree");
    assert_eq!(a2.cols, b2.rows, "gemm2 second inner dimensions must agree");
    assert_eq!(c.rows, a1.rows, "gemm2 output rows must match a1");
    assert_eq!(c.rows, a2.rows, "gemm2 output rows must match a2");
    assert_eq!(c.cols, b1.cols, "gemm2 output cols must match b1");
    assert_eq!(c.cols, b2.cols, "gemm2 output cols must match b2");
    let (m, n) = (c.rows, c.cols);
    let (k1, k2) = (a1.cols, a2.cols);
    gemm2_rows(&mut c.data, &a1.data, &b1.data, k1, &a2.data, &b2.data, k2, m, n);
}

/// Policy-dispatched [`gemm2_acc`]; same row-chunk strategy (and the same
/// bitwise guarantee) as [`gemm_acc_with`].
pub fn gemm2_acc_with(
    policy: &KernelPolicy,
    c: &mut DenseMatrix,
    a1: &DenseMatrix,
    b1: &DenseMatrix,
    a2: &DenseMatrix,
    b2: &DenseMatrix,
) {
    assert_eq!(a1.cols, b1.rows, "gemm2 first inner dimensions must agree");
    assert_eq!(a2.cols, b2.rows, "gemm2 second inner dimensions must agree");
    assert_eq!(c.rows, a1.rows, "gemm2 output rows must match a1");
    assert_eq!(c.rows, a2.rows, "gemm2 output rows must match a2");
    assert_eq!(c.cols, b1.cols, "gemm2 output cols must match b1");
    assert_eq!(c.cols, b2.cols, "gemm2 output cols must match b2");
    let _timer = KernelTimer::start(policy, "gemm2");
    let (m, n) = (c.rows, c.cols);
    let (k1, k2) = (a1.cols, a2.cols);
    let workers = plan_workers(policy, m, m * n * (k1 + k2));
    if workers <= 1 {
        gemm2_rows(&mut c.data, &a1.data, &b1.data, k1, &a2.data, &b2.data, k2, m, n);
        return;
    }
    let c_base = SendPtr(c.data.as_mut_ptr());
    let (a1d, b1d, a2d, b2d) = (&a1.data[..], &b1.data[..], &a2.data[..], &b2.data[..]);
    rayon::parallel_chunks(workers, workers - 1, |chunk| {
        let (lo, hi) = chunk_bounds(m, workers, chunk);
        if lo == hi {
            return;
        }
        // SAFETY: chunk ranges partition 0..m, so the row slices are
        // disjoint; the matrices were size-checked above.
        let c_rows =
            unsafe { std::slice::from_raw_parts_mut(c_base.ptr().add(lo * n), (hi - lo) * n) };
        gemm2_rows(
            c_rows,
            &a1d[lo * k1..hi * k1],
            b1d,
            k1,
            &a2d[lo * k2..hi * k2],
            b2d,
            k2,
            hi - lo,
            n,
        );
    });
}

/// Row-range core of [`gemm2_acc`] over flat row-major slices; `c`/`a1`/`a2`
/// hold exactly `rows` rows, `b1`/`b2` are the full operands.
#[allow(clippy::too_many_arguments)]
fn gemm2_rows(
    c: &mut [f64],
    a1: &[f64],
    b1: &[f64],
    k1: usize,
    a2: &[f64],
    b2: &[f64],
    k2: usize,
    rows: usize,
    n: usize,
) {
    debug_assert_eq!(c.len(), rows * n);
    debug_assert_eq!(a1.len(), rows * k1);
    debug_assert_eq!(a2.len(), rows * k2);
    let mut j0 = 0;
    while j0 < n {
        let j1 = (j0 + GEMM_PANEL).min(n);
        let width = j1 - j0;
        let mut r0 = 0;
        while r0 + 4 <= rows {
            let (block, _) = c[r0 * n..].split_at_mut(4 * n);
            let mut crows = block.chunks_exact_mut(n);
            let c0 = &mut crows.next().unwrap()[j0..j1];
            let c1 = &mut crows.next().unwrap()[j0..j1];
            let c2 = &mut crows.next().unwrap()[j0..j1];
            let c3 = &mut crows.next().unwrap()[j0..j1];
            let (c0, c1, c2, c3) =
                (&mut c0[..width], &mut c1[..width], &mut c2[..width], &mut c3[..width]);
            for (a, b, k) in [(a1, b1, k1), (a2, b2, k2)] {
                let (ar0, ar1, ar2, ar3) = (
                    &a[r0 * k..(r0 + 1) * k],
                    &a[(r0 + 1) * k..(r0 + 2) * k],
                    &a[(r0 + 2) * k..(r0 + 3) * k],
                    &a[(r0 + 3) * k..(r0 + 4) * k],
                );
                for i in 0..k {
                    let b_row = &b[i * n + j0..i * n + j1][..width];
                    let (a0, a1, a2, a3) = (ar0[i], ar1[i], ar2[i], ar3[i]);
                    for j in 0..width {
                        let bj = b_row[j];
                        c0[j] += a0 * bj;
                        c1[j] += a1 * bj;
                        c2[j] += a2 * bj;
                        c3[j] += a3 * bj;
                    }
                }
            }
            r0 += 4;
        }
        for r in r0..rows {
            let c_row = &mut c[r * n + j0..r * n + j1];
            for (a, b, k) in [(a1, b1, k1), (a2, b2, k2)] {
                for (i, &a_ri) in a[r * k..(r + 1) * k].iter().enumerate() {
                    let b_row = &b[i * n + j0..i * n + j1];
                    axpy(c_row, a_ri, b_row);
                }
            }
        }
        j0 = j1;
    }
}

/// GEMV accumulate against a transposed matrix: `y += aᵀ · x` with
/// `a: k×n`, `x: k`, `y: n`.
///
/// Runs as `k` axpys over the rows of `a`, so the memory access is
/// contiguous (no strided column walks) and each `y[j]` accumulates in
/// ascending-`i` order — the reference's `act += v[i] * w[i][j]` order.
pub fn gemv_t_acc(y: &mut [f64], a: &DenseMatrix, x: &[f64]) {
    assert_eq!(x.len(), a.rows, "gemv_t input length must match rows");
    assert_eq!(y.len(), a.cols, "gemv_t output length must match cols");
    for (i, &xi) in x.iter().enumerate() {
        axpy(y, xi, a.row(i));
    }
}

/// Row-dot GEMV accumulate: `y[r] += a.row(r) · x` with `a: m×n`, `x: n`,
/// `y: m`.
///
/// Each output element continues accumulating from its current value, one
/// addend at a time in ascending column order — the order of the
/// reference's `act += h[j] * w[i][j]` loops, so results are
/// bitwise-identical to them. Rows of `a` are contiguous, so the access
/// pattern streams memory even though the reduction itself stays scalar.
pub fn gemv_acc(y: &mut [f64], a: &DenseMatrix, x: &[f64]) {
    assert_eq!(y.len(), a.rows, "gemv output length must match rows");
    assert_eq!(x.len(), a.cols, "gemv input length must match cols");
    for (r, yr) in y.iter_mut().enumerate() {
        let mut acc = *yr;
        for (&av, &xv) in a.row(r).iter().zip(x.iter()) {
            acc += av * xv;
        }
        *yr = acc;
    }
}

/// Writes the transpose of `src` into `dst` (re-shaping `dst` as needed).
///
/// The flat RBM stores `w: V×H` and `u: H×Z` row-major and refreshes the
/// transposes `wᵀ: H×V`, `uᵀ: Z×H` once per mini-batch, so that *every*
/// GEMM in the batched CD-k can run in the contiguous axpy form above —
/// an O(V·H) copy buys O(N·V·H) worth of contiguous accesses.
pub fn transpose_into(dst: &mut DenseMatrix, src: &DenseMatrix) {
    dst.resize(src.cols, src.rows);
    for r in 0..src.rows {
        let row = &src.data[r * src.cols..(r + 1) * src.cols];
        for (c, &v) in row.iter().enumerate() {
            dst.data[c * src.rows + r] = v;
        }
    }
}

/// Fused logistic sigmoid: `x[j] ← 1 / (1 + e^(−x[j]))` in place.
pub fn sigmoid_in_place(x: &mut [f64]) {
    for v in x.iter_mut() {
        *v = 1.0 / (1.0 + (-*v).exp());
    }
}

/// Fast-math sigmoid: [`sigmoid_in_place`] with [`fast_exp`] substituted
/// for `f64::exp`. Absolute error vs the exact kernel is bounded by the
/// fast-math tolerance (≤ 1e-9, typically ~1e-15: a sigmoid's derivative
/// w.r.t. its `exp` term is at most 1). The loop body is branch-free, so it
/// vectorizes.
pub fn sigmoid_in_place_fast(x: &mut [f64]) {
    for v in x.iter_mut() {
        *v = 1.0 / (1.0 + fast_exp(-*v));
    }
}

/// Policy-dispatched sigmoid over a **feature-major** activation matrix:
/// selects exact vs fast-math per [`KernelPolicy::fast_math`] and splits
/// the flat element range across the pool when `policy` allows (each
/// element is independent, so any split is bitwise-safe *within* a math
/// mode).
pub fn sigmoid_matrix_with(policy: &KernelPolicy, m: &mut DenseMatrix) {
    let _timer = KernelTimer::start(policy, "sigmoid");
    let total = m.data.len();
    // Unit of work per element is several mul/adds (polynomial) or a libm
    // call; weight it so Auto engages at realistic activation sizes.
    let workers = plan_workers(policy, total / 64 + 1, total * 8);
    let apply: fn(&mut [f64]) =
        if policy.fast_math { sigmoid_in_place_fast } else { sigmoid_in_place };
    if workers <= 1 {
        apply(&mut m.data);
        return;
    }
    let base = SendPtr(m.data.as_mut_ptr());
    rayon::parallel_chunks(workers, workers - 1, |chunk| {
        let (lo, hi) = chunk_bounds(total, workers, chunk);
        if lo == hi {
            return;
        }
        // SAFETY: chunk ranges partition 0..total, so the element slices
        // are disjoint.
        let part = unsafe { std::slice::from_raw_parts_mut(base.ptr().add(lo), hi - lo) };
        apply(part);
    });
}

/// In-place numerically stable softmax: replaces raw scores with the
/// softmax distribution (uniform for degenerate inputs) without any
/// allocation.
///
/// This is the one shared softmax of the workspace: the RBM's class-layer
/// reconstruction (Eq. 12) and every classifier in `rbm-im-classifiers`
/// (which re-exports it) use this exact implementation, so the two can
/// never drift apart numerically.
pub fn softmax_in_place(scores: &mut [f64]) {
    if scores.is_empty() {
        return;
    }
    let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    for s in scores.iter_mut() {
        *s = (*s - max).exp();
    }
    let total: f64 = scores.iter().sum();
    if total <= 0.0 || !total.is_finite() {
        let uniform = 1.0 / scores.len() as f64;
        scores.fill(uniform);
        return;
    }
    for s in scores.iter_mut() {
        *s /= total;
    }
}

/// Batched CD-k weight gradient over **feature-major** activations:
/// `d[i][j] += Σₙ weights[n] · (x0[i][n]·h0[j][n] − xk[i][n]·hk[j][n])`
/// with `d: V×H`, `x0`/`xk`: `V×N`, `h0`/`hk`: `H×N`.
///
/// Each gradient element is a weighted batch reduction of the fused
/// positive-minus-negative outer product. The reduction runs over `n` in
/// ascending order with each addend kept as the reference's exact
/// expression `w·(x0·h0 − xk·hk)` (no factoring of `w·x0` out, which would
/// re-associate the multiplies), so the result is bitwise-identical to the
/// per-instance loop. Four `j` columns are interleaved per pass to give the
/// serial reduction chains ILP, and all operand rows are contiguous.
pub fn cdk_weight_gradient(
    d: &mut DenseMatrix,
    weights: &[f64],
    x0: &DenseMatrix,
    h0: &DenseMatrix,
    xk: &DenseMatrix,
    hk: &DenseMatrix,
) {
    let batch = weights.len();
    assert_eq!(x0.cols, batch, "x0 batch mismatch");
    assert_eq!(xk.cols, batch, "xk batch mismatch");
    assert_eq!(h0.cols, batch, "h0 batch mismatch");
    assert_eq!(hk.cols, batch, "hk batch mismatch");
    assert_eq!(d.rows, x0.rows, "gradient rows must match x height");
    assert_eq!(d.cols, h0.rows, "gradient cols must match h height");
    let (v, h) = (d.rows, d.cols);
    cdk_weight_rows(&mut d.data, weights, &x0.data, &xk.data, &h0.data, &hk.data, v, h, batch);
}

/// Policy-dispatched [`cdk_weight_gradient`]: splits the `V` gradient rows
/// (visible units) across the pool. Each row's batch reductions run whole
/// on one worker in the sequential op order, so the result is
/// bitwise-identical to sequential at any thread count.
pub fn cdk_weight_gradient_with(
    policy: &KernelPolicy,
    d: &mut DenseMatrix,
    weights: &[f64],
    x0: &DenseMatrix,
    h0: &DenseMatrix,
    xk: &DenseMatrix,
    hk: &DenseMatrix,
) {
    let batch = weights.len();
    assert_eq!(x0.cols, batch, "x0 batch mismatch");
    assert_eq!(xk.cols, batch, "xk batch mismatch");
    assert_eq!(h0.cols, batch, "h0 batch mismatch");
    assert_eq!(hk.cols, batch, "hk batch mismatch");
    assert_eq!(d.rows, x0.rows, "gradient rows must match x height");
    assert_eq!(d.cols, h0.rows, "gradient cols must match h height");
    let _timer = KernelTimer::start(policy, "cdk_weight_grad");
    let (v, h) = (d.rows, d.cols);
    let workers = plan_workers(policy, v, v * h * batch * 2);
    if workers <= 1 {
        cdk_weight_rows(&mut d.data, weights, &x0.data, &xk.data, &h0.data, &hk.data, v, h, batch);
        return;
    }
    let d_base = SendPtr(d.data.as_mut_ptr());
    let (x0d, xkd, h0d, hkd) = (&x0.data[..], &xk.data[..], &h0.data[..], &hk.data[..]);
    rayon::parallel_chunks(workers, workers - 1, |chunk| {
        let (lo, hi) = chunk_bounds(v, workers, chunk);
        if lo == hi {
            return;
        }
        // SAFETY: chunk ranges partition 0..v, so the gradient row slices
        // are disjoint; operands were size-checked above.
        let d_rows =
            unsafe { std::slice::from_raw_parts_mut(d_base.ptr().add(lo * h), (hi - lo) * h) };
        cdk_weight_rows(
            d_rows,
            weights,
            &x0d[lo * batch..hi * batch],
            &xkd[lo * batch..hi * batch],
            h0d,
            hkd,
            hi - lo,
            h,
            batch,
        );
    });
}

/// Row-range core of [`cdk_weight_gradient`]: `d`/`x0`/`xk` hold exactly
/// `rows` rows (callers offset into the full matrices), `h0`/`hk` are the
/// full `h × batch` activations.
#[allow(clippy::too_many_arguments)]
fn cdk_weight_rows(
    d: &mut [f64],
    weights: &[f64],
    x0: &[f64],
    xk: &[f64],
    h0: &[f64],
    hk: &[f64],
    rows: usize,
    h: usize,
    batch: usize,
) {
    debug_assert_eq!(d.len(), rows * h);
    debug_assert_eq!(x0.len(), rows * batch);
    debug_assert_eq!(xk.len(), rows * batch);
    let weights = &weights[..batch];
    for i in 0..rows {
        let x0r = &x0[i * batch..(i + 1) * batch];
        let xkr = &xk[i * batch..(i + 1) * batch];
        let d_row = &mut d[i * h..(i + 1) * h];
        let mut j = 0;
        while j + 4 <= h {
            let (h0a, h0b, h0c, h0d) = (
                &h0[j * batch..(j + 1) * batch],
                &h0[(j + 1) * batch..(j + 2) * batch],
                &h0[(j + 2) * batch..(j + 3) * batch],
                &h0[(j + 3) * batch..(j + 4) * batch],
            );
            let (hka, hkb, hkc, hkd) = (
                &hk[j * batch..(j + 1) * batch],
                &hk[(j + 1) * batch..(j + 2) * batch],
                &hk[(j + 2) * batch..(j + 3) * batch],
                &hk[(j + 3) * batch..(j + 4) * batch],
            );
            let (mut s0, mut s1, mut s2, mut s3) =
                (d_row[j], d_row[j + 1], d_row[j + 2], d_row[j + 3]);
            for n in 0..batch {
                let (w, p, q) = (weights[n], x0r[n], xkr[n]);
                s0 += w * (p * h0a[n] - q * hka[n]);
                s1 += w * (p * h0b[n] - q * hkb[n]);
                s2 += w * (p * h0c[n] - q * hkc[n]);
                s3 += w * (p * h0d[n] - q * hkd[n]);
            }
            d_row[j] = s0;
            d_row[j + 1] = s1;
            d_row[j + 2] = s2;
            d_row[j + 3] = s3;
            j += 4;
        }
        while j < h {
            let h0r = &h0[j * batch..(j + 1) * batch];
            let hkr = &hk[j * batch..(j + 1) * batch];
            let mut acc = d_row[j];
            for n in 0..batch {
                acc += weights[n] * (x0r[n] * h0r[n] - xkr[n] * hkr[n]);
            }
            d_row[j] = acc;
            j += 1;
        }
    }
}

/// Batched CD-k bias gradient over **feature-major** activations:
/// `d[i] += Σₙ weights[n] · (x0[i][n] − xk[i][n])`, reduced in ascending
/// instance order. Two unit rows are interleaved per pass so the serial
/// reduction chains overlap.
pub fn cdk_bias_gradient(d: &mut [f64], weights: &[f64], x0: &DenseMatrix, xk: &DenseMatrix) {
    let batch = weights.len();
    assert_eq!(x0.cols, batch, "x0 batch mismatch");
    assert_eq!(xk.cols, batch, "xk batch mismatch");
    assert_eq!(d.len(), x0.rows, "bias gradient length mismatch");
    cdk_bias_rows(d, weights, &x0.data, &xk.data, batch);
}

/// Policy-dispatched [`cdk_bias_gradient`]: splits the unit rows across the
/// pool; each element's batch reduction runs whole on one worker, so the
/// result is bitwise-identical to sequential (the 2-row interleave is
/// per-element independent and chunk-local).
pub fn cdk_bias_gradient_with(
    policy: &KernelPolicy,
    d: &mut [f64],
    weights: &[f64],
    x0: &DenseMatrix,
    xk: &DenseMatrix,
) {
    let batch = weights.len();
    assert_eq!(x0.cols, batch, "x0 batch mismatch");
    assert_eq!(xk.cols, batch, "xk batch mismatch");
    assert_eq!(d.len(), x0.rows, "bias gradient length mismatch");
    let _timer = KernelTimer::start(policy, "cdk_bias_grad");
    let rows = d.len();
    let workers = plan_workers(policy, rows, rows * batch);
    if workers <= 1 {
        cdk_bias_rows(d, weights, &x0.data, &xk.data, batch);
        return;
    }
    let d_base = SendPtr(d.as_mut_ptr());
    let (x0d, xkd) = (&x0.data[..], &xk.data[..]);
    rayon::parallel_chunks(workers, workers - 1, |chunk| {
        let (lo, hi) = chunk_bounds(rows, workers, chunk);
        if lo == hi {
            return;
        }
        // SAFETY: chunk ranges partition 0..rows, so the gradient slices
        // are disjoint; operands were size-checked above.
        let d_part = unsafe { std::slice::from_raw_parts_mut(d_base.ptr().add(lo), hi - lo) };
        cdk_bias_rows(
            d_part,
            weights,
            &x0d[lo * batch..hi * batch],
            &xkd[lo * batch..hi * batch],
            batch,
        );
    });
}

/// Row-range core of [`cdk_bias_gradient`] over flat slices holding exactly
/// `d.len()` rows.
fn cdk_bias_rows(d: &mut [f64], weights: &[f64], x0: &[f64], xk: &[f64], batch: usize) {
    debug_assert_eq!(x0.len(), d.len() * batch);
    debug_assert_eq!(xk.len(), d.len() * batch);
    let weights = &weights[..batch];
    let mut i = 0;
    while i + 2 <= d.len() {
        let x0a = &x0[i * batch..(i + 1) * batch];
        let x0b = &x0[(i + 1) * batch..(i + 2) * batch];
        let xka = &xk[i * batch..(i + 1) * batch];
        let xkb = &xk[(i + 1) * batch..(i + 2) * batch];
        let (mut s0, mut s1) = (d[i], d[i + 1]);
        for n in 0..batch {
            let w = weights[n];
            s0 += w * (x0a[n] - xka[n]);
            s1 += w * (x0b[n] - xkb[n]);
        }
        d[i] = s0;
        d[i + 1] = s1;
        i += 2;
    }
    if i < d.len() {
        let x0r = &x0[i * batch..(i + 1) * batch];
        let xkr = &xk[i * batch..(i + 1) * batch];
        let mut acc = d[i];
        for n in 0..batch {
            acc += weights[n] * (x0r[n] - xkr[n]);
        }
        d[i] = acc;
    }
}

/// In-place column softmax over a **feature-major** matrix (`Z` class rows
/// × `N` instance columns): each column is replaced by its stable softmax,
/// with exactly the op order of [`softmax_in_place`] (max-subtract, exp,
/// ascending-order sum, divide; uniform for degenerate columns).
pub fn softmax_cols_in_place(m: &mut DenseMatrix) {
    let (z, n) = (m.rows, m.cols);
    if z == 0 {
        return;
    }
    softmax_cols_range(&mut m.data, z, n, 0, n, f64::exp);
}

/// Policy-dispatched column softmax: selects exact vs fast-math `exp` per
/// [`KernelPolicy::fast_math`] and splits the **columns** (instances)
/// across the pool when `policy` allows. Every column is processed whole by
/// one worker in the exact sequential op order, so the split is
/// bitwise-safe within a math mode.
pub fn softmax_cols_in_place_with(policy: &KernelPolicy, m: &mut DenseMatrix) {
    let _timer = KernelTimer::start(policy, "softmax");
    let (z, n) = (m.rows, m.cols);
    if z == 0 {
        return;
    }
    let exp: fn(f64) -> f64 = if policy.fast_math { fast_exp } else { f64::exp };
    let workers = plan_workers(policy, n, z * n * 8);
    if workers <= 1 {
        softmax_cols_range(&mut m.data, z, n, 0, n, exp);
        return;
    }
    let base = SendPtr(m.data.as_mut_ptr());
    rayon::parallel_chunks(workers, workers - 1, |chunk| {
        let (lo, hi) = chunk_bounds(n, workers, chunk);
        if lo == hi {
            return;
        }
        // SAFETY: chunks touch disjoint column ranges, so no element is
        // accessed by two chunks; the backing allocation outlives the
        // dispatch (the poster blocks until every chunk retires). The core
        // goes through the raw pointer because the columns of a chunk are
        // strided — a per-chunk `&mut` slice would overlap its neighbours.
        unsafe { softmax_cols_range_raw(base.ptr(), z, n, lo, hi, exp) }
    });
}

/// Raw-pointer core of the column softmax over columns `c0..c1`.
///
/// # Safety
///
/// `data` must point at a live `z * n` f64 buffer, and the caller must
/// guarantee exclusive access to the elements of columns `c0..c1` (index
/// `k * n + col` for every `k < z`, `c0 <= col < c1`) for the duration of
/// the call.
unsafe fn softmax_cols_range_raw(
    data: *mut f64,
    z: usize,
    n: usize,
    c0: usize,
    c1: usize,
    exp: fn(f64) -> f64,
) {
    debug_assert!(c1 <= n);
    for col in c0..c1 {
        let mut max = f64::NEG_INFINITY;
        for k in 0..z {
            max = f64::max(max, unsafe { *data.add(k * n + col) });
        }
        let mut total = 0.0;
        for k in 0..z {
            let slot = unsafe { &mut *data.add(k * n + col) };
            let e = exp(*slot - max);
            *slot = e;
            total += e;
        }
        if total <= 0.0 || !total.is_finite() {
            let uniform = 1.0 / z as f64;
            for k in 0..z {
                unsafe { *data.add(k * n + col) = uniform };
            }
            continue;
        }
        for k in 0..z {
            unsafe { *data.add(k * n + col) /= total };
        }
    }
}

/// Safe wrapper over [`softmax_cols_range_raw`] for exclusive access.
fn softmax_cols_range(
    data: &mut [f64],
    z: usize,
    n: usize,
    c0: usize,
    c1: usize,
    exp: fn(f64) -> f64,
) {
    assert!(data.len() >= z * n, "softmax matrix storage too short");
    // SAFETY: `data` is exclusively borrowed and long enough.
    unsafe { softmax_cols_range_raw(data.as_mut_ptr(), z, n, c0, c1, exp) }
}

/// Fused momentum + weight-decay parameter update over flat storage:
/// `vel ← momentum·vel + lr·(grad − decay·param)`, `param += vel`.
///
/// One pass over three contiguous slices; vectorizes across elements.
pub fn momentum_update(
    param: &mut [f64],
    vel: &mut [f64],
    grad: &[f64],
    lr: f64,
    momentum: f64,
    decay: f64,
) {
    assert_eq!(param.len(), vel.len(), "momentum update length mismatch");
    assert_eq!(param.len(), grad.len(), "momentum update length mismatch");
    for ((p, v), &g) in param.iter_mut().zip(vel.iter_mut()).zip(grad.iter()) {
        *v = momentum * *v + lr * (g - decay * *p);
        *p += *v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_matrix_layout_is_row_major() {
        let m = DenseMatrix::from_fn(3, 4, |r, c| (r * 10 + c) as f64);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0, 13.0]);
        assert_eq!(m.get(2, 3), 23.0);
        assert_eq!(m.as_slice()[4], 10.0);
    }

    #[test]
    fn resize_keeps_capacity_and_zeroes() {
        let mut m = DenseMatrix::zeros(4, 4);
        m.fill(7.0);
        let ptr = m.as_slice().as_ptr();
        m.resize(2, 3);
        assert_eq!(m.as_slice(), &[0.0; 6]);
        m.resize(4, 4);
        assert_eq!(m.as_slice().as_ptr(), ptr, "re-growing within capacity must not reallocate");
    }

    #[test]
    fn gemm_matches_naive_triple_loop_bitwise() {
        let a = DenseMatrix::from_fn(5, 7, |r, c| ((r * 31 + c * 17) % 13) as f64 * 0.37 - 2.0);
        let b = DenseMatrix::from_fn(7, 9, |r, c| ((r * 5 + c * 3) % 11) as f64 * 0.21 - 1.0);
        let mut c = DenseMatrix::from_fn(5, 9, |r, c| (r + c) as f64 * 0.01);
        let mut naive = c.clone();
        gemm_acc(&mut c, &a, &b);
        for r in 0..5 {
            for j in 0..9 {
                let mut acc = naive.get(r, j);
                for i in 0..7 {
                    acc += a.get(r, i) * b.get(i, j);
                }
                *naive.get_mut(r, j) = acc;
            }
        }
        assert_eq!(c, naive, "blocked gemm must be bitwise-identical to the ordered triple loop");
    }

    #[test]
    fn gemm_blocking_covers_wide_outputs() {
        // Wider than one column panel so the j0 loop takes several steps.
        let n = GEMM_PANEL + 37;
        let a = DenseMatrix::from_fn(2, 3, |r, c| (r + c) as f64);
        let b = DenseMatrix::from_fn(3, n, |r, c| ((r + c) % 7) as f64);
        let mut c = DenseMatrix::zeros(2, n);
        gemm_acc(&mut c, &a, &b);
        for r in 0..2 {
            for j in 0..n {
                let expect: f64 = (0..3).map(|i| a.get(r, i) * b.get(i, j)).sum();
                assert!((c.get(r, j) - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn gemv_t_matches_per_column_dots() {
        let a = DenseMatrix::from_fn(4, 6, |r, c| (r * 6 + c) as f64 * 0.1);
        let x = [1.0, -2.0, 0.5, 3.0];
        let mut y = vec![0.25; 6];
        gemv_t_acc(&mut y, &a, &x);
        for (j, &yj) in y.iter().enumerate() {
            let mut expect = 0.25;
            for (i, &xi) in x.iter().enumerate() {
                expect += a.get(i, j) * xi;
            }
            assert_eq!(yj, expect);
        }
    }

    #[test]
    fn transpose_round_trips() {
        let m = DenseMatrix::from_fn(3, 5, |r, c| (r * 5 + c) as f64);
        let mut t = DenseMatrix::default();
        transpose_into(&mut t, &m);
        assert_eq!(t.rows(), 5);
        assert_eq!(t.cols(), 3);
        let mut back = DenseMatrix::default();
        transpose_into(&mut back, &t);
        assert_eq!(back, m);
    }

    #[test]
    fn softmax_is_stable_and_normalized() {
        let mut s = vec![1000.0, 1001.0, 999.0];
        softmax_in_place(&mut s);
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(s[1] > s[0] && s[0] > s[2]);
        let mut degenerate = vec![f64::NEG_INFINITY, f64::NEG_INFINITY];
        softmax_in_place(&mut degenerate);
        assert_eq!(degenerate, vec![0.5, 0.5]);
        let mut empty: Vec<f64> = vec![];
        softmax_in_place(&mut empty);
        assert!(empty.is_empty());
    }

    #[test]
    fn momentum_update_applies_decay_and_velocity() {
        let mut p = [1.0, -1.0];
        let mut v = [0.5, 0.0];
        let g = [0.1, 0.2];
        momentum_update(&mut p, &mut v, &g, 0.1, 0.9, 0.01);
        let v0 = 0.9 * 0.5 + 0.1 * (0.1 - 0.01 * 1.0);
        let v1 = 0.1 * (0.2 + 0.01);
        assert_eq!(v, [v0, v1]);
        assert_eq!(p, [1.0 + v0, -1.0 + v1]);
    }

    #[test]
    fn dot_is_an_ordered_sum() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    /// A policy that forces the parallel path (no size threshold) with a
    /// given thread cap.
    fn par(max_threads: usize) -> KernelPolicy {
        KernelPolicy { parallel: ParallelMode::On, max_threads, fast_math: false, timing: false }
    }

    #[test]
    fn kernel_timing_records_without_perturbing_results() {
        let mk = |seed: usize, rows: usize, cols: usize| {
            DenseMatrix::from_fn(rows, cols, |r, c| {
                ((r * 13 + c * 29 + seed * 5) % 97) as f64 * 0.041 - 1.9
            })
        };
        let a = mk(1, 7, 5);
        let b = mk(2, 5, 11);
        let mut plain = mk(3, 7, 11);
        let mut timed = plain.clone();
        gemm_acc_with(&KernelPolicy::EXACT_SEQUENTIAL, &mut plain, &a, &b);

        rbm_im_obs::force_enabled(true);
        let policy = KernelPolicy { timing: true, ..KernelPolicy::EXACT_SEQUENTIAL };
        let before = rbm_im_obs::global().snapshot().merged_histogram("rbm_kernel_seconds").count();
        gemm_acc_with(&policy, &mut timed, &a, &b);
        sigmoid_matrix_with(&policy, &mut timed);
        let after = rbm_im_obs::global().snapshot().merged_histogram("rbm_kernel_seconds").count();
        rbm_im_obs::force_enabled(false);

        assert_eq!(after - before, 2, "one observation per timed kernel call");
        sigmoid_matrix_with(&KernelPolicy::EXACT_SEQUENTIAL, &mut plain);
        assert_eq!(plain.data, timed.data, "timing must never perturb kernel results");
    }

    #[test]
    fn parallel_kernels_are_bitwise_identical_to_sequential() {
        rayon::ensure_pool(4);
        let (v, h, n) = (23, 9, 37);
        let mk = |seed: usize, rows: usize, cols: usize| {
            DenseMatrix::from_fn(rows, cols, |r, c| {
                ((r * 31 + c * 17 + seed * 7) % 101) as f64 * 0.037 - 1.7
            })
        };
        let a = mk(1, v, h);
        let b = mk(2, h, n);
        let a2 = mk(3, v, 5);
        let b2 = mk(4, 5, n);
        let x0 = mk(5, v, n);
        let xk = mk(6, v, n);
        let h0 = mk(7, h, n);
        let hk = mk(8, h, n);
        let weights: Vec<f64> = (0..n).map(|i| 0.5 + (i % 7) as f64 * 0.1).collect();
        for threads in [1, 2, 3, 4] {
            let policy = par(threads);

            let mut c_seq = mk(9, v, n);
            let mut c_par = c_seq.clone();
            gemm_acc(&mut c_seq, &a, &b);
            gemm_acc_with(&policy, &mut c_par, &a, &b);
            assert_eq!(c_seq, c_par, "gemm_acc parallel@{threads} must be bitwise identical");

            let mut c_seq = mk(10, v, n);
            let mut c_par = c_seq.clone();
            gemm2_acc(&mut c_seq, &a, &b, &a2, &b2);
            gemm2_acc_with(&policy, &mut c_par, &a, &b, &a2, &b2);
            assert_eq!(c_seq, c_par, "gemm2_acc parallel@{threads} must be bitwise identical");

            let mut d_seq = mk(11, v, h);
            let mut d_par = d_seq.clone();
            cdk_weight_gradient(&mut d_seq, &weights, &x0, &h0, &xk, &hk);
            cdk_weight_gradient_with(&policy, &mut d_par, &weights, &x0, &h0, &xk, &hk);
            assert_eq!(d_seq, d_par, "cdk weight parallel@{threads} must be bitwise identical");

            let mut bias_seq: Vec<f64> = (0..v).map(|i| i as f64 * 0.01).collect();
            let mut bias_par = bias_seq.clone();
            cdk_bias_gradient(&mut bias_seq, &weights, &x0, &xk);
            cdk_bias_gradient_with(&policy, &mut bias_par, &weights, &x0, &xk);
            assert_eq!(bias_seq, bias_par, "cdk bias parallel@{threads} must be bitwise identical");

            let mut s_seq = mk(12, h, n);
            let mut s_par = s_seq.clone();
            sigmoid_in_place(s_seq.as_mut_slice());
            sigmoid_matrix_with(&policy, &mut s_par);
            assert_eq!(s_seq, s_par, "sigmoid parallel@{threads} must be bitwise identical");

            let mut z_seq = mk(13, 4, n);
            let mut z_par = z_seq.clone();
            softmax_cols_in_place(&mut z_seq);
            softmax_cols_in_place_with(&policy, &mut z_par);
            assert_eq!(z_seq, z_par, "softmax parallel@{threads} must be bitwise identical");
        }
    }

    #[test]
    fn auto_mode_small_kernels_stay_sequential_and_exact() {
        // Below the work threshold Auto must not engage the pool; results
        // are (trivially) bitwise-identical.
        let policy = KernelPolicy::default();
        let a = DenseMatrix::from_fn(3, 4, |r, c| (r + c) as f64 * 0.3);
        let b = DenseMatrix::from_fn(4, 5, |r, c| (r * 5 + c) as f64 * 0.1);
        let mut c1 = DenseMatrix::zeros(3, 5);
        let mut c2 = DenseMatrix::zeros(3, 5);
        gemm_acc(&mut c1, &a, &b);
        gemm_acc_with(&policy, &mut c2, &a, &b);
        assert_eq!(c1, c2);
    }

    #[test]
    fn fast_exp_is_within_tolerance() {
        // Dense sweep over the sigmoid/softmax-relevant range plus
        // saturation edges; relative error must stay far inside the 1e-9
        // fast-math budget.
        let mut worst = 0.0f64;
        let mut x = -60.0f64;
        while x <= 60.0 {
            let exact = x.exp();
            let fast = fast_exp(x);
            let rel = ((fast - exact) / exact).abs();
            worst = worst.max(rel);
            x += 0.00137;
        }
        assert!(worst < 1e-13, "fast_exp worst relative error {worst:e} exceeds 1e-13");
        // Saturation: huge arguments must stay finite/zero-ish and ordered.
        assert!(fast_exp(1000.0) > 1e300);
        assert!(fast_exp(-1000.0) >= 0.0 && fast_exp(-1000.0) < 1e-300);
        assert!(fast_exp(0.0) == 1.0 || (fast_exp(0.0) - 1.0).abs() < 1e-15);
        assert!(fast_exp(f64::NAN).is_nan());
    }

    #[test]
    fn fast_sigmoid_and_softmax_are_within_1e_9() {
        let policy = KernelPolicy { fast_math: true, ..KernelPolicy::default() };
        let mut exact = DenseMatrix::from_fn(7, 33, |r, c| (r as f64 - 3.0) * 2.5 + c as f64 * 0.3);
        let mut fast = exact.clone();
        sigmoid_in_place(exact.as_mut_slice());
        sigmoid_matrix_with(&policy, &mut fast);
        for (e, f) in exact.as_slice().iter().zip(fast.as_slice()) {
            assert!((e - f).abs() <= 1e-9, "sigmoid fast-math diverged: {e} vs {f}");
        }
        let mut exact = DenseMatrix::from_fn(5, 21, |r, c| (r * 13 + c) as f64 * 0.7 - 20.0);
        let mut fast = exact.clone();
        softmax_cols_in_place(&mut exact);
        softmax_cols_in_place_with(&policy, &mut fast);
        for (e, f) in exact.as_slice().iter().zip(fast.as_slice()) {
            assert!((e - f).abs() <= 1e-9, "softmax fast-math diverged: {e} vs {f}");
        }
    }
}
