//! Open, string-keyed detector registry.
//!
//! The harness used to instantiate detectors through a closed `match` on
//! [`DetectorKind`](crate::detectors::DetectorKind), which meant every new
//! detector (or tuned variant of an existing one) required editing the
//! harness itself. The registry inverts that: a detector is described by a
//! serde-friendly [`DetectorSpec`] — a name plus parameters (numeric
//! hyper-parameters or word-valued execution knobs) — and
//! resolved against a [`DetectorRegistry`] of factories. Anything
//! implementing `DriftDetector` can be registered under a new name without
//! touching this crate, and tuned variants are one-liners:
//!
//! ```
//! use rbm_im_harness::registry::{DetectorRegistry, DetectorSpec};
//!
//! let registry = DetectorRegistry::with_defaults();
//! let spec = DetectorSpec::parse("adwin(delta=0.01)").unwrap();
//! let detector = registry.build(&spec, 10, 3).unwrap();
//! assert_eq!(detector.name(), "ADWIN");
//! ```
//!
//! The trainable RBM-IM detector exposes its full hyper-parameter surface
//! through the same grammar (under both the `rbm-im` name and the compact
//! `rbm` alias), so serving attach calls and experiment configs tune it
//! without code changes:
//!
//! ```
//! use rbm_im_harness::registry::{DetectorRegistry, DetectorSpec, ParamValue};
//!
//! let registry = DetectorRegistry::with_defaults();
//! let spec = DetectorSpec::parse("rbm(hidden=60,minibatch=50,seed=7)").unwrap();
//! assert_eq!(spec.params.get("hidden"), Some(&ParamValue::Number(60.0)));
//! let detector = registry.build(&spec, 10, 4).unwrap();
//! assert_eq!(detector.name(), "RBM-IM");
//!
//! // Execution-mode knobs take identifier words, not just numbers:
//! let spec = DetectorSpec::parse("rbm(parallel=on, fastmath=on)").unwrap();
//! let detector = registry.build(&spec, 10, 4).unwrap();
//! assert_eq!(detector.name(), "RBM-IM");
//!
//! // Infrastructure can ask which parameters a factory takes — this is
//! // how the serving layer decides to inject per-stream `seed`s.
//! assert!(registry.accepts_param("rbm", "seed"));
//! assert!(!registry.accepts_param("adwin", "seed"));
//! ```
//!
//! [`DetectorKind`](crate::detectors::DetectorKind) survives as a thin
//! compatibility shim whose `build` delegates here.

use rbm_im::network::RbmNetworkConfig;
use rbm_im::{ParallelMode, RbmIm, RbmImConfig};
use rbm_im_detectors::ddm_oci::DdmOciConfig;
use rbm_im_detectors::fhddm::FhddmConfig;
use rbm_im_detectors::perfsim::PerfSimConfig;
use rbm_im_detectors::{
    Adwin, Cusum, Ddm, DdmOci, DriftDetector, Ecdd, Eddm, Fhddm, HddmA, HddmW, PageHinkley,
    PerfSim, Rddm, Wstd,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::OnceLock;

/// A single parameter value in a detector spec: a number (the common case —
/// hyper-parameters are numeric) or a bare identifier word for execution-mode
/// knobs like `parallel=auto`. Words are restricted to identifier shape
/// (`[A-Za-z][A-Za-z0-9_-]*`) so spec strings stay unambiguous.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamValue {
    /// Numeric value (`delta=0.01`, `hidden=60`).
    Number(f64),
    /// Identifier word (`parallel=auto`, `fastmath=on`).
    Word(String),
}

impl ParamValue {
    /// The numeric value, if this is a number.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            ParamValue::Number(n) => Some(*n),
            ParamValue::Word(_) => None,
        }
    }

    /// The word, if this is an identifier word.
    pub fn as_word(&self) -> Option<&str> {
        match self {
            ParamValue::Number(_) => None,
            ParamValue::Word(w) => Some(w.as_str()),
        }
    }

    /// Whether `text` has identifier shape — an ASCII letter followed by
    /// letters, digits, `_` or `-`. Anything else is neither a number nor a
    /// word and is rejected at parse time.
    fn is_word(text: &str) -> bool {
        let mut chars = text.chars();
        matches!(chars.next(), Some(c) if c.is_ascii_alphabetic())
            && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
    }
}

impl From<f64> for ParamValue {
    fn from(v: f64) -> Self {
        ParamValue::Number(v)
    }
}

impl From<&str> for ParamValue {
    fn from(v: &str) -> Self {
        ParamValue::Word(v.to_string())
    }
}

impl From<String> for ParamValue {
    fn from(v: String) -> Self {
        ParamValue::Word(v)
    }
}

impl fmt::Display for ParamValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamValue::Number(n) => write!(f, "{n}"),
            ParamValue::Word(w) => write!(f, "{w}"),
        }
    }
}

// Numbers serialize as JSON numbers and words as JSON strings, so spec files
// read naturally (`{"parallel": "auto", "hidden": 60}`). Deserialization
// tries the numeric shape first; note `f64` itself round-trips non-finite
// values as the strings `"inf"`/`"-inf"`/`"NaN"`, which therefore decode as
// numbers — exactly matching what `DetectorSpec::parse` does with those
// tokens (Rust's float parser accepts them).
impl Serialize for ParamValue {
    fn serialize_value(&self) -> serde::Value {
        match self {
            ParamValue::Number(n) => n.serialize_value(),
            ParamValue::Word(w) => w.serialize_value(),
        }
    }
}

impl Deserialize for ParamValue {
    fn deserialize_value(value: &serde::Value) -> Result<Self, serde::Error> {
        if let Ok(n) = f64::deserialize_value(value) {
            return Ok(ParamValue::Number(n));
        }
        let word = String::deserialize_value(value)?;
        if ParamValue::is_word(&word) {
            Ok(ParamValue::Word(word))
        } else {
            Err(serde::Error::msg(format!("`{word}` is not an identifier-shaped param word")))
        }
    }
}

/// A detector described by name and parameters — the unit the registry
/// resolves and the experiment grid iterates over. Serializes to plain JSON
/// (`{"name": "adwin", "params": {"delta": 0.01}}`) so experiment
/// configurations can live in files.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectorSpec {
    /// Registry key (case-insensitive; display capitalization is preserved).
    pub name: String,
    /// Parameter overrides (numeric hyper-parameters or word-valued mode
    /// knobs); anything a factory does not understand is rejected at build
    /// time.
    pub params: BTreeMap<String, ParamValue>,
}

impl DetectorSpec {
    /// Spec with no parameter overrides.
    pub fn new(name: impl Into<String>) -> Self {
        DetectorSpec { name: name.into(), params: BTreeMap::new() }
    }

    /// Adds one parameter override (builder style). Accepts `f64` for
    /// numeric parameters and `&str`/`String` for word-valued knobs.
    pub fn with_param(mut self, key: impl Into<String>, value: impl Into<ParamValue>) -> Self {
        self.params.insert(key.into(), value.into());
        self
    }

    /// Parses the compact `name(key=value, key=value)` form.
    ///
    /// The grammar is `name` or `name(params)` where `params` is a
    /// comma-separated list of `key=value` pairs; a value is a number or an
    /// identifier word (`parallel=auto`). Whitespace around names, keys and
    /// values is ignored, and a trailing comma is tolerated. Parameter
    /// *validation* happens at build time against the factory's declared
    /// set, not here — so `adwin(delta=two)` parses but fails to build.
    ///
    /// ```
    /// use rbm_im_harness::registry::{DetectorSpec, ParamValue};
    ///
    /// let spec = DetectorSpec::parse("rbm(hidden=60, minibatch=50, seed=7)").unwrap();
    /// assert_eq!(spec.name, "rbm");
    /// assert_eq!(spec.params.get("minibatch"), Some(&ParamValue::Number(50.0)));
    /// assert_eq!(spec.label(), "rbm(hidden=60, minibatch=50, seed=7)");
    ///
    /// let spec = DetectorSpec::parse("rbm(parallel=auto, fastmath=on)").unwrap();
    /// assert_eq!(spec.params.get("parallel"), Some(&ParamValue::Word("auto".into())));
    ///
    /// assert_eq!(DetectorSpec::parse("ddm").unwrap().params.len(), 0);
    /// assert!(DetectorSpec::parse("adwin(delta=").is_err());
    /// assert!(DetectorSpec::parse("adwin(delta=2..5)").is_err());
    /// ```
    pub fn parse(text: &str) -> Result<Self, RegistryError> {
        let text = text.trim();
        let Some(open) = text.find('(') else {
            if text.is_empty() {
                return Err(RegistryError::InvalidSpec("empty detector spec".into()));
            }
            return Ok(DetectorSpec::new(text));
        };
        let name = text[..open].trim();
        if name.is_empty() {
            return Err(RegistryError::InvalidSpec(format!("missing detector name in `{text}`")));
        }
        let Some(rest) = text[open + 1..].strip_suffix(')') else {
            return Err(RegistryError::InvalidSpec(format!("unbalanced parentheses in `{text}`")));
        };
        let mut spec = DetectorSpec::new(name);
        for pair in rest.split(',') {
            let pair = pair.trim();
            if pair.is_empty() {
                continue;
            }
            let Some((key, value)) = pair.split_once('=') else {
                return Err(RegistryError::InvalidSpec(format!(
                    "expected `key=value`, found `{pair}` in `{text}`"
                )));
            };
            let value = value.trim();
            let value = if let Ok(n) = value.parse::<f64>() {
                ParamValue::Number(n)
            } else if ParamValue::is_word(value) {
                ParamValue::Word(value.to_string())
            } else {
                return Err(RegistryError::InvalidSpec(format!(
                    "value `{value}` in `{text}` is neither a number nor an identifier word"
                )));
            };
            spec.params.insert(key.trim().to_string(), value);
        }
        Ok(spec)
    }

    /// Canonical display label: the bare name, or `name(key=value, …)` when
    /// parameters are overridden. Used as the detector column label for grid
    /// results.
    pub fn label(&self) -> String {
        if self.params.is_empty() {
            self.name.clone()
        } else {
            let params: Vec<String> = self.params.iter().map(|(k, v)| format!("{k}={v}")).collect();
            format!("{}({})", self.name, params.join(", "))
        }
    }

    /// Normalized registry key.
    fn key(&self) -> String {
        normalize_key(&self.name)
    }
}

fn normalize_key(name: &str) -> String {
    name.trim().to_ascii_lowercase()
}

/// Errors raised by registry operations.
#[derive(Debug, Clone, PartialEq)]
pub enum RegistryError {
    /// The spec string could not be parsed.
    InvalidSpec(String),
    /// No factory is registered under the requested name.
    UnknownDetector {
        /// The name that failed to resolve.
        name: String,
        /// Every registered key, for the error message.
        known: Vec<String>,
    },
    /// A parameter the factory does not understand (or cannot accept).
    InvalidParam {
        /// Detector being built.
        detector: String,
        /// Explanation.
        message: String,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::InvalidSpec(msg) => write!(f, "invalid detector spec: {msg}"),
            RegistryError::UnknownDetector { name, known } => {
                write!(f, "unknown detector `{name}` (registered: {})", known.join(", "))
            }
            RegistryError::InvalidParam { detector, message } => {
                write!(f, "invalid parameter for `{detector}`: {message}")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// Parameter view handed to factories: typed access plus rejection of
/// anything outside the factory's declared parameter set.
pub struct Params<'a> {
    detector: &'a str,
    map: &'a BTreeMap<String, ParamValue>,
}

impl<'a> Params<'a> {
    /// Validates that every provided key is in `allowed`, then exposes the
    /// map for typed reads.
    pub fn checked(
        detector: &'a str,
        map: &'a BTreeMap<String, ParamValue>,
        allowed: &[&str],
    ) -> Result<Self, RegistryError> {
        for key in map.keys() {
            if !allowed.contains(&key.as_str()) {
                return Err(RegistryError::InvalidParam {
                    detector: detector.to_string(),
                    message: format!(
                        "unknown parameter `{key}` (accepted: {})",
                        if allowed.is_empty() { "none".to_string() } else { allowed.join(", ") }
                    ),
                });
            }
        }
        Ok(Params { detector, map })
    }

    fn invalid(&self, message: String) -> RegistryError {
        RegistryError::InvalidParam { detector: self.detector.to_string(), message }
    }

    /// The parameter as a number, or a default; word values are rejected.
    pub fn get_or(&self, key: &str, default: f64) -> Result<f64, RegistryError> {
        match self.map.get(key) {
            None => Ok(default),
            Some(ParamValue::Number(v)) => Ok(*v),
            Some(ParamValue::Word(w)) => {
                Err(self.invalid(format!("`{key}` must be numeric, got `{w}`")))
            }
        }
    }

    /// The parameter as a non-negative integer (zero allowed — seeds and
    /// warm-up counts are legitimately 0), or a default. Only a *provided*
    /// value is range-checked; the default passes through untouched (some
    /// factories use out-of-range defaults as "not set" sentinels).
    pub fn get_u64_or(&self, key: &str, default: u64) -> Result<u64, RegistryError> {
        if !self.map.contains_key(key) {
            return Ok(default);
        }
        match self.get_or(key, 0.0)? {
            v if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Ok(v as u64),
            v => Err(self.invalid(format!("`{key}` must be a non-negative integer, got {v}"))),
        }
    }

    /// The parameter as a positive integer, or a default (not range-checked,
    /// like [`Params::get_u64_or`]).
    pub fn get_usize_or(&self, key: &str, default: usize) -> Result<usize, RegistryError> {
        if !self.map.contains_key(key) {
            return Ok(default);
        }
        match self.get_or(key, 0.0)? {
            v if v >= 1.0 && v.fract() == 0.0 && v <= usize::MAX as f64 => Ok(v as usize),
            v => Err(self.invalid(format!("`{key}` must be a positive integer, got {v}"))),
        }
    }

    /// The parameter as one of the allowed identifier words, or `None` when
    /// absent. Numbers and unknown words are rejected with an error naming
    /// the accepted set.
    pub fn get_word(&self, key: &str, allowed: &[&str]) -> Result<Option<&'a str>, RegistryError> {
        match self.map.get(key) {
            None => Ok(None),
            Some(ParamValue::Word(w)) if allowed.contains(&w.as_str()) => Ok(Some(w.as_str())),
            Some(other) => Err(self
                .invalid(format!("`{key}` must be one of {}, got `{other}`", allowed.join("|")))),
        }
    }

    /// The parameter as an on/off flag, or a default. Accepts the words
    /// `on`/`off`/`true`/`false` and the numbers `1`/`0`.
    pub fn get_flag_or(&self, key: &str, default: bool) -> Result<bool, RegistryError> {
        match self.map.get(key) {
            None => Ok(default),
            Some(ParamValue::Word(w)) => match w.as_str() {
                "on" | "true" => Ok(true),
                "off" | "false" => Ok(false),
                other => Err(self.invalid(format!("`{key}` must be on|off|1|0, got `{other}`"))),
            },
            Some(ParamValue::Number(n)) if *n == 1.0 => Ok(true),
            Some(ParamValue::Number(n)) if *n == 0.0 => Ok(false),
            Some(ParamValue::Number(n)) => {
                Err(self.invalid(format!("`{key}` must be on|off|1|0, got {n}")))
            }
        }
    }
}

/// Factory signature: `(spec params, num_features, num_classes) -> detector`.
pub type DetectorFactory = Box<
    dyn Fn(&Params<'_>, usize, usize) -> Result<Box<dyn DriftDetector + Send>, RegistryError>
        + Send
        + Sync,
>;

struct RegisteredDetector {
    factory: DetectorFactory,
    allowed_params: Vec<&'static str>,
}

/// String-keyed map from detector names to factories.
pub struct DetectorRegistry {
    entries: BTreeMap<String, RegisteredDetector>,
}

impl DetectorRegistry {
    /// An empty registry (useful for fully custom detector sets).
    pub fn empty() -> Self {
        DetectorRegistry { entries: BTreeMap::new() }
    }

    /// The registry with every detector this workspace ships: the 13
    /// reference detectors plus RBM-IM, under their lowercase table names
    /// (`"wstd"`, `"rddm"`, `"fhddm"`, `"perfsim"`, `"ddm-oci"`, `"rbm-im"`
    /// — also under the compact alias `"rbm"` — `"ddm"`, `"eddm"`,
    /// `"adwin"`, `"hddm-a"`, `"hddm-w"`, `"pagehinkley"`, `"cusum"`,
    /// `"ecdd"`).
    pub fn with_defaults() -> Self {
        let mut registry = DetectorRegistry::empty();
        registry.register("wstd", &[], |_, _, _| Ok(Box::new(Wstd::new())));
        registry.register("rddm", &[], |_, _, _| Ok(Box::new(Rddm::new())));
        registry.register("fhddm", &["window_size", "delta"], |p, _, _| {
            let defaults = FhddmConfig::default();
            Ok(Box::new(Fhddm::with_config(FhddmConfig {
                window_size: p.get_usize_or("window_size", defaults.window_size)?,
                delta: p.get_or("delta", defaults.delta)?,
            })))
        });
        registry.register("perfsim", &[], |_, _, classes| {
            Ok(Box::new(PerfSim::new(PerfSimConfig::for_classes(classes))))
        });
        registry.register("ddm-oci", &[], |_, _, classes| {
            Ok(Box::new(DdmOci::new(DdmOciConfig::for_classes(classes))))
        });
        // RBM-IM accepts the full hyper-parameter surface of Tab. II in
        // spec strings, so served streams attach tuned detectors without
        // code changes: `"rbm(hidden=60,minibatch=50)"` is a valid spec.
        // `minibatch` is a compact alias of `mini_batch`; `hidden` is the
        // absolute hidden-unit count (overrides `hidden_fraction`); `seed`
        // reseeds the network RNG (the serving layer injects a per-stream
        // seed here in deterministic mode). `parallel`/`threads`/`fastmath`
        // are execution knobs, not hyper-parameters: `parallel=auto|off|on`
        // selects row-parallel kernels (bitwise-identical to sequential),
        // `threads=N` caps the worker count (0 = whole pool), and
        // `fastmath=on|off|1|0` opts into the ≤1e-9 polynomial-`exp`
        // activation path, and `timing=on|off|1|0` opts into per-kernel
        // CD-k timing (`rbm_kernel_seconds{kernel}` in the global metrics
        // registry; results are untouched).
        const RBM_PARAMS: &[&str] = &[
            "mini_batch",
            "minibatch",
            "hidden_fraction",
            "hidden",
            "learning_rate",
            "gibbs_steps",
            "persistence",
            "warmup",
            "seed",
            "parallel",
            "threads",
            "fastmath",
            "timing",
        ];
        let rbm_factory = |p: &Params<'_>,
                           features: usize,
                           classes: usize|
         -> Result<Box<dyn DriftDetector + Send>, RegistryError> {
            let base = RbmImConfig::default();
            let mini_batch_alias = p.get_usize_or("minibatch", base.mini_batch_size)?;
            let hidden_units = match p.get_usize_or("hidden", 0)? {
                0 => base.network.hidden_units,
                n => Some(n),
            };
            // Execution-mode knobs: absent means "keep the config default"
            // (which for `parallel` honours the RBM_KERNEL_PARALLEL env).
            let parallel = match p.get_word("parallel", &["auto", "off", "on"])? {
                None => base.network.parallel,
                Some("auto") => ParallelMode::Auto,
                Some("off") => ParallelMode::Off,
                Some("on") => ParallelMode::On,
                Some(_) => unreachable!("get_word validated the allowed set"),
            };
            let config = RbmImConfig {
                mini_batch_size: p.get_usize_or("mini_batch", mini_batch_alias)?,
                persistence: p.get_usize_or("persistence", base.persistence as usize)? as u32,
                warmup_batches: p.get_u64_or("warmup", base.warmup_batches)?,
                network: RbmNetworkConfig {
                    hidden_fraction: p.get_or("hidden_fraction", base.network.hidden_fraction)?,
                    hidden_units,
                    learning_rate: p.get_or("learning_rate", base.network.learning_rate)?,
                    gibbs_steps: p.get_usize_or("gibbs_steps", base.network.gibbs_steps)?,
                    seed: p.get_u64_or("seed", base.network.seed)?,
                    parallel,
                    max_threads: p.get_u64_or("threads", base.network.max_threads as u64)? as usize,
                    fast_math: p.get_flag_or("fastmath", base.network.fast_math)?,
                    kernel_timing: p.get_flag_or("timing", base.network.kernel_timing)?,
                    ..base.network
                },
                ..base
            };
            Ok(Box::new(RbmIm::new(features, classes, config)))
        };
        registry.register("rbm-im", RBM_PARAMS, rbm_factory);
        // Compact alias used by serving attach specs.
        registry.register("rbm", RBM_PARAMS, rbm_factory);
        registry.register("ddm", &[], |_, _, _| Ok(Box::new(Ddm::new())));
        registry.register("eddm", &[], |_, _, _| Ok(Box::new(Eddm::new())));
        registry.register("adwin", &["delta"], |p, _, _| {
            Ok(Box::new(Adwin::new(p.get_or("delta", 0.002)?)))
        });
        registry.register("hddm-a", &[], |_, _, _| Ok(Box::new(HddmA::new())));
        registry.register("hddm-w", &["lambda"], |p, _, _| {
            Ok(Box::new(HddmW::new(p.get_or("lambda", 0.05)?)))
        });
        registry.register("pagehinkley", &[], |_, _, _| Ok(Box::new(PageHinkley::new())));
        registry.register("cusum", &[], |_, _, _| Ok(Box::new(Cusum::new())));
        registry.register("ecdd", &[], |_, _, _| Ok(Box::new(Ecdd::new())));
        registry
    }

    /// The process-wide default registry ([`DetectorRegistry::with_defaults`],
    /// built once). `DetectorKind::build` and the no-registry pipeline paths
    /// resolve against this.
    pub fn global() -> &'static DetectorRegistry {
        static GLOBAL: OnceLock<DetectorRegistry> = OnceLock::new();
        GLOBAL.get_or_init(DetectorRegistry::with_defaults)
    }

    /// Registers (or replaces) a factory under `name`. `allowed_params`
    /// documents — and enforces — the parameter keys the factory accepts.
    pub fn register<F>(&mut self, name: &str, allowed_params: &[&'static str], factory: F)
    where
        F: Fn(&Params<'_>, usize, usize) -> Result<Box<dyn DriftDetector + Send>, RegistryError>
            + Send
            + Sync
            + 'static,
    {
        self.entries.insert(
            normalize_key(name),
            RegisteredDetector {
                factory: Box::new(factory),
                allowed_params: allowed_params.to_vec(),
            },
        );
    }

    /// Whether a factory is registered under `name`.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.contains_key(&normalize_key(name))
    }

    /// Whether the factory registered under `name` declares `param` among
    /// its accepted parameter keys (`false` for unknown detectors). Lets
    /// infrastructure decide parameter injection generically — e.g. the
    /// serving layer injects a per-stream `seed` into any spec whose
    /// factory accepts one, without hard-coding detector names.
    pub fn accepts_param(&self, name: &str, param: &str) -> bool {
        self.entries
            .get(&normalize_key(name))
            .is_some_and(|entry| entry.allowed_params.contains(&param))
    }

    /// Registered keys, sorted.
    pub fn names(&self) -> Vec<String> {
        self.entries.keys().cloned().collect()
    }

    /// Instantiates the detector described by `spec` for a stream schema.
    pub fn build(
        &self,
        spec: &DetectorSpec,
        num_features: usize,
        num_classes: usize,
    ) -> Result<Box<dyn DriftDetector + Send>, RegistryError> {
        let entry = self.entries.get(&spec.key()).ok_or_else(|| {
            RegistryError::UnknownDetector { name: spec.name.clone(), known: self.names() }
        })?;
        let params = Params::checked(&spec.name, &spec.params, &entry.allowed_params)?;
        (entry.factory)(&params, num_features, num_classes)
    }
}

impl fmt::Debug for DetectorRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DetectorRegistry").field("names", &self.names()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbm_im_detectors::Observation;

    #[test]
    fn default_registry_builds_every_paper_detector() {
        let registry = DetectorRegistry::with_defaults();
        // 13 reference detectors + RBM-IM + the `rbm` alias.
        assert_eq!(registry.names().len(), 15);
        let features = vec![0.1, 0.2, 0.3];
        for name in registry.names() {
            let spec = DetectorSpec::new(&name);
            let mut detector = registry.build(&spec, 3, 3).unwrap();
            for i in 0..60usize {
                let obs = Observation::new(&features, i % 3, (i + 1) % 3);
                detector.update(&obs);
            }
        }
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let registry = DetectorRegistry::with_defaults();
        assert!(registry.contains("ADWIN"));
        assert!(registry.contains("Rbm-Im"));
        let detector = registry.build(&DetectorSpec::new("RBM-IM"), 4, 2).unwrap();
        assert_eq!(detector.name(), "RBM-IM");
    }

    #[test]
    fn tuned_variants_parse_and_build() {
        let registry = DetectorRegistry::with_defaults();
        let spec = DetectorSpec::parse("adwin(delta=0.01)").unwrap();
        assert_eq!(spec.name, "adwin");
        assert_eq!(spec.params.get("delta"), Some(&ParamValue::Number(0.01)));
        assert_eq!(spec.label(), "adwin(delta=0.01)");
        registry.build(&spec, 5, 2).unwrap();

        let spec = DetectorSpec::parse("rbm-im(mini_batch=25, learning_rate=0.05)").unwrap();
        let detector = registry.build(&spec, 5, 2).unwrap();
        assert_eq!(detector.name(), "RBM-IM");
    }

    #[test]
    fn rbm_hyper_parameters_parse_in_spec_strings() {
        use rbm_im::RbmIm;

        let registry = DetectorRegistry::with_defaults();
        // The compact alias plus absolute hidden count and minibatch alias.
        let spec = DetectorSpec::parse("rbm(hidden=60, minibatch=50, seed=7)").unwrap();
        let mut detector = registry.build(&spec, 10, 3).unwrap();
        assert_eq!(detector.name(), "RBM-IM");
        let rbm = detector
            .as_any_mut()
            .expect("RBM-IM opts into downcasting")
            .downcast_mut::<RbmIm>()
            .expect("factory builds a concrete RbmIm");
        assert_eq!(rbm.network().num_hidden(), 60, "hidden= is the absolute unit count");

        // `hidden` overrides `hidden_fraction`; without it the fraction rules.
        let spec = DetectorSpec::parse("rbm-im(hidden_fraction=0.5)").unwrap();
        let mut detector = registry.build(&spec, 10, 3).unwrap();
        let rbm = detector.as_any_mut().unwrap().downcast_mut::<RbmIm>().expect("concrete RbmIm");
        assert_eq!(rbm.network().num_hidden(), 5);

        // Seeds decorrelate detectors deterministically: same seed ⇒ same
        // initial weights, different seed ⇒ different weights.
        let build = |seed: u64| {
            let spec = DetectorSpec::new("rbm").with_param("seed", seed as f64);
            let mut boxed = registry.build(&spec, 6, 2).unwrap();
            let w = boxed
                .as_any_mut()
                .unwrap()
                .downcast_mut::<RbmIm>()
                .unwrap()
                .network()
                .w()
                .as_slice()
                .to_vec();
            w
        };
        assert_eq!(build(5), build(5));
        assert_ne!(build(5), build(6));

        // The registry advertises which parameters a factory takes.
        assert!(registry.accepts_param("rbm", "seed"));
        assert!(registry.accepts_param("RBM-IM", "minibatch"));
        assert!(!registry.accepts_param("adwin", "seed"));
        assert!(!registry.accepts_param("nope", "seed"));

        // Seeds and warm-ups are validated like every other integer param:
        // negative or fractional values are rejected, zero is legal.
        for bad in ["rbm(seed=-1)", "rbm(seed=2.7)", "rbm(warmup=-3)"] {
            let err = registry
                .build(&DetectorSpec::parse(bad).unwrap(), 6, 2)
                .err()
                .expect("build must fail");
            assert!(matches!(err, RegistryError::InvalidParam { .. }), "{bad}: {err}");
        }
        registry.build(&DetectorSpec::parse("rbm(seed=0, warmup=0)").unwrap(), 6, 2).unwrap();
    }

    #[test]
    fn unknown_names_and_params_are_rejected() {
        let registry = DetectorRegistry::with_defaults();
        let err =
            registry.build(&DetectorSpec::new("made-up"), 4, 2).err().expect("build must fail");
        assert!(matches!(err, RegistryError::UnknownDetector { .. }));
        let err = registry
            .build(&DetectorSpec::new("adwin").with_param("window", 7.0), 4, 2)
            .err()
            .expect("build must fail");
        assert!(matches!(err, RegistryError::InvalidParam { .. }));
        let err = registry
            .build(&DetectorSpec::new("rbm-im").with_param("mini_batch", 12.5), 4, 2)
            .err()
            .expect("build must fail");
        assert!(matches!(err, RegistryError::InvalidParam { .. }));
    }

    #[test]
    fn custom_detectors_register_without_touching_the_harness() {
        let mut registry = DetectorRegistry::with_defaults();
        registry.register("tuned-adwin", &["delta"], |p, _, _| {
            Ok(Box::new(Adwin::new(p.get_or("delta", 0.01)?)))
        });
        assert!(registry.contains("tuned-adwin"));
        registry.build(&DetectorSpec::new("tuned-adwin"), 4, 2).unwrap();
    }

    #[test]
    fn spec_parse_error_paths() {
        assert!(DetectorSpec::parse("").is_err());
        assert!(DetectorSpec::parse("adwin(delta=").is_err());
        assert!(DetectorSpec::parse("adwin(delta)").is_err());
        assert!(DetectorSpec::parse("(delta=1)").is_err());
        // Values must be numbers or identifier words; anything else is a
        // parse error (words that a factory rejects fail later, at build).
        assert!(DetectorSpec::parse("adwin(delta=2..5)").is_err());
        assert!(DetectorSpec::parse("adwin(delta=a b)").is_err());
        assert!(DetectorSpec::parse("rbm(parallel=-auto)").is_err());
        assert_eq!(DetectorSpec::parse("  ddm  ").unwrap().name, "ddm");
    }

    #[test]
    fn word_values_parse_but_numeric_params_reject_them_at_build() {
        let registry = DetectorRegistry::with_defaults();
        // `delta=two` is grammatically fine now that words exist…
        let spec = DetectorSpec::parse("adwin(delta=two)").unwrap();
        assert_eq!(spec.params.get("delta"), Some(&ParamValue::Word("two".into())));
        // …but ADWIN's `delta` is numeric, so the build rejects it.
        let err = registry.build(&spec, 4, 2).err().expect("build must fail");
        assert!(matches!(err, RegistryError::InvalidParam { .. }), "{err}");
        // Same for integer-typed RBM params.
        let err = registry
            .build(&DetectorSpec::parse("rbm(seed=alpha)").unwrap(), 4, 2)
            .err()
            .expect("build must fail");
        assert!(matches!(err, RegistryError::InvalidParam { .. }), "{err}");
    }

    #[test]
    fn execution_mode_knobs_parse_and_build() {
        use rbm_im::RbmIm;

        let registry = DetectorRegistry::with_defaults();
        let check = |text: &str, parallel: ParallelMode, fast_math: bool| {
            let spec = DetectorSpec::parse(text).unwrap();
            let mut detector = registry.build(&spec, 6, 2).unwrap();
            let rbm =
                detector.as_any_mut().unwrap().downcast_mut::<RbmIm>().expect("concrete RbmIm");
            assert_eq!(rbm.config().network.parallel, parallel, "{text}");
            assert_eq!(rbm.config().network.fast_math, fast_math, "{text}");
        };
        check("rbm(parallel=off)", ParallelMode::Off, false);
        check("rbm(parallel=on, fastmath=on)", ParallelMode::On, true);
        check("rbm(parallel=auto, fastmath=0)", ParallelMode::Auto, false);
        check("rbm(fastmath=1)", RbmNetworkConfig::default().parallel, true);

        // `threads` caps the worker count; it is numeric.
        let spec = DetectorSpec::parse("rbm(parallel=on, threads=2)").unwrap();
        let mut detector = registry.build(&spec, 6, 2).unwrap();
        let rbm = detector.as_any_mut().unwrap().downcast_mut::<RbmIm>().unwrap();
        assert_eq!(rbm.config().network.max_threads, 2);

        // Unknown words for the mode knobs are named in the error.
        for bad in ["rbm(parallel=sideways)", "rbm(fastmath=maybe)", "rbm(parallel=1)"] {
            let err = registry
                .build(&DetectorSpec::parse(bad).unwrap(), 6, 2)
                .err()
                .expect("build must fail");
            assert!(matches!(err, RegistryError::InvalidParam { .. }), "{bad}: {err}");
        }
    }

    #[test]
    fn spec_serde_round_trip() {
        let spec = DetectorSpec::new("adwin").with_param("delta", 0.01);
        let json = serde_json::to_string_pretty(&spec).unwrap();
        let back: DetectorSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn word_params_round_trip_through_parse_serde_and_reparse() {
        // parse → serde → re-parse of the new execution knobs: the JSON form
        // carries words as strings, and the label re-parses to the same spec.
        let spec = DetectorSpec::parse("rbm(fastmath=on, hidden=60, parallel=auto)").unwrap();
        let json = serde_json::to_string_pretty(&spec).unwrap();
        assert!(json.contains("\"auto\""), "words serialize as JSON strings: {json}");
        assert!(json.contains("60"), "numbers stay numeric: {json}");
        let back: DetectorSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
        let reparsed = DetectorSpec::parse(&back.label()).unwrap();
        assert_eq!(spec, reparsed);
    }
}
