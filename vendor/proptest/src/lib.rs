//! Offline stand-in for `proptest`.
//!
//! Supports the strategy combinators this workspace's property tests use —
//! numeric ranges, tuples of strategies, and `prop::collection::vec` — and a
//! `proptest!` macro that runs each test body over a configurable number of
//! seeded random cases. No shrinking: a failing case panics with the
//! standard assertion message (the deterministic seed makes reruns
//! reproducible).

use std::ops::Range;

/// Deterministic SplitMix64 generator driving case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn seed(seed: u64) -> Self {
        TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// Generated value type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

/// Length specifications accepted by [`collection::vec`]: a fixed size or a
/// half-open range.
pub trait VecLen {
    /// Draws a concrete length.
    fn draw(&self, rng: &mut TestRng) -> usize;
}

impl VecLen for usize {
    fn draw(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl VecLen for Range<usize> {
    fn draw(&self, rng: &mut TestRng) -> usize {
        self.clone().generate(rng)
    }
}

/// Strategy produced by [`collection::vec`].
pub struct VecStrategy<S, L> {
    element: S,
    len: L,
}

impl<S: Strategy, L: VecLen> Strategy for VecStrategy<S, L> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.len.draw(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, VecLen, VecStrategy};

    /// Vector of `element` values with a length drawn from `len` (a fixed
    /// size or a range).
    pub fn vec<S: Strategy, L: VecLen>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Builds a configuration with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};

    /// Namespace alias so `prop::collection::vec(...)` resolves.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+)
    };
}

/// Declares seeded random-case tests, mirroring `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                // Seed derived from the test name so cases differ between
                // tests but stay reproducible between runs.
                let seed = {
                    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                    for b in stringify!($name).bytes() {
                        h ^= b as u64;
                        h = h.wrapping_mul(0x1000_0000_01b3);
                    }
                    h
                };
                let mut rng = $crate::TestRng::seed(seed);
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&$strategy, &mut rng);)+
                    let run = || { $body };
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run));
                    if let Err(payload) = result {
                        eprintln!(
                            "proptest case {}/{} of `{}` failed (seed {seed})",
                            case + 1, config.cases, stringify!($name)
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $( $(#[$meta])* fn $name($($arg in $strategy),+) $body )*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..9, y in -2.0f64..2.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vectors_respect_length(v in prop::collection::vec((0usize..4, 0.0f64..1.0), 1..50)) {
            prop_assert!(!v.is_empty() && v.len() < 50);
            for (a, b) in &v {
                prop_assert!(*a < 4);
                prop_assert!((0.0..1.0).contains(b));
            }
        }

        #[test]
        fn nested_vectors_work(m in prop::collection::vec(prop::collection::vec(0.0f64..1.0, 3), 2..6)) {
            prop_assert!(m.len() >= 2 && m.len() < 6);
            prop_assert_eq!(m[0].len(), 3);
        }
    }
}
