//! DDM-OCI — Drift Detection Method for Online Class Imbalance (Wang et
//! al.; the per-class-recall monitoring detector the paper uses as its
//! second skew-insensitive reference).
//!
//! DDM-OCI applies the DDM-style test not to the overall error rate but to
//! the **time-decayed recall of every class separately**. A significant drop
//! of any class's recall below its historical best signals a drift and
//! reports the affected class — this makes the detector skew-aware (minority
//! recall changes are not drowned by the majority) and gives it limited
//! per-class attribution.

use crate::{DetectorState, DriftDetector, Observation};

/// Configuration of [`DdmOci`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DdmOciConfig {
    /// Number of classes of the monitored problem.
    pub num_classes: usize,
    /// Time-decay factor for the per-class recall estimates.
    pub decay: f64,
    /// Warning threshold multiplier.
    pub warning_level: f64,
    /// Drift threshold multiplier.
    pub drift_level: f64,
    /// Minimum number of observations of a class before its recall is
    /// trusted.
    pub min_class_instances: u64,
}

impl DdmOciConfig {
    /// Default configuration for `num_classes` classes. The threshold
    /// multipliers apply to the standard deviation of the *decayed* recall
    /// estimate, which is far smaller than a plain Bernoulli deviation, so
    /// they are set higher than DDM's classical 2/3.
    pub fn for_classes(num_classes: usize) -> Self {
        DdmOciConfig {
            num_classes,
            decay: 0.995,
            warning_level: 4.0,
            drift_level: 6.0,
            min_class_instances: 30,
        }
    }
}

/// Per-class recall monitoring state.
#[derive(Debug, Clone)]
struct ClassMonitor {
    /// Raw (uncorrected) exponentially decayed recall accumulator.
    recall_raw: f64,
    /// Bias-corrected time-decayed recall estimate.
    recall: f64,
    /// Number of instances of this class seen in the current concept.
    seen: u64,
    /// Best (maximum) decayed recall observed in the current concept.
    best_recall: f64,
}

impl ClassMonitor {
    fn new() -> Self {
        ClassMonitor { recall_raw: 0.0, recall: 0.0, seen: 0, best_recall: 0.0 }
    }
}

/// The DDM-OCI detector.
#[derive(Debug, Clone)]
pub struct DdmOci {
    config: DdmOciConfig,
    monitors: Vec<ClassMonitor>,
    state: DetectorState,
    drifted: Vec<usize>,
}

impl DdmOci {
    /// Creates a DDM-OCI detector.
    pub fn new(config: DdmOciConfig) -> Self {
        assert!(config.num_classes >= 2);
        assert!(config.decay > 0.0 && config.decay < 1.0);
        assert!(config.drift_level > config.warning_level);
        DdmOci {
            monitors: (0..config.num_classes).map(|_| ClassMonitor::new()).collect(),
            state: DetectorState::Stable,
            drifted: Vec::new(),
            config,
        }
    }

    /// Current time-decayed recall estimate of a class.
    pub fn class_recall(&self, class: usize) -> f64 {
        self.monitors[class].recall
    }
}

impl DriftDetector for DdmOci {
    fn update(&mut self, observation: &Observation<'_>) -> DetectorState {
        let class = observation.true_class.min(self.config.num_classes - 1);
        let correct = if observation.correct { 1.0 } else { 0.0 };
        let monitor = &mut self.monitors[class];
        monitor.seen += 1;
        // Bias-corrected exponentially decayed recall: the raw EWMA starts
        // at zero, so dividing by (1 - decay^seen) removes the cold-start
        // bias that would otherwise lock the "best recall" at 1.0.
        monitor.recall_raw =
            self.config.decay * monitor.recall_raw + (1.0 - self.config.decay) * correct;
        let correction = 1.0 - self.config.decay.powi(monitor.seen as i32);
        monitor.recall = if correction > 0.0 { monitor.recall_raw / correction } else { correct };

        if monitor.seen < self.config.min_class_instances {
            self.state = DetectorState::Stable;
            return self.state;
        }
        // Standard deviation of the exponentially decayed recall estimate:
        // an EWMA with smoothing (1 − decay) over Bernoulli observations has
        // variance p(1-p) · (1-decay)/(1+decay) at steady state; before the
        // steady state the finite-sample variance p(1-p)/seen dominates, so
        // the larger of the two is used.
        let p = monitor.recall.clamp(0.0, 1.0);
        let weight_factor = (1.0 - self.config.decay) / (1.0 + self.config.decay);
        let variance_factor = weight_factor.max(1.0 / monitor.seen as f64);
        let std = (p * (1.0 - p) * variance_factor).sqrt().max(1e-6);

        if monitor.recall > monitor.best_recall {
            monitor.best_recall = monitor.recall;
        }

        let drop = monitor.best_recall - monitor.recall;
        let warning_threshold = self.config.warning_level * std;
        let drift_threshold = self.config.drift_level * std;
        self.state = if drop > drift_threshold {
            self.drifted = vec![class];
            // Reset only the affected class's concept statistics.
            self.monitors[class] = ClassMonitor::new();
            DetectorState::Drift
        } else if drop > warning_threshold {
            DetectorState::Warning
        } else {
            if self.state == DetectorState::Drift {
                self.drifted.clear();
            }
            DetectorState::Stable
        };
        self.state
    }

    fn state(&self) -> DetectorState {
        self.state
    }

    fn reset(&mut self) {
        *self = DdmOci::new(self.config);
    }

    fn name(&self) -> &'static str {
        "DDM-OCI"
    }

    fn snapshot_state(&self) -> Option<serde::Value> {
        use serde::{Serialize, Value};
        let monitors: Vec<Value> = self
            .monitors
            .iter()
            .map(|m| {
                Value::object(vec![
                    ("recall_raw", m.recall_raw.serialize_value()),
                    ("recall", m.recall.serialize_value()),
                    ("seen", m.seen.serialize_value()),
                    ("best_recall", m.best_recall.serialize_value()),
                ])
            })
            .collect();
        Some(Value::object(vec![
            ("monitors", Value::Array(monitors)),
            ("state", self.state.serialize_value()),
            ("drifted", self.drifted.serialize_value()),
        ]))
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), serde::Error> {
        let serde::Value::Array(monitors) = state.req("monitors")? else {
            return Err(serde::Error::msg("ddm-oci `monitors` must be an array"));
        };
        if monitors.len() != self.monitors.len() {
            return Err(serde::Error::msg(format!(
                "ddm-oci monitor count mismatch: snapshot has {}, detector has {}",
                monitors.len(),
                self.monitors.len()
            )));
        }
        for (monitor, value) in self.monitors.iter_mut().zip(monitors) {
            monitor.recall_raw = value.field("recall_raw")?;
            monitor.recall = value.field("recall")?;
            monitor.seen = value.field("seen")?;
            monitor.best_recall = value.field("best_recall")?;
        }
        self.state = state.field("state")?;
        self.drifted = state.field("drifted")?;
        Ok(())
    }

    fn per_class_detection(&self) -> bool {
        true
    }

    fn drifted_classes_into(&self, out: &mut Vec<usize>) {
        out.clear();
        out.extend_from_slice(&self.drifted);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DriftDetectorExt;

    /// Simulated imbalanced stream: class 0 dominates; at `change_point` the
    /// recall of `affected_class` collapses from ~0.9 to ~0.2.
    fn run_recall_drop(
        detector: &mut DdmOci,
        affected_class: usize,
        change_point: usize,
        length: usize,
    ) -> Vec<(usize, Vec<usize>)> {
        let features = [0.0];
        let mut detections = Vec::new();
        for i in 0..length {
            let true_class = if i % 20 < 17 { 0 } else { 1 + (i % 3).min(1) };
            let base_recall =
                if true_class == affected_class && i >= change_point { 0.2 } else { 0.9 };
            let correct = ((i as f64 * 0.754_877).fract()) < base_recall;
            let obs = Observation {
                features: &features,
                true_class,
                predicted_class: if correct { true_class } else { (true_class + 1) % 3 },
                correct,
            };
            if detector.update(&obs).is_drift() {
                detections.push((i, detector.drifted_classes()));
            }
        }
        detections
    }

    #[test]
    fn detects_minority_recall_collapse_and_attributes_class() {
        let mut d = DdmOci::new(DdmOciConfig::for_classes(3));
        let detections = run_recall_drop(&mut d, 2, 20_000, 40_000);
        let hit = detections.iter().find(|(p, _)| *p >= 20_000);
        assert!(hit.is_some(), "DDM-OCI must notice the minority recall collapse: {detections:?}");
        let (_, classes) = hit.unwrap();
        assert_eq!(classes, &vec![2], "the affected class must be attributed");
        assert!(d.per_class_detection());
    }

    #[test]
    fn detects_majority_recall_collapse_too() {
        let mut d = DdmOci::new(DdmOciConfig::for_classes(3));
        let detections = run_recall_drop(&mut d, 0, 10_000, 20_000);
        assert!(
            detections.iter().any(|(p, _)| *p >= 10_000),
            "majority collapse missed: {detections:?}"
        );
    }

    #[test]
    fn stable_recalls_stay_quiet() {
        let mut d = DdmOci::new(DdmOciConfig::for_classes(3));
        let detections = run_recall_drop(&mut d, 0, usize::MAX, 30_000);
        assert!(
            detections.len() <= 1,
            "stable stream should be (nearly) alarm free: {detections:?}"
        );
    }

    #[test]
    fn recall_estimates_are_tracked() {
        let mut d = DdmOci::new(DdmOciConfig::for_classes(2));
        let features = [0.0];
        for i in 0..2000 {
            let correct = i % 10 != 0; // 90% recall for class 0
            let obs = Observation {
                features: &features,
                true_class: 0,
                predicted_class: if correct { 0 } else { 1 },
                correct,
            };
            d.update(&obs);
        }
        assert!((d.class_recall(0) - 0.9).abs() < 0.1, "recall estimate {}", d.class_recall(0));
        assert_eq!(d.class_recall(1), 0.0);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut d = DdmOci::new(DdmOciConfig::for_classes(3));
        run_recall_drop(&mut d, 1, 500, 3000);
        d.reset();
        assert_eq!(d.state(), DetectorState::Stable);
        assert!(d.drifted_classes().is_empty());
        assert_eq!(d.name(), "DDM-OCI");
    }

    #[test]
    #[should_panic]
    fn invalid_decay_rejected() {
        DdmOci::new(DdmOciConfig { decay: 1.0, ..DdmOciConfig::for_classes(3) });
    }
}
