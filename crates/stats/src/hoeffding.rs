//! Hoeffding / McDiarmid concentration bounds.
//!
//! The HDDM and FHDDM reference detectors base their decision rules on
//! Hoeffding's inequality: with probability `1 - δ` the empirical mean of
//! `n` independent observations bounded in `[0, 1]` deviates from its
//! expectation by at most `ε = sqrt(ln(1/δ) / (2n))`.

/// Hoeffding bound `ε = sqrt(ln(1/δ) / (2 n))` for `n` observations in
/// `[0, range]` and confidence `1 − δ`.
///
/// # Panics
/// Panics if `n == 0`, `δ ∉ (0, 1)` or `range <= 0`.
pub fn hoeffding_bound(range: f64, delta: f64, n: u64) -> f64 {
    assert!(n > 0, "hoeffding bound requires n > 0");
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1), got {delta}");
    assert!(range > 0.0, "range must be > 0, got {range}");
    (range * range * (1.0 / delta).ln() / (2.0 * n as f64)).sqrt()
}

/// Hoeffding bound for the *difference of two means* computed over windows
/// of sizes `n0` and `n1` (the form used by drift detectors comparing a
/// historical window with a recent window): uses the harmonic mean of the
/// window sizes.
pub fn hoeffding_bound_two_means(range: f64, delta: f64, n0: u64, n1: u64) -> f64 {
    assert!(n0 > 0 && n1 > 0, "both window sizes must be > 0");
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1), got {delta}");
    assert!(range > 0.0, "range must be > 0, got {range}");
    let m = 1.0 / (1.0 / n0 as f64 + 1.0 / n1 as f64);
    (range * range * (1.0 / delta).ln() / (2.0 * m)).sqrt()
}

/// McDiarmid-style bound used by the HDDM-W (weighted) detector with EWMA
/// weights: `ε = sqrt(Σ c_i² · ln(1/δ) / 2)` where `c_i` are the bounded
/// differences. For an EWMA with factor `λ` over `n` terms the sum of squared
/// weights converges to `λ / (2 − λ)`.
pub fn mcdiarmid_bound(sum_squared_weights: f64, delta: f64) -> f64 {
    assert!(sum_squared_weights > 0.0, "sum of squared weights must be > 0");
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1), got {delta}");
    (sum_squared_weights * (1.0 / delta).ln() / 2.0).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_shrinks_with_more_data() {
        let e1 = hoeffding_bound(1.0, 0.05, 100);
        let e2 = hoeffding_bound(1.0, 0.05, 1000);
        let e3 = hoeffding_bound(1.0, 0.05, 10000);
        assert!(e1 > e2 && e2 > e3);
        // Known value: sqrt(ln(20)/200) ≈ 0.12238
        assert!((e1 - 0.122_38).abs() < 1e-4);
    }

    #[test]
    fn bound_grows_with_confidence() {
        let loose = hoeffding_bound(1.0, 0.1, 500);
        let tight = hoeffding_bound(1.0, 0.001, 500);
        assert!(tight > loose);
    }

    #[test]
    fn bound_scales_with_range() {
        let unit = hoeffding_bound(1.0, 0.05, 200);
        let doubled = hoeffding_bound(2.0, 0.05, 200);
        assert!((doubled - 2.0 * unit).abs() < 1e-12);
    }

    #[test]
    fn two_means_bound_uses_harmonic_mean() {
        // Equal windows of size n behave like a single window of size n/2.
        let single = hoeffding_bound(1.0, 0.05, 50);
        let two = hoeffding_bound_two_means(1.0, 0.05, 100, 100);
        assert!((single - two).abs() < 1e-9);
        // Highly unequal windows are dominated by the small one: the
        // effective (harmonic-mean) sample size is slightly below the small
        // window, so the bound is marginally looser than the small window's
        // own bound but far from the large window's.
        let dominated = hoeffding_bound_two_means(1.0, 0.05, 10, 1_000_000);
        let small_only = hoeffding_bound(1.0, 0.05, 10);
        let large_only = hoeffding_bound(1.0, 0.05, 1_000_000);
        assert!(dominated >= small_only && dominated < 1.01 * small_only);
        assert!(dominated > 10.0 * large_only);
    }

    #[test]
    fn mcdiarmid_matches_hoeffding_for_uniform_weights() {
        // With n uniform weights 1/n, Σ c_i² = 1/n and the bound reduces to Hoeffding's.
        let n = 400_u64;
        let h = hoeffding_bound(1.0, 0.02, n);
        let m = mcdiarmid_bound(1.0 / n as f64, 0.02);
        assert!((h - m).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_observations() {
        hoeffding_bound(1.0, 0.05, 0);
    }

    #[test]
    #[should_panic]
    fn rejects_invalid_delta() {
        hoeffding_bound(1.0, 1.5, 10);
    }
}
