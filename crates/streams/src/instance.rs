//! Instance and schema types.
//!
//! A stream element (paper Sec. II) is a `d`-dimensional feature vector with
//! a class label drawn from a joint distribution that may change over time.

use serde::{Deserialize, Serialize};

/// A single labeled stream instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instance {
    /// Numeric feature vector. Categorical attributes produced by the
    /// generators are encoded as their numeric category index.
    pub features: Vec<f64>,
    /// Class label in `0..n_classes`.
    pub class: usize,
    /// Arrival index within the stream (0-based). Useful for diagnostics
    /// and for evaluating detection delays.
    pub index: u64,
}

impl Instance {
    /// Creates a new instance.
    pub fn new(features: Vec<f64>, class: usize) -> Self {
        Instance { features, class, index: 0 }
    }

    /// Creates a new instance carrying its arrival index.
    pub fn with_index(features: Vec<f64>, class: usize, index: u64) -> Self {
        Instance { features, class, index }
    }

    /// Number of features.
    pub fn num_features(&self) -> usize {
        self.features.len()
    }
}

/// Static description of a stream: dimensionality and class count.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamSchema {
    /// Number of numeric features per instance.
    pub num_features: usize,
    /// Number of distinct classes.
    pub num_classes: usize,
    /// Human-readable stream name (benchmark identifier).
    pub name: String,
}

impl StreamSchema {
    /// Creates a schema.
    ///
    /// # Panics
    /// Panics if `num_features == 0` or `num_classes < 2`.
    pub fn new(name: impl Into<String>, num_features: usize, num_classes: usize) -> Self {
        assert!(num_features > 0, "a stream needs at least one feature");
        assert!(num_classes >= 2, "a classification stream needs at least two classes");
        StreamSchema { num_features, num_classes, name: name.into() }
    }

    /// Returns a copy of this schema under a different name (used by
    /// wrapper streams that change drift/imbalance characteristics but not
    /// the feature space).
    pub fn renamed(&self, name: impl Into<String>) -> Self {
        StreamSchema {
            num_features: self.num_features,
            num_classes: self.num_classes,
            name: name.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_accessors() {
        let inst = Instance::new(vec![1.0, 2.0, 3.0], 2);
        assert_eq!(inst.num_features(), 3);
        assert_eq!(inst.class, 2);
        assert_eq!(inst.index, 0);
        let inst = Instance::with_index(vec![1.0], 0, 42);
        assert_eq!(inst.index, 42);
    }

    #[test]
    fn schema_construction_and_rename() {
        let s = StreamSchema::new("rbf5", 20, 5);
        assert_eq!(s.num_features, 20);
        assert_eq!(s.num_classes, 5);
        assert_eq!(s.name, "rbf5");
        let r = s.renamed("rbf5-imbalanced");
        assert_eq!(r.num_features, 20);
        assert_eq!(r.name, "rbf5-imbalanced");
    }

    #[test]
    #[should_panic]
    fn schema_rejects_single_class() {
        StreamSchema::new("bad", 3, 1);
    }

    #[test]
    #[should_panic]
    fn schema_rejects_zero_features() {
        StreamSchema::new("bad", 0, 2);
    }

    #[test]
    fn instance_serde_round_trip() {
        let inst = Instance::with_index(vec![0.5, -1.0], 1, 7);
        let json = serde_json::to_string(&inst).unwrap();
        let back: Instance = serde_json::from_str(&json).unwrap();
        assert_eq!(inst, back);
    }
}
