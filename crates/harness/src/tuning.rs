//! Self hyper-parameter tuning (Sec. VI-B, "Parameter tuning").
//!
//! The paper tunes every detector per stream with the SSPT approach of
//! Veloso et al. (2018): an online Nelder–Mead search over the parameter
//! space, evaluated on a prefix of the stream. This module implements that
//! procedure for RBM-IM: candidate configurations are scored by the pmAUC a
//! base classifier achieves on a tuning prefix when driven by the candidate,
//! and the simplex search walks toward the best-scoring configuration within
//! the grid bounds of Tab. II.

use crate::detectors::DetectorKind;
use crate::runner::RunConfig;
use rbm_im::network::RbmNetworkConfig;
use rbm_im::RbmImConfig;
use rbm_im_stats::nelder_mead::{NelderMead, NelderMeadConfig};
use rbm_im_streams::registry::{BenchmarkSpec, BuildConfig};
use serde::{Deserialize, Serialize};

/// Bounds of the tunable RBM-IM parameters (Tab. II grid ranges).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TuningBounds {
    /// Mini-batch size range.
    pub mini_batch: (f64, f64),
    /// Hidden-fraction range.
    pub hidden_fraction: (f64, f64),
    /// Learning-rate range.
    pub learning_rate: (f64, f64),
    /// Gibbs-steps range.
    pub gibbs_steps: (f64, f64),
}

impl Default for TuningBounds {
    fn default() -> Self {
        TuningBounds {
            mini_batch: (25.0, 100.0),
            hidden_fraction: (0.25, 1.0),
            learning_rate: (0.01, 0.07),
            gibbs_steps: (1.0, 4.0),
        }
    }
}

/// Result of a tuning session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuningOutcome {
    /// Best parameter vector found `(mini_batch, hidden_fraction,
    /// learning_rate, gibbs_steps)`.
    pub best_point: Vec<f64>,
    /// pmAUC achieved by the best configuration on the tuning prefix.
    pub best_pm_auc: f64,
    /// Number of candidate configurations evaluated.
    pub evaluations: usize,
}

impl TuningOutcome {
    /// Converts the optimized point into an [`RbmImConfig`].
    pub fn to_config(&self) -> RbmImConfig {
        point_to_config(&self.best_point)
    }
}

fn point_to_config(point: &[f64]) -> RbmImConfig {
    RbmImConfig {
        mini_batch_size: point[0].round().clamp(5.0, 500.0) as usize,
        network: RbmNetworkConfig {
            hidden_fraction: point[1].clamp(0.05, 4.0),
            learning_rate: point[2].clamp(1e-4, 1.0),
            gibbs_steps: point[3].round().clamp(1.0, 8.0) as usize,
            ..RbmNetworkConfig::default()
        },
        ..RbmImConfig::default()
    }
}

/// Tunes RBM-IM on a prefix of the given benchmark using Nelder–Mead.
///
/// * `prefix_instances` — how many instances of the stream the tuner may
///   consume per candidate evaluation;
/// * `max_evaluations` — budget of candidate configurations.
///
/// NOTE: the harness binaries use this for the `--tune` flag; the default
/// Table III configuration uses the untuned mid-grid defaults so runs stay
/// reproducible and cheap.
pub fn tune_rbm_im(
    spec: &BenchmarkSpec,
    build: &BuildConfig,
    prefix_instances: u64,
    max_evaluations: usize,
) -> TuningOutcome {
    let bounds = TuningBounds::default();
    let nm = NelderMead::with_bounds(
        NelderMeadConfig { max_evaluations, tolerance: 1e-4, ..Default::default() },
        vec![bounds.mini_batch, bounds.hidden_fraction, bounds.learning_rate, bounds.gibbs_steps],
    );
    let mut evaluations = 0usize;
    let objective = |point: &[f64]| {
        evaluations += 1;
        let config = point_to_config(point);
        let stream = spec.build(build);
        let run_config = RunConfig {
            metric_window: 500,
            max_instances: Some(prefix_instances),
            ..Default::default()
        };
        // Score by pmAUC of the classifier driven by this candidate; the
        // registry builds RBM-IM with default parameters, so run the
        // candidate configuration explicitly here.
        let result = run_with_rbm_config(stream, config, &run_config);
        // Nelder–Mead minimizes.
        -result
    };
    let start = vec![
        (bounds.mini_batch.0 + bounds.mini_batch.1) / 2.0,
        (bounds.hidden_fraction.0 + bounds.hidden_fraction.1) / 2.0,
        (bounds.learning_rate.0 + bounds.learning_rate.1) / 2.0,
        (bounds.gibbs_steps.0 + bounds.gibbs_steps.1) / 2.0,
    ];
    let result = nm.minimize(objective, &start, 10.0);
    TuningOutcome { best_point: result.point, best_pm_auc: -result.value, evaluations }
}

/// Runs the prequential pipeline with an explicit RBM-IM configuration and
/// returns the stream-averaged pmAUC (in percent).
pub fn run_with_rbm_config(
    stream: Box<dyn rbm_im_streams::DataStream + Send>,
    config: RbmImConfig,
    run_config: &RunConfig,
) -> f64 {
    use crate::pipeline::PipelineBuilder;
    use rbm_im::RbmIm;
    use rbm_im_streams::DataStream;

    let schema = stream.schema().clone();
    let result = PipelineBuilder::new()
        .boxed_stream(stream)
        .detector(RbmIm::new(schema.num_features, schema.num_classes, config))
        .config(*run_config)
        .run()
        .expect("tuning pipeline is fully specified");
    result.pm_auc
}

/// Returns which detector kinds expose tunable parameters in this harness
/// (the others use their published defaults / mid-grid values).
pub fn tunable_detectors() -> Vec<DetectorKind> {
    vec![DetectorKind::RbmIm]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbm_im_streams::registry::benchmark_by_name;

    #[test]
    fn point_conversion_respects_bounds() {
        let config = point_to_config(&[1.0, 10.0, -5.0, 100.0]);
        assert_eq!(config.mini_batch_size, 5);
        assert!(config.network.hidden_fraction <= 4.0);
        assert!(config.network.learning_rate >= 1e-4);
        assert_eq!(config.network.gibbs_steps, 8);
    }

    #[test]
    fn tuning_runs_within_budget_and_improves_over_worst_corner() {
        let spec = benchmark_by_name("RBF5").unwrap();
        let build =
            BuildConfig { scale_divisor: 500, seed: 9, n_drifts: 1, dynamic_imbalance: false };
        let outcome = tune_rbm_im(&spec, &build, 1_500, 8);
        assert!(outcome.evaluations <= 8 + 5, "evaluations {}", outcome.evaluations);
        assert!(outcome.best_pm_auc > 0.0 && outcome.best_pm_auc <= 100.0);
        let config = outcome.to_config();
        assert!(config.mini_batch_size >= 5);
    }

    #[test]
    fn only_rbm_im_is_listed_as_tunable() {
        assert_eq!(tunable_detectors(), vec![DetectorKind::RbmIm]);
    }
}
