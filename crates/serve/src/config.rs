//! Serving configuration.

use rbm_im_harness::pipeline::RunConfig;

/// Configuration of a [`ServerHandle`](crate::server::ServerHandle).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Number of detector shards (dedicated worker threads). Stream ids are
    /// hashed onto shards by the [`StreamRouter`](crate::router::StreamRouter);
    /// every stream's whole pipeline state lives on exactly one shard, so
    /// shards share nothing and never lock.
    pub num_shards: usize,
    /// Bound of each shard's ingest channel, in messages (an ingest message
    /// carries one instance or one client-side micro-batch). When a shard
    /// falls behind, `try_ingest` fails fast with
    /// [`IngestError::Full`](crate::server::IngestError::Full) instead of
    /// queueing unboundedly — backpressure is explicit and the caller
    /// chooses between dropping, retrying and blocking.
    pub queue_capacity: usize,
    /// Default per-stream pipeline configuration applied by
    /// [`ServerHandle::attach`](crate::server::ServerHandle::attach)
    /// (`attach_with` overrides it per stream). The default uses
    /// `detector_batch = 50` — RBM-IM's natural mini-batch — so the RBM hot
    /// path always runs the batched CD-k kernels, and emits a metric
    /// snapshot event every 1000 instances per stream.
    pub run: RunConfig,
    /// When `true` (the default), a stream attaching with a detector spec
    /// whose factory accepts a `seed` parameter — and that does not pin one
    /// explicitly — gets `seed = derive_stream_seed(base_seed, stream_id)`
    /// injected. Streams are thereby decorrelated from each other yet fully
    /// reproducible: results depend only on `(base_seed, stream_id, spec,
    /// ingest order)`, never on shard count, shard assignment or ingest
    /// interleaving across streams.
    pub deterministic_seeding: bool,
    /// Base seed of deterministic per-stream seeding (see
    /// [`ServeConfig::deterministic_seeding`]).
    pub base_seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            num_shards: 4,
            queue_capacity: 1024,
            run: RunConfig {
                detector_batch: 50,
                snapshot_every: Some(1_000),
                ..RunConfig::default()
            },
            deterministic_seeding: true,
            base_seed: 42,
        }
    }
}
