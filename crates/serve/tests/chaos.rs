//! Chaos suite of the deterministic fault-injection plane
//! (`ARCHITECTURE.md` §10): seed-driven kill-shard panics, cold
//! restarts, spill I/O faults and hibernate storms, injected from a
//! replayable [`ChaosPlan`] into a >1k-stream fleet.
//!
//! The load-bearing property is **zero-loss recovery**: after every
//! injected failure, every surviving stream's final result is
//! bitwise-identical to a clean sequential replay from its last durable
//! point, and the instance ledger balances exactly — what was accepted
//! is what was processed, with replays filling every hole a fault tore.

use rbm_im_harness::pipeline::{PipelineBuilder, RunConfig, RunResult};
use rbm_im_harness::registry::{DetectorRegistry, DetectorSpec};
use rbm_im_serve::{
    deterministic_spec, ChaosFault, ChaosPlan, ChaosSpillIo, CheckpointPolicy, FaultConfig,
    FaultPlane, FaultRate, FaultSite, IngestError, ResizeConfig, ServeConfig, ServerHandle,
    SnapshotSink, StreamClient, Supervisor, SupervisorConfig, TierPolicy,
};
use rbm_im_streams::generators::RandomRbfGenerator;
use rbm_im_streams::{DataStream, Instance, ReplayStream, StreamExt, StreamSchema};
use std::fs;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A unique scratch directory for spills.
fn scratch(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rbm-chaos-{label}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

struct Feed {
    id: String,
    schema: StreamSchema,
    instances: Vec<Instance>,
    spec: DetectorSpec,
}

/// A soak-scale fleet: mostly cheap ADWIN streams with a trainable RBM
/// arm mixed in, each a short recorded RBF stream.
fn fleet(count: usize, total: usize) -> Vec<Feed> {
    let specs = [
        "adwin(delta=0.01)",
        "adwin(delta=0.002)",
        "adwin(delta=0.05)",
        "rbm(mini_batch=8, warmup=4, persistence=1)",
    ];
    (0..count)
        .map(|i| {
            let mut gen = RandomRbfGenerator::new(6, 3, 2, 0.0, 3_000 + i as u64);
            let schema = gen.schema().clone();
            let instances = gen.take_instances(total);
            Feed {
                id: format!("chaos-{i:04}"),
                schema,
                instances,
                spec: DetectorSpec::parse(specs[i % specs.len()]).unwrap(),
            }
        })
        .collect()
}

fn run_config() -> RunConfig {
    RunConfig { metric_window: 100, detector_batch: 8, ..Default::default() }
}

/// Sequential ground truth over the same instances, using the effective
/// (seed-injected) spec the server builds.
fn sequential_baseline(feed: &Feed, run: RunConfig, base_seed: u64) -> RunResult {
    let spec = deterministic_spec(DetectorRegistry::global(), base_seed, &feed.id, &feed.spec);
    PipelineBuilder::new()
        .stream(ReplayStream::new(feed.schema.clone(), feed.instances.clone()))
        .stream_label(feed.id.clone())
        .detector_spec(spec)
        .config(run)
        .run()
        .unwrap()
}

fn assert_results_match(context: &str, served: &RunResult, sequential: &RunResult) {
    assert_eq!(served.detections, sequential.detections, "{context}: drift offsets");
    assert_eq!(served.instances, sequential.instances, "{context}: instance count");
    assert_eq!(served.pm_auc, sequential.pm_auc, "{context}: pmAUC");
    assert_eq!(served.pm_gmean, sequential.pm_gmean, "{context}: pmGM");
    assert_eq!(served.accuracy, sequential.accuracy, "{context}: accuracy");
    assert_eq!(served.kappa, sequential.kappa, "{context}: kappa");
}

/// Blocking batched ingest with backpressure retry.
fn ingest_all(client: &StreamClient, mut batch: Vec<Instance>) {
    loop {
        match client.try_ingest_batch(batch) {
            Ok(()) => return,
            Err(IngestError::Full(rejected)) => {
                batch = rejected;
                std::thread::yield_now();
            }
            Err(IngestError::Closed(_)) => panic!("shard closed during ingest"),
        }
    }
}

/// Restores one stream from its last durable point and replays its tail
/// up to `accepted` instances: from the sink's freshest loadable
/// checkpoint when one exists, from position 0 (a fresh attach) when the
/// stream never durably spilled **or its spill is unreadable** — an
/// injected corrupt read or short write surfaces as a clean load error
/// and must degrade to a longer replay, never to wrong state.
fn recover_stream(
    server: &ServerHandle,
    sink: &SnapshotSink,
    feed: &Feed,
    run: RunConfig,
    accepted: usize,
) -> (StreamClient, usize) {
    // Unreadable spill: fall back to a full replay.
    let loaded = sink.load_checkpoint(&feed.id).unwrap_or_default();
    match loaded {
        Some(checkpoint) => {
            let position = checkpoint.checkpoint.processed().unwrap() as usize;
            assert!(position <= accepted, "{}: durable point beyond the ledger", feed.id);
            let client = server.restore_stream(&checkpoint).unwrap();
            ingest_all(&client, feed.instances[position..accepted].to_vec());
            (client, accepted - position)
        }
        None => {
            let client =
                server.attach_with(&feed.id, feed.schema.clone(), &feed.spec, run).unwrap();
            ingest_all(&client, feed.instances[..accepted].to_vec());
            (client, accepted)
        }
    }
}

/// Waits for a killed shard worker to finish dying, then revives it.
fn await_revive(server: &ServerHandle, shard: usize) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match server.revive_shard(shard) {
            Ok(()) => return,
            Err(e) => {
                assert!(
                    Instant::now() < deadline,
                    "shard {shard} did not die within the deadline: {e}"
                );
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }
}

/// Whether a generated plan schedules every fault kind at least once.
fn covers_all_kinds(plan: &ChaosPlan) -> bool {
    let mut kinds = [false; 5];
    for event in &plan.events {
        let k = match event.fault {
            ChaosFault::KillShard { .. } => 0,
            ChaosFault::ColdRestart => 1,
            ChaosFault::HibernateStorm { .. } => 2,
            ChaosFault::SpillFaultBurst { .. } => 3,
            ChaosFault::NetFaultBurst { .. } => 4,
        };
        kinds[k] = true;
    }
    kinds.iter().all(|&k| k)
}

/// The tentpole soak: 1024 streams, a seeded [`ChaosPlan`] injecting
/// kill-shard panics, full cold restarts, hibernate storms and spill
/// write/read faults over the whole ingest timeline, plus continuous
/// rate-based hibernate and spill-I/O noise. After every fault the
/// harness recovers from the last durable spill and replays the tail;
/// at the end **every** stream must detach bitwise-identical to a clean
/// sequential run, and the ledger must balance exactly.
#[test]
fn seeded_soak_zero_loss_across_kill_restart_spill_and_storm() {
    const NUM_STREAMS: usize = 1024;
    const TOTAL: usize = 48;
    const CHUNK: usize = 8;
    const BASE_SEED: u64 = 0xc4a0_5eed;

    let feeds = fleet(NUM_STREAMS, TOTAL);
    let run = run_config();
    let dir = scratch("soak");

    // Soak-safe fault posture: ENOSPC and corrupt-on-read are recoverable
    // (failed spill keeps the previous durable point; unreadable spill
    // degrades to a full replay). Short writes are deliberately *excluded*
    // here — a short write adopted as a clean cold handle is real loss by
    // construction; they get their own targeted detection test below.
    let config = FaultConfig {
        hibernate: FaultRate::every(0.01),
        spill_enospc: FaultRate::every(0.05),
        spill_corrupt_read: FaultRate::every(0.10),
        ..FaultConfig::quiet(BASE_SEED)
    };
    let plane = Arc::new(FaultPlane::new(config));
    let sink =
        SnapshotSink::new(&dir).unwrap().with_io(Arc::new(ChaosSpillIo::new(Arc::clone(&plane))));

    // A seeded, replayable schedule covering every fault kind. The first
    // seed at or above BASE_SEED with full coverage keeps the selection
    // itself deterministic.
    let timeline = (NUM_STREAMS * TOTAL) as u64;
    let plan = (BASE_SEED..)
        .map(|seed| ChaosPlan::generate(seed, timeline, 4, 12))
        .find(covers_all_kinds)
        .unwrap();
    assert_eq!(plan, ChaosPlan::from_json(&plan.to_json().unwrap()).unwrap(), "plan round-trips");

    let serve_config =
        ServeConfig { num_shards: 4, queue_capacity: 1024, run, ..Default::default() };
    let registry = Arc::new(DetectorRegistry::with_defaults());
    let mut server = ServerHandle::start_with_faults(
        serve_config,
        Arc::clone(&registry),
        Some(Arc::clone(&plane)),
    );

    let mut clients: Vec<StreamClient> = feeds
        .iter()
        .map(|feed| server.attach(&feed.id, feed.schema.clone(), &feed.spec).unwrap())
        .collect();

    // The ledger: per-stream accepted cursor (instances handed to the
    // server exactly once each) plus global fault accounting.
    let mut accepted = vec![0usize; NUM_STREAMS];
    let mut durable = vec![0usize; NUM_STREAMS]; // last successful spill position
    let mut cursor = 0u64; // total accepted across the fleet
    let mut replayed = 0u64;
    let mut kills = 0u64;
    let mut kills_since_restart = 0usize;
    let mut cold_restarts = 0u64;
    let mut storm_evictions = 0u64;
    let mut failed_spills = 0u64;
    let mut next_event = 0usize;
    let mut storm_cursor = 0usize;
    let mut spill_rotation = 0usize;

    while accepted.iter().any(|&a| a < TOTAL) {
        // Fire every scheduled fault whose timeline point has passed.
        while next_event < plan.events.len() && plan.events[next_event].at_instances <= cursor {
            let fault = plan.events[next_event].fault.clone();
            next_event += 1;
            match fault {
                ChaosFault::KillShard { shard } => {
                    // Drain first so the armed panic provably consumes the
                    // one trigger instance we send — nothing else queued.
                    server.drain();
                    let Some(victim) = (0..feeds.len())
                        .find(|&i| server.shard_of(&feeds[i].id) == shard && accepted[i] < TOTAL)
                    else {
                        continue;
                    };
                    plane.arm(FaultSite::ShardPanic, 1);
                    let instance = feeds[victim].instances[accepted[victim]].clone();
                    // The trigger is accepted into the queue and then lost
                    // in the panic; the replay below restores it.
                    ingest_all(&clients[victim], vec![instance]);
                    accepted[victim] += 1;
                    cursor += 1;
                    await_revive(&server, shard);
                    kills += 1;
                    kills_since_restart += 1;
                    // Every stream of the killed shard lost its in-memory
                    // state: restore from the last durable spill and
                    // replay the tail.
                    for (i, feed) in feeds.iter().enumerate() {
                        if server.shard_of(&feed.id) == shard && accepted[i] > 0 {
                            let (client, replay) =
                                recover_stream(&server, &sink, feed, run, accepted[i]);
                            clients[i] = client;
                            replayed += replay as u64;
                        }
                    }
                }
                ChaosFault::ColdRestart => {
                    // Kill-process-style restart: the handle is consumed,
                    // a fresh server starts, and every stream recovers
                    // from its latest durable point on disk.
                    server.drain();
                    let report = server.shutdown();
                    // Revive replaced each dead worker, but the report
                    // still records every panic this server lived through.
                    assert_eq!(report.panicked_shards, kills_since_restart);
                    kills_since_restart = 0;
                    server = ServerHandle::start_with_faults(
                        serve_config,
                        Arc::clone(&registry),
                        Some(Arc::clone(&plane)),
                    );
                    cold_restarts += 1;
                    for (i, feed) in feeds.iter().enumerate() {
                        if accepted[i] > 0 {
                            let (client, replay) =
                                recover_stream(&server, &sink, feed, run, accepted[i]);
                            clients[i] = client;
                            replayed += replay as u64;
                        } else {
                            clients[i] = server
                                .attach_with(&feed.id, feed.schema.clone(), &feed.spec, run)
                                .unwrap();
                        }
                    }
                }
                ChaosFault::HibernateStorm { streams } => {
                    server.drain();
                    for _ in 0..streams {
                        let id = &feeds[storm_cursor % NUM_STREAMS].id;
                        storm_cursor += 1;
                        server.hibernate_stream(id).unwrap();
                        storm_evictions += 1;
                    }
                }
                ChaosFault::SpillFaultBurst { count } => plane.arm(FaultSite::SpillEnospc, count),
                // No net front-end in this soak; the armed truncations
                // stay pending harmlessly (the wire suite consumes them).
                ChaosFault::NetFaultBurst { count } => plane.arm(FaultSite::NetTruncate, count),
            }
        }

        // One round of staggered ingest plus a rotating durable-spill
        // pass (every stream spills every 6th round, through the
        // fault-injected I/O seam — failures keep the old durable point).
        for (i, feed) in feeds.iter().enumerate() {
            if accepted[i] >= TOTAL {
                continue;
            }
            let upto = (accepted[i] + CHUNK).min(TOTAL);
            ingest_all(&clients[i], feed.instances[accepted[i]..upto].to_vec());
            cursor += (upto - accepted[i]) as u64;
            accepted[i] = upto;
            if i % 6 == spill_rotation % 6 {
                if let Ok(checkpoint) = server.checkpoint_stream(&feed.id) {
                    match sink.spill_checkpoint(&checkpoint) {
                        Ok(_) => {
                            durable[i] = checkpoint.checkpoint.processed().unwrap() as usize;
                        }
                        Err(_) => failed_spills += 1, // injected ENOSPC
                    }
                }
            }
        }
        spill_rotation += 1;
    }

    // Fault coverage: the seeded run must have injected all scheduled
    // kinds (kill-shard, cold restart, hibernate storm + rate-based
    // hibernate noise, spill write and read faults).
    assert!(kills >= 1, "the plan must kill at least one shard");
    assert!(cold_restarts >= 1, "the plan must cold-restart at least once");
    assert!(storm_evictions >= 16, "the plan must storm the hibernate path");
    assert_eq!(plane.injected(FaultSite::ShardPanic), kills, "every armed panic fired");
    assert!(plane.injected(FaultSite::Hibernate) >= 1, "rate-based hibernate noise fired");
    assert!(plane.injected(FaultSite::SpillEnospc) >= 1, "spill write faults fired");
    assert!(plane.injected(FaultSite::SpillCorruptRead) >= 1, "spill read faults fired");
    assert!(failed_spills >= 1, "injected ENOSPC must have failed at least one spill");
    assert_eq!(plane.injected(FaultSite::SpillShortWrite), 0, "short writes stay out of the soak");

    // The zero-loss contract: every stream detaches with its full feed
    // processed, bitwise-identical to a clean sequential run — whatever
    // was killed, restarted, stormed or corrupted along the way.
    server.drain();
    let mut total_processed = 0u64;
    for feed in &feeds {
        let result = server.detach(&feed.id).unwrap();
        total_processed += result.instances;
        let sequential = sequential_baseline(feed, run, serve_config.base_seed);
        assert_results_match(&format!("soak {}", feed.id), &result, &sequential);
    }

    // Exact accounting: accepted instances all reached a pipeline exactly
    // once (replays only ever filled holes faults tore, never doubled).
    let total_accepted: u64 = accepted.iter().map(|&a| a as u64).sum();
    assert_eq!(total_accepted, (NUM_STREAMS * TOTAL) as u64, "the ledger covers every instance");
    assert_eq!(total_processed, total_accepted, "processed == accepted, replays filled the holes");
    assert!(replayed >= 1, "recoveries must have replayed some tail");

    let report = server.shutdown();
    assert_eq!(report.panicked_shards, kills_since_restart, "kills on the final server");
    assert_eq!(report.streams.len(), 0, "everything was detached explicitly");

    eprintln!(
        "soak: {kills} kills, {cold_restarts} cold restarts, {storm_evictions} storm evictions, \
         {failed_spills} failed spills, {replayed} instances replayed, \
         {} total injections",
        plane.total_injected()
    );
    let _ = fs::remove_dir_all(dir);
}

/// Targeted kill-shard: the revive path alone, pinned tightly. A worker
/// panics mid-ingest via an armed burst; [`ServerHandle::revive_shard`]
/// refuses live shards and unknown slots, replaces the dead worker, and
/// the restored streams finish bitwise from their durable spills.
#[test]
fn kill_shard_revive_restores_streams_bitwise() {
    let feeds = fleet(8, 96);
    let run = run_config();
    let dir = scratch("kill");
    let head = 48usize;

    let plane = Arc::new(FaultPlane::new(FaultConfig::quiet(7)));
    let sink = SnapshotSink::new(&dir).unwrap();
    let server = ServerHandle::start_with_faults(
        ServeConfig { num_shards: 2, run, ..Default::default() },
        Arc::new(DetectorRegistry::with_defaults()),
        Some(Arc::clone(&plane)),
    );

    // Reviving a live shard or a bogus slot is a loud error, not a wipe.
    assert!(server.revive_shard(0).is_err(), "reviving a live shard must fail");
    assert!(server.revive_shard(99).is_err(), "reviving an unknown slot must fail");

    let clients: Vec<StreamClient> = feeds
        .iter()
        .map(|feed| server.attach(&feed.id, feed.schema.clone(), &feed.spec).unwrap())
        .collect();
    for (i, feed) in feeds.iter().enumerate() {
        ingest_all(&clients[i], feed.instances[..head].to_vec());
    }
    server.drain();
    for feed in &feeds {
        sink.spill_checkpoint(&server.checkpoint_stream(&feed.id).unwrap()).unwrap();
    }

    // Kill shard 0: arm one certain panic and trigger it with the next
    // instance of a stream routed there.
    let victim = feeds.iter().position(|f| server.shard_of(&f.id) == 0).unwrap();
    plane.arm(FaultSite::ShardPanic, 1);
    ingest_all(&clients[victim], vec![feeds[victim].instances[head].clone()]);
    await_revive(&server, 0);
    assert_eq!(plane.injected(FaultSite::ShardPanic), 1);

    // Streams on the dead shard restore from their spills and replay the
    // tail (the victim's lost trigger instance included); streams on the
    // surviving shard continue untouched.
    for (i, feed) in feeds.iter().enumerate() {
        if server.shard_of(&feed.id) == 0 {
            let checkpoint = sink.load_checkpoint(&feed.id).unwrap().unwrap();
            assert_eq!(checkpoint.checkpoint.processed().unwrap(), head as u64);
            let client = server.restore_stream(&checkpoint).unwrap();
            ingest_all(&client, feed.instances[head..].to_vec());
        } else {
            ingest_all(&clients[i], feed.instances[head..].to_vec());
        }
    }
    server.drain();

    let report = server.shutdown();
    assert_eq!(report.panicked_shards, 1, "the kill is visible in the final report");
    assert_eq!(report.streams.len(), feeds.len(), "no stream lost to the kill");
    for summary in &report.streams {
        let feed = feeds.iter().find(|f| f.id == summary.stream).unwrap();
        let sequential = sequential_baseline(feed, run, ServeConfig::default().base_seed);
        assert_results_match(&format!("kill-revive {}", feed.id), &summary.result, &sequential);
    }
    let _ = fs::remove_dir_all(dir);
}

/// Corrupt-on-read during a cold restart: the poisoned stream's spill
/// fails to load with a clean error, recovery degrades to a full replay
/// from position 0, and the other streams restore from their durable
/// points — all bitwise.
#[test]
fn cold_restart_with_corrupt_spill_falls_back_to_full_replay() {
    let feeds = fleet(3, 96);
    let run = run_config();
    let dir = scratch("corrupt");
    let head = 64usize;

    // Phase 1: a clean server spills every stream at `head`, then dies.
    {
        let server = ServerHandle::start(ServeConfig { num_shards: 2, run, ..Default::default() });
        let sink = SnapshotSink::new(&dir).unwrap();
        for feed in &feeds {
            let client = server.attach(&feed.id, feed.schema.clone(), &feed.spec).unwrap();
            ingest_all(&client, feed.instances[..head].to_vec());
        }
        server.drain();
        for feed in &feeds {
            sink.spill_checkpoint(&server.checkpoint_stream(&feed.id).unwrap()).unwrap();
        }
        let _ = server.shutdown(); // report discarded, crash-style
    }

    // Phase 2: restart reading through the fault-injected I/O seam with
    // one armed corrupt read — deterministically poisoning the first
    // spill the recovery touches.
    let plane = Arc::new(FaultPlane::new(FaultConfig::quiet(11)));
    let sink =
        SnapshotSink::new(&dir).unwrap().with_io(Arc::new(ChaosSpillIo::new(Arc::clone(&plane))));
    plane.arm(FaultSite::SpillCorruptRead, 1);

    let server = ServerHandle::start(ServeConfig { num_shards: 2, run, ..Default::default() });
    let mut full_replays = 0usize;
    for feed in &feeds {
        let (_client, replay) = recover_stream(&server, &sink, feed, run, feed.instances.len());
        if replay == feed.instances.len() {
            full_replays += 1;
        }
    }
    assert_eq!(plane.injected(FaultSite::SpillCorruptRead), 1);
    assert_eq!(full_replays, 1, "exactly the poisoned stream degraded to a full replay");

    server.drain();
    let report = server.shutdown();
    assert_eq!(report.streams.len(), feeds.len());
    for summary in &report.streams {
        let feed = feeds.iter().find(|f| f.id == summary.stream).unwrap();
        let sequential = sequential_baseline(feed, run, ServeConfig::default().base_seed);
        assert_results_match(&format!("corrupt restart {}", feed.id), &summary.result, &sequential);
    }
    let _ = fs::remove_dir_all(dir);
}

/// Short writes — success reported, tail silently missing — are the one
/// spill fault that *cannot* be survived silently: the contract is that
/// the truncation is **detected at load** as a clean error naming the
/// file, and recovery degrades to a full replay. (This is exactly why
/// the soak excludes short writes from its always-on posture.)
#[test]
fn short_write_is_detected_at_load_and_recovered_by_full_replay() {
    let feeds = fleet(1, 64);
    let feed = &feeds[0];
    let run = run_config();
    let dir = scratch("short-write");

    let plane = Arc::new(FaultPlane::new(FaultConfig::quiet(13)));
    let sink =
        SnapshotSink::new(&dir).unwrap().with_io(Arc::new(ChaosSpillIo::new(Arc::clone(&plane))));

    let server = ServerHandle::start(ServeConfig { num_shards: 1, run, ..Default::default() });
    let client = server.attach(&feed.id, feed.schema.clone(), &feed.spec).unwrap();
    ingest_all(&client, feed.instances[..48].to_vec());
    server.drain();

    // The short write *claims success* — the dangerous half of the fault.
    plane.arm(FaultSite::SpillShortWrite, 1);
    let checkpoint = server.checkpoint_stream(&feed.id).unwrap();
    sink.spill_checkpoint(&checkpoint).expect("a short write reports success");
    assert_eq!(plane.injected(FaultSite::SpillShortWrite), 1);

    // Detection: the truncated spill must fail to load with an error
    // naming the file — never decode into garbage state.
    let err = sink.load_checkpoint(&feed.id).expect_err("truncated spill must not load");
    assert!(err.to_string().contains("checkpoint."), "error should name the file: {err}");
    let _ = server.shutdown();

    // Recovery: no durable point survives, so the stream replays from 0
    // on a fresh server — and still finishes bitwise.
    let server = ServerHandle::start(ServeConfig { num_shards: 1, run, ..Default::default() });
    let (_client, replay) = recover_stream(&server, &sink, feed, run, feed.instances.len());
    assert_eq!(replay, feed.instances.len(), "recovery degraded to a full replay");
    server.drain();
    let result = server.detach(&feed.id).unwrap();
    assert_results_match(
        "short-write recovery",
        &result,
        &sequential_baseline(feed, run, ServeConfig::default().base_seed),
    );
    let _ = server.shutdown();
    let _ = fs::remove_dir_all(dir);
}

/// An injected ENOSPC mid-write leaves the atomic-write protocol's `.tmp`
/// debris behind (the rename never runs); reopening the sink sweeps it,
/// and the stream's previous durable spill stays authoritative.
#[test]
fn enospc_fault_leaves_tmp_debris_swept_on_reopen() {
    let feeds = fleet(1, 32);
    let feed = &feeds[0];
    let run = run_config();
    let dir = scratch("enospc");

    let plane = Arc::new(FaultPlane::new(FaultConfig::quiet(17)));
    let sink =
        SnapshotSink::new(&dir).unwrap().with_io(Arc::new(ChaosSpillIo::new(Arc::clone(&plane))));
    let server = ServerHandle::start(ServeConfig { num_shards: 1, run, ..Default::default() });
    let client = server.attach(&feed.id, feed.schema.clone(), &feed.spec).unwrap();

    // First spill lands cleanly at 16 and stays the durable point.
    ingest_all(&client, feed.instances[..16].to_vec());
    server.drain();
    sink.spill_checkpoint(&server.checkpoint_stream(&feed.id).unwrap()).unwrap();

    // Second spill at 32 hits the injected ENOSPC: error surfaced, `.tmp`
    // orphan left, durable point unchanged.
    ingest_all(&client, feed.instances[16..].to_vec());
    server.drain();
    plane.arm(FaultSite::SpillEnospc, 1);
    let err = sink
        .spill_checkpoint(&server.checkpoint_stream(&feed.id).unwrap())
        .expect_err("the armed ENOSPC must fail the spill");
    assert!(err.to_string().contains("chaos: injected ENOSPC"), "{err}");
    let orphans = fs::read_dir(&dir)
        .unwrap()
        .filter(|e| e.as_ref().unwrap().file_name().to_string_lossy().ends_with(".tmp"))
        .count();
    assert_eq!(orphans, 1, "the failed write leaves its tmp file behind");

    // Reopening sweeps the debris; the old durable point still loads.
    let reopened = SnapshotSink::new(&dir).unwrap();
    let orphans = fs::read_dir(&dir)
        .unwrap()
        .filter(|e| e.as_ref().unwrap().file_name().to_string_lossy().ends_with(".tmp"))
        .count();
    assert_eq!(orphans, 0, "the startup sweep removes the orphan");
    let checkpoint = reopened.load_checkpoint(&feed.id).unwrap().unwrap();
    assert_eq!(checkpoint.checkpoint.processed().unwrap(), 16, "durable point unchanged");

    let _ = server.shutdown();
    let _ = fs::remove_dir_all(dir);
}

/// A resize policy that demands a different fleet size on every tick.
struct TogglePolicy {
    big: bool,
}

impl rbm_im_serve::ResizePolicy for TogglePolicy {
    fn desired_shards(
        &mut self,
        _loads: &[rbm_im_serve::ShardLoad],
        current: usize,
    ) -> Option<usize> {
        self.big = !self.big;
        Some(if self.big { current + 1 } else { current.saturating_sub(1).max(1) })
    }
}

/// Supervisor tick ordering under chaos: zero-cooldown resizes race
/// urgent spills race `idle_after: ZERO` demotions for the same streams,
/// while the spill path randomly fails with injected ENOSPC and rate
/// hibernations thrash the shards from inside ingest. Pins: the only
/// supervisor errors are the injected ones, no stream double-detaches or
/// parks twice (every detach succeeds exactly once, bitwise), and the
/// sink directory holds no orphan files after the final sweep.
#[test]
fn supervisor_races_stay_bitwise_under_injected_faults() {
    if std::env::var("RBM_HIBERNATE").is_ok() {
        eprintln!("skipping: RBM_HIBERNATE forced mode pre-empts explicit tier transitions");
        return;
    }
    let feeds = fleet(6, 1_200);
    let run = run_config();
    let dir = scratch("super-race");

    let config = FaultConfig {
        hibernate: FaultRate::every(0.02),
        spill_enospc: FaultRate::every(0.10),
        ..FaultConfig::quiet(23)
    };
    let plane = Arc::new(FaultPlane::new(config));
    let server = Arc::new(ServerHandle::start_with_faults(
        ServeConfig { num_shards: 2, queue_capacity: 64, run, ..Default::default() },
        Arc::new(DetectorRegistry::with_defaults()),
        Some(Arc::clone(&plane)),
    ));
    let sink =
        SnapshotSink::new(&dir).unwrap().with_io(Arc::new(ChaosSpillIo::new(Arc::clone(&plane))));
    let supervisor = Supervisor::start(
        Arc::clone(&server),
        sink,
        SupervisorConfig {
            tick: Duration::from_millis(2),
            checkpoint: Some(CheckpointPolicy {
                every: Duration::from_millis(20),
                jitter: 0.5,
                on_drift: true,
            }),
            resize: Some(ResizeConfig {
                min_shards: 1,
                max_shards: 4,
                cooldown: Duration::ZERO,
                policy: Box::new(TogglePolicy { big: false }),
            }),
            tier: Some(TierPolicy {
                idle_after: Some(Duration::ZERO),
                max_hot_streams: None,
                max_demotions_per_tick: 1024,
            }),
        },
    );

    std::thread::scope(|scope| {
        for feed in &feeds {
            let client = server.attach(&feed.id, feed.schema.clone(), &feed.spec).unwrap();
            scope.spawn(move || {
                for chunk in feed.instances.chunks(37) {
                    ingest_all(&client, chunk.to_vec());
                }
            });
        }
    });
    server.drain();
    std::thread::sleep(Duration::from_millis(300));

    let report = supervisor.stop();
    assert!(report.resizes.len() >= 4, "the toggling policy must keep resizing: {report:?}");
    assert!(report.hibernations >= feeds.len() as u64, "evictions must keep firing");
    // The only acceptable supervisor errors are the injected spill
    // failures — anything else is a real ordering bug.
    for error in &report.errors {
        assert!(error.contains("chaos: injected"), "unexpected supervisor error: {error}");
    }
    assert!(plane.injected(FaultSite::SpillEnospc) >= 1, "ENOSPC noise must have fired");
    assert!(plane.injected(FaultSite::Hibernate) >= 1, "hibernate noise must have fired");

    // Exactly one successful detach per stream, each bitwise.
    for feed in &feeds {
        let result = server.detach(&feed.id).unwrap();
        let sequential = sequential_baseline(feed, run, ServeConfig::default().base_seed);
        assert_results_match(&format!("super race {}", feed.id), &result, &sequential);
        assert!(server.detach(&feed.id).is_err(), "{}: double detach must fail", feed.id);
    }
    let report = Arc::try_unwrap(server).expect("supervisor stopped").shutdown();
    assert_eq!(report.panicked_shards, 0);

    // No orphan spill artifacts: the startup sweep leaves only real
    // checkpoint files (the injected ENOSPC failures' debris included).
    let reopened = SnapshotSink::new(&dir).unwrap();
    for entry in fs::read_dir(&dir).unwrap() {
        let name = entry.unwrap().file_name();
        assert!(!name.to_string_lossy().ends_with(".tmp"), "orphan tmp after sweep: {name:?}");
    }
    // Whatever spills survived the fault noise, they load cleanly.
    reopened.load_checkpoints().unwrap();
    let _ = fs::remove_dir_all(dir);
}
