//! Fast-math tolerance suite: the opt-in polynomial-`exp` activation path
//! (`fast_math = true` in [`RbmNetworkConfig`]) deliberately trades bitwise
//! identity for speed, but its deviation from the exact path is contractual:
//! **≤ 1e-9** on every activation value, and small enough that training
//! trajectories stay within 1e-9 per element over a realistic horizon. The
//! companion harness-level sweep (`crates/harness/tests/fastmath_sweep.rs`)
//! pins the stronger end-to-end property — identical drift offsets on the
//! full 24-benchmark registry — on top of these numeric bounds.

use proptest::prelude::*;
use rbm_im::linalg::{
    fast_exp, sigmoid_in_place, sigmoid_in_place_fast, softmax_cols_in_place,
    softmax_cols_in_place_with, DenseMatrix, KernelPolicy,
};
use rbm_im::network::{RbmNetwork, RbmNetworkConfig};
use rbm_im_streams::{Instance, MiniBatch};

/// The contractual activation tolerance of the fast-math mode.
const FAST_MATH_TOL: f64 = 1e-9;

fn fast_policy() -> KernelPolicy {
    KernelPolicy { fast_math: true, ..KernelPolicy::EXACT_SEQUENTIAL }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `fast_exp` tracks `f64::exp` to ≤ 1e-9 *relative* error across the
    /// whole finite-result range (the polynomial's actual error is ~1e-13;
    /// the bound leaves headroom so the contract survives refactors).
    #[test]
    fn fast_exp_relative_error_is_bounded(x in -700.0f64..700.0) {
        let exact = x.exp();
        let fast = fast_exp(x);
        let rel = (fast - exact).abs() / exact;
        prop_assert!(rel <= FAST_MATH_TOL, "exp({x}): {fast} vs {exact} (rel {rel:e})");
    }

    /// Fast sigmoid stays within 1e-9 of the exact sigmoid elementwise
    /// (sigmoid outputs live in [0, 1], so absolute error is the right
    /// metric).
    #[test]
    fn fast_sigmoid_absolute_error_is_bounded(
        xs in prop::collection::vec(-40.0f64..40.0, 1..200)
    ) {
        let mut exact = xs.clone();
        let mut fast = xs;
        sigmoid_in_place(&mut exact);
        sigmoid_in_place_fast(&mut fast);
        for (i, (e, f)) in exact.iter().zip(fast.iter()).enumerate() {
            prop_assert!(
                (e - f).abs() <= FAST_MATH_TOL,
                "sigmoid[{i}]: {f} vs {e} (diff {:e})",
                (e - f).abs()
            );
        }
    }

    /// Fast column-softmax stays within 1e-9 of the exact path and still
    /// produces columns that sum to 1 (softmax normalizes, so the polynomial
    /// error largely cancels).
    #[test]
    fn fast_softmax_absolute_error_is_bounded(
        shape in (1usize..8, 1usize..30),
        seed in 0u64..10_000
    ) {
        let (classes, batch) = shape;
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 * 30.0 - 15.0
        };
        let mut exact = DenseMatrix::from_fn(classes, batch, |_, _| next());
        let mut fast = exact.clone();
        softmax_cols_in_place(&mut exact);
        softmax_cols_in_place_with(&fast_policy(), &mut fast);
        for (i, (e, f)) in exact.as_slice().iter().zip(fast.as_slice().iter()).enumerate() {
            prop_assert!(
                (e - f).abs() <= FAST_MATH_TOL,
                "softmax[{i}]: {f} vs {e} (diff {:e})",
                (e - f).abs()
            );
        }
        for col in 0..batch {
            let sum: f64 = (0..classes).map(|r| fast.get(r, col)).sum();
            prop_assert!((sum - 1.0).abs() <= 1e-12, "col {col} sums to {sum}");
        }
    }
}

fn synth_instances(n: usize, num_features: usize, num_classes: usize, seed: u64) -> Vec<Instance> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..n)
        .map(|_| {
            let features: Vec<f64> = (0..num_features)
                .map(|_| (next() >> 11) as f64 / (1u64 << 53) as f64 * 10.0 - 5.0)
                .collect();
            let class = (next() % num_classes as u64) as usize;
            Instance::new(features, class)
        })
        .collect()
}

/// Whole-network check: training the same seed with `fast_math = on` keeps
/// every weight, bias, and per-batch training error within 1e-9 of the exact
/// network over a 10-batch horizon. (The per-activation error is ~1e-13;
/// this bounds the accumulated divergence that the drift detector actually
/// sees.)
#[test]
fn fast_math_training_trajectory_stays_within_tolerance() {
    let exact_config = RbmNetworkConfig::default();
    let fast_config = RbmNetworkConfig { fast_math: true, ..Default::default() };
    let mut exact = RbmNetwork::new(10, 4, exact_config);
    let mut fast = RbmNetwork::new(10, 4, fast_config);
    for round in 0..10u64 {
        let batch =
            MiniBatch { start_index: 0, instances: synth_instances(50, 10, 4, 4000 + round) };
        let exact_err = exact.train_batch(&batch);
        let fast_err = fast.train_batch(&batch);
        assert!(
            (exact_err - fast_err).abs() <= FAST_MATH_TOL,
            "round {round}: training error {fast_err} vs {exact_err}"
        );
        for (i, (e, f)) in exact.w().as_slice().iter().zip(fast.w().as_slice().iter()).enumerate() {
            assert!(
                (e - f).abs() <= FAST_MATH_TOL,
                "round {round}: w[{i}] {f} vs {e} (diff {:e})",
                (e - f).abs()
            );
        }
        for (i, (e, f)) in exact.b().iter().zip(fast.b().iter()).enumerate() {
            assert!((e - f).abs() <= FAST_MATH_TOL, "round {round}: b[{i}] {f} vs {e}");
        }
        for (i, (e, f)) in exact.c().iter().zip(fast.c().iter()).enumerate() {
            assert!((e - f).abs() <= FAST_MATH_TOL, "round {round}: c[{i}] {f} vs {e}");
        }
    }
}
