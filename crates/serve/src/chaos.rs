//! Deterministic fault injection for the serving plane (`ARCHITECTURE.md`
//! §10): a seed-driven [`FaultPlane`] threaded through the shard workers,
//! the [`SnapshotSink`](crate::sink::SnapshotSink) I/O seam and the net
//! front-end, plus the replayable [`ChaosPlan`] schedule the chaos soak
//! harness executes.
//!
//! Every injection decision is a **pure function** of the plane's seed, a
//! per-site salt and caller-provided coordinates (shard index + message
//! ordinal, spill operation ordinal, connection reply ordinal). Two runs
//! with the same seed and the same per-site operation sequences inject
//! exactly the same faults — which is what lets the chaos suites assert
//! bitwise recovery instead of "it probably survived". The plane's only
//! mutable state is telemetry (per-site injected counts), budget
//! enforcement, and the *armed burst* counters a [`ChaosPlan`] tops up to
//! force the next N operations at a site to fault with certainty.
//!
//! Injectable fault sites:
//!
//! * **kill-shard** — a worker thread panics mid-ingest
//!   ([`FaultPlane::shard_panic`]); recovery is
//!   [`ServerHandle::revive_shard`](crate::server::ServerHandle::revive_shard)
//!   plus restore-from-spill;
//! * **hibernate storm** — a stream is force-evicted to its checkpoint
//!   right after a step ([`FaultPlane::chaos_hibernate`]), thrashing the
//!   rehydrate path; bitwise-invisible by construction;
//! * **spill I/O faults** — ENOSPC (partial write, then an error),
//!   short-write (silently truncated bytes, detected at load) and
//!   corrupt-on-read (a deterministic bit flip), injected through
//!   [`ChaosSpillIo`] behind the sink's
//!   [`SpillIo`](crate::sink::SpillIo) seam;
//! * **net faults** — delayed replies and a reply truncated mid-frame
//!   with the connection torn down (the "server died between write and
//!   flush" window), consumed by `rbm-im-net`'s reply path.
//!
//! The `RBM_CHAOS=<rate>` environment gate ([`env_plane`]) arms only the
//! **result-invisible** sites (hibernate storms, net delays) at the given
//! rate, so CI can run the ordinary determinism suites under a low-rate
//! fault plane and still demand bitwise-identical results.

use rbm_im_obs::{Counter, MetricsRegistry};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Number of distinct fault sites (length of [`FaultSite::ALL`]).
const SITES: usize = 7;

/// One injectable fault site of the serving plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Shard worker panic mid-ingest (kill-shard).
    ShardPanic,
    /// Forced hibernate right after a processed ingest message.
    Hibernate,
    /// Checkpoint spill write fails after a partial write (ENOSPC-style).
    SpillEnospc,
    /// Checkpoint spill write silently truncates its bytes (short write).
    SpillShortWrite,
    /// Checkpoint read returns bytes with a deterministic bit flip.
    SpillCorruptRead,
    /// Net reply delayed before the write.
    NetDelay,
    /// Net reply truncated mid-frame and the connection torn down.
    NetTruncate,
}

impl FaultSite {
    /// Every fault site, in stable order.
    pub const ALL: [FaultSite; SITES] = [
        FaultSite::ShardPanic,
        FaultSite::Hibernate,
        FaultSite::SpillEnospc,
        FaultSite::SpillShortWrite,
        FaultSite::SpillCorruptRead,
        FaultSite::NetDelay,
        FaultSite::NetTruncate,
    ];

    /// Stable label of the site (metric label, plan text).
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::ShardPanic => "shard_panic",
            FaultSite::Hibernate => "hibernate",
            FaultSite::SpillEnospc => "spill_enospc",
            FaultSite::SpillShortWrite => "spill_short_write",
            FaultSite::SpillCorruptRead => "spill_corrupt_read",
            FaultSite::NetDelay => "net_delay",
            FaultSite::NetTruncate => "net_truncate",
        }
    }

    fn index(self) -> usize {
        match self {
            FaultSite::ShardPanic => 0,
            FaultSite::Hibernate => 1,
            FaultSite::SpillEnospc => 2,
            FaultSite::SpillShortWrite => 3,
            FaultSite::SpillCorruptRead => 4,
            FaultSite::NetDelay => 5,
            FaultSite::NetTruncate => 6,
        }
    }

    /// Per-site hash salt: distinct sites sharing coordinates must draw
    /// independent decisions.
    fn salt(self) -> u64 {
        [
            0x5a1d_0001_c4a0_5001,
            0x5a1d_0002_c4a0_5002,
            0x5a1d_0003_c4a0_5003,
            0x5a1d_0004_c4a0_5004,
            0x5a1d_0005_c4a0_5005,
            0x5a1d_0006_c4a0_5006,
            0x5a1d_0007_c4a0_5007,
        ][self.index()]
    }
}

/// Probability (per eligible operation) and optional lifetime budget of
/// one fault site.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultRate {
    /// Injection probability per eligible operation, in `[0, 1]`.
    pub rate: f64,
    /// Maximum injections over the plane's lifetime (`None` = unlimited).
    /// Armed bursts ([`FaultPlane::arm`]) are not counted against it.
    pub budget: Option<u64>,
}

impl FaultRate {
    /// The site never fires (except via armed bursts).
    pub const OFF: FaultRate = FaultRate { rate: 0.0, budget: None };

    /// Fires with probability `rate`, unbounded.
    pub fn every(rate: f64) -> FaultRate {
        FaultRate { rate, budget: None }
    }

    /// Fires with probability `rate`, at most `budget` times.
    pub fn capped(rate: f64, budget: u64) -> FaultRate {
        FaultRate { rate, budget: Some(budget) }
    }
}

/// Full fault-plane configuration: the decision seed plus one
/// [`FaultRate`] per site. Serializable, so a chaos run's exact fault
/// posture can be recorded next to its [`ChaosPlan`] and replayed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Seed all injection decisions derive from.
    pub seed: u64,
    /// Kill-shard: worker panic per ingest message.
    pub shard_panic: FaultRate,
    /// Forced hibernate per processed ingest message.
    pub hibernate: FaultRate,
    /// ENOSPC-style spill write failure per checkpoint write.
    pub spill_enospc: FaultRate,
    /// Silent short write per checkpoint write.
    pub spill_short_write: FaultRate,
    /// Deterministic bit flip per checkpoint read.
    pub spill_corrupt_read: FaultRate,
    /// Delayed net reply per reply.
    pub net_delay: FaultRate,
    /// Milliseconds a delayed reply sleeps before writing.
    pub net_delay_ms: u64,
    /// Truncate-and-close net reply per reply.
    pub net_truncate: FaultRate,
}

impl FaultConfig {
    /// A configuration with every site off — faults then fire only via
    /// armed bursts ([`FaultPlane::arm`]).
    pub fn quiet(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            shard_panic: FaultRate::OFF,
            hibernate: FaultRate::OFF,
            spill_enospc: FaultRate::OFF,
            spill_short_write: FaultRate::OFF,
            spill_corrupt_read: FaultRate::OFF,
            net_delay: FaultRate::OFF,
            net_delay_ms: 1,
            net_truncate: FaultRate::OFF,
        }
    }

    fn rate_of(&self, site: FaultSite) -> FaultRate {
        match site {
            FaultSite::ShardPanic => self.shard_panic,
            FaultSite::Hibernate => self.hibernate,
            FaultSite::SpillEnospc => self.spill_enospc,
            FaultSite::SpillShortWrite => self.spill_short_write,
            FaultSite::SpillCorruptRead => self.spill_corrupt_read,
            FaultSite::NetDelay => self.net_delay,
            FaultSite::NetTruncate => self.net_truncate,
        }
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::quiet(0xc4a0_5eed)
    }
}

/// Which spill-write fault a checkpoint write should suffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpillWriteFault {
    /// Write a partial prefix, then fail with an I/O error (the classic
    /// disk-full crash window: an orphan `.tmp` is left behind).
    Enospc,
    /// Write truncated bytes and report success — corruption that only
    /// surfaces when the file is read back.
    ShortWrite,
}

/// The deterministic fault-injection plane. Cheap to consult (one hash
/// per decision on the rate path), safe to share across shard workers,
/// the supervisor's sink and net connection threads.
pub struct FaultPlane {
    config: FaultConfig,
    /// Per-site injected counts (telemetry + budget enforcement).
    injected: [AtomicU64; SITES],
    /// Per-site armed-burst balances ([`FaultPlane::arm`]): consumed with
    /// certainty, one per eligible operation, before any rate draw.
    armed: [AtomicU64; SITES],
    /// Per-site operation ordinals for sites without a caller-side
    /// ordinal (spill and read operations).
    ops: [AtomicU64; SITES],
    /// Optional registry counters (`rbm_chaos_faults_injected_total{site}`).
    counters: OnceLock<Vec<Arc<Counter>>>,
}

impl fmt::Debug for FaultPlane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultPlane")
            .field("config", &self.config)
            .field("total_injected", &self.total_injected())
            .finish()
    }
}

impl FaultPlane {
    /// A plane over `config`, with zeroed telemetry and no armed bursts.
    pub fn new(config: FaultConfig) -> FaultPlane {
        FaultPlane {
            config,
            injected: std::array::from_fn(|_| AtomicU64::new(0)),
            armed: std::array::from_fn(|_| AtomicU64::new(0)),
            ops: std::array::from_fn(|_| AtomicU64::new(0)),
            counters: OnceLock::new(),
        }
    }

    /// The plane's configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Binds per-site injection counters
    /// (`rbm_chaos_faults_injected_total{site}`) into `metrics`, so the
    /// obs plane exports how many faults of each kind actually fired.
    /// First binding wins; later calls are no-ops.
    pub fn bind_metrics(&self, metrics: &MetricsRegistry) {
        let _ = self.counters.set(
            FaultSite::ALL
                .iter()
                .map(|site| {
                    metrics.counter("rbm_chaos_faults_injected_total", &[("site", site.name())])
                })
                .collect(),
        );
    }

    /// Arms `count` certain injections at `site`: the next `count`
    /// eligible operations there fault regardless of the configured rate.
    /// [`ChaosPlan`] burst events call this.
    pub fn arm(&self, site: FaultSite, count: u64) {
        self.armed[site.index()].fetch_add(count, Ordering::Relaxed);
    }

    /// Lifetime injections at `site`.
    pub fn injected(&self, site: FaultSite) -> u64 {
        self.injected[site.index()].load(Ordering::Relaxed)
    }

    /// Lifetime injections across every site.
    pub fn total_injected(&self) -> u64 {
        self.injected.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// The single decision function: armed bursts consume first (with
    /// certainty); otherwise the site's rate draws from
    /// `mix(seed ^ salt ^ coords)` under its budget. Pure in `coords`
    /// apart from burst/budget bookkeeping.
    fn decide(&self, site: FaultSite, coords: u64) -> bool {
        let index = site.index();
        // Armed burst: consume one if any balance remains.
        if self.armed[index].load(Ordering::Relaxed) > 0
            && self.armed[index]
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1))
                .is_ok()
        {
            self.note_injected(site);
            return true;
        }
        let FaultRate { rate, budget } = self.config.rate_of(site);
        if rate <= 0.0 {
            return false;
        }
        let draw = uniform(mix(self.config.seed ^ site.salt() ^ coords));
        if draw >= rate {
            return false;
        }
        // Budget: claim a slot atomically so concurrent callers cannot
        // overshoot it.
        if let Some(budget) = budget {
            if self.injected[index]
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                    (v < budget).then_some(v + 1)
                })
                .is_err()
            {
                return false;
            }
            if let Some(counters) = self.counters.get() {
                counters[index].inc();
            }
            return true;
        }
        self.note_injected(site);
        true
    }

    fn note_injected(&self, site: FaultSite) {
        self.injected[site.index()].fetch_add(1, Ordering::Relaxed);
        if let Some(counters) = self.counters.get() {
            counters[site.index()].inc();
        }
    }

    /// Should the worker of `shard` panic while handling its `message`-th
    /// ingest message? Coordinates are per worker incarnation, so a
    /// revived shard draws a fresh, still-deterministic sequence.
    pub fn shard_panic(&self, shard: usize, message: u64) -> bool {
        self.decide(FaultSite::ShardPanic, ((shard as u64) << 48) ^ message)
    }

    /// Should the stream stepped by `shard`'s `message`-th ingest message
    /// be force-hibernated right after the step?
    pub fn chaos_hibernate(&self, shard: usize, message: u64) -> bool {
        self.decide(FaultSite::Hibernate, ((shard as u64) << 48) ^ message)
    }

    /// Which fault (if any) the next checkpoint write to `path` suffers.
    /// Ordered draw: short-write first, then ENOSPC, so both sites stay
    /// independently seeded.
    pub fn spill_write_fault(&self, path: &Path) -> Option<SpillWriteFault> {
        let coords = path_coords(path);
        let short_op = self.ops[FaultSite::SpillShortWrite.index()].fetch_add(1, Ordering::Relaxed);
        if self.decide(FaultSite::SpillShortWrite, coords ^ mix(short_op)) {
            return Some(SpillWriteFault::ShortWrite);
        }
        let enospc_op = self.ops[FaultSite::SpillEnospc.index()].fetch_add(1, Ordering::Relaxed);
        if self.decide(FaultSite::SpillEnospc, coords ^ mix(enospc_op)) {
            return Some(SpillWriteFault::Enospc);
        }
        None
    }

    /// Should the next checkpoint read of `path` return corrupted bytes?
    pub fn corrupt_read(&self, path: &Path) -> bool {
        let op = self.ops[FaultSite::SpillCorruptRead.index()].fetch_add(1, Ordering::Relaxed);
        self.decide(FaultSite::SpillCorruptRead, path_coords(path) ^ mix(op))
    }

    /// How long (if at all) the `reply`-th reply of a net connection
    /// should be delayed before its write.
    pub fn net_delay(&self, reply: u64) -> Option<Duration> {
        self.decide(FaultSite::NetDelay, reply)
            .then(|| Duration::from_millis(self.config.net_delay_ms))
    }

    /// Should the `reply`-th reply of a net connection be truncated
    /// mid-frame and the connection closed?
    pub fn net_truncate(&self, reply: u64) -> bool {
        self.decide(FaultSite::NetTruncate, reply)
    }
}

/// An injecting [`SpillIo`](crate::sink::SpillIo) implementation: routes
/// `SnapshotSink` writes and reads through a [`FaultPlane`]. Plug it in
/// with [`SnapshotSink::with_io`](crate::sink::SnapshotSink::with_io).
#[derive(Debug)]
pub struct ChaosSpillIo {
    plane: Arc<FaultPlane>,
}

impl ChaosSpillIo {
    /// Wraps `plane`.
    pub fn new(plane: Arc<FaultPlane>) -> ChaosSpillIo {
        ChaosSpillIo { plane }
    }
}

impl crate::sink::SpillIo for ChaosSpillIo {
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.plane.spill_write_fault(path) {
            Some(SpillWriteFault::Enospc) => {
                // The disk filled mid-write: a partial prefix lands, then
                // the write errors. The caller never renames, so the
                // orphaned partial file is exactly the `.tmp` debris the
                // sink's startup sweep exists for.
                let prefix = bytes.len() / 2;
                let _ = std::fs::write(path, &bytes[..prefix]);
                Err(io::Error::other(format!("chaos: injected ENOSPC writing {}", path.display())))
            }
            Some(SpillWriteFault::ShortWrite) => {
                // Silent truncation: success is reported but the tail is
                // missing. Loaders must surface this as a clean error
                // naming the file, never as garbage state.
                let keep = (bytes.len() * 2 / 3).max(1).min(bytes.len().saturating_sub(1));
                std::fs::write(path, &bytes[..keep])
            }
            None => std::fs::write(path, bytes),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut bytes = std::fs::read(path)?;
        if self.plane.corrupt_read(path) && !bytes.is_empty() {
            // Flip a byte inside the header region (magic / version /
            // leading JSON structure), modelling a torn disk block that
            // surfaces as a *clean load error*. The checkpoint codecs
            // carry no payload checksum, so a mid-payload flip could
            // decode silently into wrong state — undetectable corruption
            // is unrecoverable by construction and out of scope for the
            // zero-loss contract.
            let at = (mix(path_coords(path)) as usize) % bytes.len().min(8);
            bytes[at] ^= 0xa5;
        }
        Ok(bytes)
    }
}

/// One scheduled chaos action of a [`ChaosPlan`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosEvent {
    /// Fires once the harness's ingest cursor crosses this many total
    /// instances.
    pub at_instances: u64,
    /// What to inject.
    pub fault: ChaosFault,
}

/// The injectable actions a [`ChaosPlan`] schedules. Harness-level
/// actions (kill, restart, storm) are driven by the soak loop; burst
/// actions top up the plane's armed counters so the next spill/net
/// operations fault with certainty.
#[derive(Debug, Clone, PartialEq)]
pub enum ChaosFault {
    /// Panic the worker of this shard (via an armed
    /// [`FaultSite::ShardPanic`] burst), then revive and restore.
    KillShard {
        /// Shard slot to kill.
        shard: usize,
    },
    /// Kill-process-style cold restart: drop the `ServerHandle`, start a
    /// fresh one, restore every stream from its latest durable spill.
    ColdRestart,
    /// Force-hibernate a batch of streams, thrashing rehydrate.
    HibernateStorm {
        /// How many streams to evict.
        streams: usize,
    },
    /// Arm `count` certain spill write faults
    /// ([`FaultSite::SpillEnospc`]).
    SpillFaultBurst {
        /// Operations to fault.
        count: u64,
    },
    /// Arm `count` certain net reply truncations
    /// ([`FaultSite::NetTruncate`]).
    NetFaultBurst {
        /// Replies to fault.
        count: u64,
    },
}

// The vendored serde derive covers structs and unit enums only, so the
// data-carrying fault enum gets a hand-written tagged-object encoding:
// `{"kind": "kill_shard", "shard": 2}`.
impl Serialize for ChaosFault {
    fn serialize_value(&self) -> serde::Value {
        use serde::Value;
        match self {
            ChaosFault::KillShard { shard } => Value::object(vec![
                ("kind", Value::String("kill_shard".to_string())),
                ("shard", shard.serialize_value()),
            ]),
            ChaosFault::ColdRestart => {
                Value::object(vec![("kind", Value::String("cold_restart".to_string()))])
            }
            ChaosFault::HibernateStorm { streams } => Value::object(vec![
                ("kind", Value::String("hibernate_storm".to_string())),
                ("streams", streams.serialize_value()),
            ]),
            ChaosFault::SpillFaultBurst { count } => Value::object(vec![
                ("kind", Value::String("spill_fault_burst".to_string())),
                ("count", count.serialize_value()),
            ]),
            ChaosFault::NetFaultBurst { count } => Value::object(vec![
                ("kind", Value::String("net_fault_burst".to_string())),
                ("count", count.serialize_value()),
            ]),
        }
    }
}

impl Deserialize for ChaosFault {
    fn deserialize_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let kind: String = value.field("kind")?;
        match kind.as_str() {
            "kill_shard" => Ok(ChaosFault::KillShard { shard: value.field("shard")? }),
            "cold_restart" => Ok(ChaosFault::ColdRestart),
            "hibernate_storm" => {
                Ok(ChaosFault::HibernateStorm { streams: value.field("streams")? })
            }
            "spill_fault_burst" => Ok(ChaosFault::SpillFaultBurst { count: value.field("count")? }),
            "net_fault_burst" => Ok(ChaosFault::NetFaultBurst { count: value.field("count")? }),
            other => Err(serde::Error::msg(format!("unknown chaos fault kind `{other}`"))),
        }
    }
}

/// A seeded, serializable, replayable chaos schedule: which fault to
/// inject at which point of the ingest timeline. Generate one with
/// [`ChaosPlan::generate`], persist it with [`ChaosPlan::to_json`], and
/// the same plan JSON replays the same run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosPlan {
    /// The seed the schedule (and conventionally the run's
    /// [`FaultConfig`]) derives from.
    pub seed: u64,
    /// Scheduled events, sorted by [`ChaosEvent::at_instances`].
    pub events: Vec<ChaosEvent>,
}

impl ChaosPlan {
    /// Deterministically generates a schedule of `events` faults spread
    /// over an ingest timeline of `total_instances`, cycling through
    /// every fault kind so each seeded run exercises kill-shard, cold
    /// restart, hibernate storms and I/O bursts.
    pub fn generate(
        seed: u64,
        total_instances: u64,
        num_shards: usize,
        events: usize,
    ) -> ChaosPlan {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            mix(state)
        };
        let slots = events.max(1) as u64;
        let mut scheduled = Vec::with_capacity(events);
        for i in 0..events {
            // Even spacing with seeded jitter inside each slot keeps every
            // event strictly inside the timeline.
            let slot = total_instances / (slots + 1);
            let at_instances = slot * (i as u64 + 1) + next() % slot.max(1);
            let fault = match next() % 5 {
                0 => ChaosFault::KillShard { shard: (next() % num_shards.max(1) as u64) as usize },
                1 => ChaosFault::ColdRestart,
                2 => ChaosFault::HibernateStorm { streams: 16 + (next() % 48) as usize },
                3 => ChaosFault::SpillFaultBurst { count: 1 + next() % 3 },
                _ => ChaosFault::NetFaultBurst { count: 1 + next() % 3 },
            };
            scheduled.push(ChaosEvent { at_instances, fault });
        }
        scheduled.sort_by_key(|e| e.at_instances);
        ChaosPlan { seed, events: scheduled }
    }

    /// Serializes the plan to pretty JSON.
    pub fn to_json(&self) -> Result<String, String> {
        serde_json::to_string_pretty(self).map_err(|e| e.to_string())
    }

    /// Parses a plan back from [`ChaosPlan::to_json`] output.
    pub fn from_json(text: &str) -> Result<ChaosPlan, String> {
        let value = serde_json::parse_value(text).map_err(|e| e.to_string())?;
        Deserialize::deserialize_value(&value).map_err(|e| e.to_string())
    }
}

/// The process-wide environment fault plane behind `RBM_CHAOS=<rate>`:
/// a plane arming only the **result-invisible** sites (hibernate storms
/// and net delays) at the given rate, seeded by `RBM_CHAOS_SEED`
/// (default `0xc4a05eed`). `None` unless the variable holds a positive
/// rate. Read once; fixed for the process lifetime. `ServerHandle::start`
/// adopts this plane automatically when no explicit one is supplied, so
/// CI can thrash every existing suite with faults that must stay
/// invisible in the results.
pub fn env_plane() -> Option<&'static Arc<FaultPlane>> {
    static PLANE: OnceLock<Option<Arc<FaultPlane>>> = OnceLock::new();
    PLANE
        .get_or_init(|| {
            let rate: f64 = std::env::var("RBM_CHAOS").ok()?.trim().parse().ok()?;
            if rate <= 0.0 || !rate.is_finite() {
                return None;
            }
            let seed = std::env::var("RBM_CHAOS_SEED")
                .ok()
                .and_then(|s| s.trim().parse().ok())
                .unwrap_or(0xc4a0_5eed);
            let mut config = FaultConfig::quiet(seed);
            config.hibernate = FaultRate::every(rate);
            config.net_delay = FaultRate::every(rate);
            config.net_delay_ms = 1;
            Some(Arc::new(FaultPlane::new(config)))
        })
        .as_ref()
}

/// splitmix64 finalizer: the avalanche behind every injection decision.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Uniform draw in `[0, 1)` from a hash.
fn uniform(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Stable coordinates of a path (its textual form hashed).
fn path_coords(path: &Path) -> u64 {
    rbm_im_streams::source::derive_stream_seed(0xc4a0_5a17, &path.to_string_lossy())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure_in_seed_and_coordinates() {
        let mut config = FaultConfig::quiet(7);
        config.shard_panic = FaultRate::every(0.25);
        let a = FaultPlane::new(config);
        let b = FaultPlane::new(config);
        let draws_a: Vec<bool> = (0..512).map(|m| a.shard_panic(1, m)).collect();
        let draws_b: Vec<bool> = (0..512).map(|m| b.shard_panic(1, m)).collect();
        assert_eq!(draws_a, draws_b, "same seed, same coordinates, same decisions");
        let hits = draws_a.iter().filter(|&&d| d).count();
        assert!((64..192).contains(&hits), "rate 0.25 over 512 draws hit {hits} times");

        config.seed = 8;
        let c = FaultPlane::new(config);
        let draws_c: Vec<bool> = (0..512).map(|m| c.shard_panic(1, m)).collect();
        assert_ne!(draws_a, draws_c, "a different seed draws a different sequence");
    }

    #[test]
    fn budgets_cap_injections_and_bursts_fire_with_certainty() {
        let mut config = FaultConfig::quiet(3);
        config.hibernate = FaultRate::capped(1.0, 4);
        let plane = FaultPlane::new(config);
        let fired = (0..100).filter(|&m| plane.chaos_hibernate(0, m)).count();
        assert_eq!(fired, 4, "budget caps a certain rate");
        assert_eq!(plane.injected(FaultSite::Hibernate), 4);

        let quiet = FaultPlane::new(FaultConfig::quiet(3));
        assert!(!quiet.net_truncate(0), "quiet planes never fire");
        quiet.arm(FaultSite::NetTruncate, 2);
        assert!(quiet.net_truncate(1) && quiet.net_truncate(2), "armed bursts are certain");
        assert!(!quiet.net_truncate(3), "the burst is consumed");
        assert_eq!(quiet.injected(FaultSite::NetTruncate), 2);
    }

    #[test]
    fn chaos_plans_are_deterministic_and_round_trip_json() {
        let plan = ChaosPlan::generate(42, 100_000, 4, 12);
        assert_eq!(plan, ChaosPlan::generate(42, 100_000, 4, 12));
        assert_ne!(plan, ChaosPlan::generate(43, 100_000, 4, 12));
        assert_eq!(plan.events.len(), 12);
        assert!(plan.events.windows(2).all(|w| w[0].at_instances <= w[1].at_instances));
        assert!(plan.events.iter().all(|e| e.at_instances < 100_000));
        let json = plan.to_json().unwrap();
        assert_eq!(ChaosPlan::from_json(&json).unwrap(), plan);
    }
}
