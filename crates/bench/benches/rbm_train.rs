//! `rbm_train`: microbenchmark of the RBM CD-k hot loops.
//!
//! Compares the flat-matrix batch-level trainer (`RbmNetwork::train_batch`
//! on the `linalg` kernels, zero steady-state allocations) against the
//! retained seed implementation (`reference::ReferenceRbmNetwork`,
//! per-instance CD-k over `Vec<Vec<f64>>`) at the paper's default
//! mini-batch size (50), plus the per-class reconstruction-error pass the
//! detector runs before every training step. The two implementations are
//! bitwise-identical in output (see `crates/rbm/tests/equivalence.rs`), so
//! any gap is pure kernel speed. `BENCH_rbm_train.json` records the
//! measured baseline; the acceptance bar for the flat path is ≥2× the
//! reference's training throughput.
//!
//! On top of the flat-vs-reference comparison this bench sweeps the new
//! execution modes: `train/parallel-t{1,2,4}` (row-parallel kernels with
//! the worker cap at 1/2/4 — bitwise-identical output, so any delta is
//! dispatch overhead vs core gain) and `train/fastmath` (the ≤1e-9
//! polynomial-`exp` activation path). Read the thread sweep against the
//! `rayon_pool_threads` runner-metadata field: on a 1-core runner the pool
//! is oversubscribed and the sweep measures dispatch overhead only.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rbm_im::network::{RbmNetwork, RbmNetworkConfig, Workspace};
use rbm_im::reference::ReferenceRbmNetwork;
use rbm_im::ParallelMode;
use rbm_im_streams::generators::GaussianMixtureGenerator;
use rbm_im_streams::{MiniBatch, StreamExt};

/// The paper's default mini-batch size (Tab. II).
const BATCH: usize = 50;
/// Batches cycled through per measurement so the trainers see fresh data.
const ROTATION: usize = 64;

fn make_batches(num_features: usize, num_classes: usize, seed: u64) -> Vec<MiniBatch> {
    let mut stream = GaussianMixtureGenerator::balanced(num_features, num_classes, 1, seed);
    (0..ROTATION)
        .map(|_| MiniBatch { start_index: 0, instances: stream.take_instances(BATCH) })
        .collect()
}

fn bench_rbm_train(c: &mut Criterion) {
    // Spin the kernel pool up to 4 workers before any measurement so the
    // one-time thread spawn never lands inside a sample, and so the
    // parallel arms genuinely dispatch even on a 1-core runner.
    rayon::ensure_pool(4);
    rbm_im_bench::print_runner_metadata();
    let mut group = c.benchmark_group("rbm_train");
    group.sample_size(10);
    group.throughput(Throughput::Elements(BATCH as u64));
    // Two shapes: the harness default (10 features) and a wider stream where
    // the GEMMs dominate outright.
    for &(num_features, num_classes) in &[(10usize, 4usize), (40, 4)] {
        let shape = format!("{num_features}f{num_classes}c");
        // Baseline arms pin `parallel = Off`: the pool above is
        // oversubscribed to 4 workers for the sweep arms, and `Auto` (the
        // config default) would otherwise route the wide shape through it —
        // poisoning the sequential baseline on a 1-core runner.
        let config = RbmNetworkConfig { parallel: ParallelMode::Off, ..Default::default() };
        let batches = make_batches(num_features, num_classes, 7);

        group.bench_with_input(BenchmarkId::new("train/flat", &shape), &(), |b, _| {
            let mut net = RbmNetwork::new(num_features, num_classes, config);
            let mut i = 0usize;
            b.iter(|| {
                let err = net.train_batch(&batches[i % ROTATION]);
                i += 1;
                err
            })
        });
        group.bench_with_input(BenchmarkId::new("train/reference", &shape), &(), |b, _| {
            let mut net = ReferenceRbmNetwork::new(num_features, num_classes, config);
            let mut i = 0usize;
            b.iter(|| {
                let err = net.train_batch(&batches[i % ROTATION]);
                i += 1;
                err
            })
        });

        // Execution-mode sweep: row-parallel at 1/2/4 worker caps (output
        // bitwise-identical to train/flat) and the fast-math activation
        // path (≤1e-9). Interpret against `rayon_pool_threads` above.
        for threads in [1usize, 2, 4] {
            let parallel_config =
                RbmNetworkConfig { parallel: ParallelMode::On, max_threads: threads, ..config };
            group.bench_with_input(
                BenchmarkId::new(format!("train/parallel-t{threads}"), &shape),
                &(),
                |b, _| {
                    let mut net = RbmNetwork::new(num_features, num_classes, parallel_config);
                    let mut i = 0usize;
                    b.iter(|| {
                        let err = net.train_batch(&batches[i % ROTATION]);
                        i += 1;
                        err
                    })
                },
            );
        }
        let fast_config = RbmNetworkConfig { fast_math: true, ..config };
        group.bench_with_input(BenchmarkId::new("train/fastmath", &shape), &(), |b, _| {
            let mut net = RbmNetwork::new(num_features, num_classes, fast_config);
            let mut i = 0usize;
            b.iter(|| {
                let err = net.train_batch(&batches[i % ROTATION]);
                i += 1;
                err
            })
        });

        // The detector's per-batch detection pass (Eq. 27) ahead of
        // training, through the immutable `_with` scoring surface with a
        // caller-owned workspace (the only scoring surface since the `&mut
        // self` variants were removed).
        group.bench_with_input(BenchmarkId::new("errors/flat", &shape), &(), |b, _| {
            let mut net = RbmNetwork::new(num_features, num_classes, config);
            for batch in batches.iter().take(8) {
                net.train_batch(batch);
            }
            let flat: Vec<(Vec<f64>, Vec<usize>)> = batches
                .iter()
                .map(|batch| {
                    let mut features = Vec::new();
                    let mut classes = Vec::new();
                    for inst in &batch.instances {
                        features.extend_from_slice(&inst.features);
                        classes.push(inst.class);
                    }
                    (features, classes)
                })
                .collect();
            let mut ws = Workspace::default();
            let mut errs = Vec::new();
            let mut i = 0usize;
            b.iter(|| {
                let (features, classes) = &flat[i % ROTATION];
                net.reconstruction_errors_flat_with(&mut ws, features, classes, &mut errs);
                i += 1;
                errs.len()
            })
        });
        group.bench_with_input(BenchmarkId::new("errors/reference", &shape), &(), |b, _| {
            let mut net = ReferenceRbmNetwork::new(num_features, num_classes, config);
            for batch in batches.iter().take(8) {
                net.train_batch(batch);
            }
            let mut i = 0usize;
            b.iter(|| {
                let errs = net.batch_reconstruction_errors(&batches[i % ROTATION]);
                i += 1;
                errs
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rbm_train);
criterion_main!(benches);
