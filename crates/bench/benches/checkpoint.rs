//! `checkpoint`: microbenchmark of per-stream snapshot + restore latency.
//!
//! Elastic resharding checkpoints a stream on its old shard, ships the
//! JSON-serializable state, and restores it on the new shard — so
//! migration cost per stream is `snapshot + serialize` on one side and
//! `parse + rebuild + restore` on the other. This bench measures both
//! halves for a warmed-up pipeline (5 000 instances ingested) with the
//! trainable RBM-IM detector (the heavyweight case: network weights,
//! momentum buffers, per-class trend trackers) and with ADWIN (the
//! lightweight classic-detector case). `BENCH_checkpoint.json` records the
//! measured baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rbm_im_harness::checkpoint::PipelineCheckpoint;
use rbm_im_harness::pipeline::{PipelineEvent, RunConfig};
use rbm_im_harness::registry::{DetectorRegistry, DetectorSpec};
use rbm_im_harness::stepper::PipelineStepper;
use rbm_im_streams::generators::RandomRbfGenerator;
use rbm_im_streams::{DataStream, StreamExt};

const WARM_INSTANCES: usize = 5_000;

/// A stepper fed `WARM_INSTANCES` instances of a drifting RBF stream.
fn warmed_stepper(spec: &DetectorSpec) -> (PipelineStepper, rbm_im_streams::StreamSchema) {
    let mut gen = RandomRbfGenerator::new(10, 4, 2, 0.0, 21);
    let schema = gen.schema().clone();
    let run = RunConfig { metric_window: 1_000, detector_batch: 50, ..Default::default() };
    let mut stepper =
        PipelineStepper::from_spec(DetectorRegistry::global(), spec, &schema, run).unwrap();
    let mut sink = |_: &PipelineEvent<'_>| {};
    for instance in gen.take_instances(WARM_INSTANCES) {
        stepper.step(instance, &mut sink);
    }
    (stepper, schema)
}

fn bench_checkpoint(c: &mut Criterion) {
    let mut group = c.benchmark_group("checkpoint");
    group.sample_size(10);
    let registry = DetectorRegistry::global();
    let specs =
        [("rbm-im", "rbm(mini_batch=50, warmup=4, seed=7)"), ("adwin", "adwin(delta=0.01)")];
    for (label, spec_text) in specs {
        let spec = DetectorSpec::parse(spec_text).unwrap();
        let (stepper, schema) = warmed_stepper(&spec);

        // Snapshot + JSON-serialize one warmed stream (the migration
        // source's cost per stream).
        group.bench_with_input(BenchmarkId::new("snapshot", label), &(), |b, _| {
            b.iter(|| {
                PipelineCheckpoint::capture(&stepper, schema.clone(), spec.clone())
                    .unwrap()
                    .to_json()
                    .unwrap()
                    .len()
            })
        });

        // Parse + rebuild + restore (the migration target's cost).
        let json = PipelineCheckpoint::capture(&stepper, schema.clone(), spec.clone())
            .unwrap()
            .to_json()
            .unwrap();
        println!("checkpoint/{label}: serialized size {} bytes", json.len());
        group.bench_with_input(BenchmarkId::new("restore", label), &(), |b, _| {
            b.iter(|| {
                let checkpoint = PipelineCheckpoint::from_json(&json).unwrap();
                checkpoint.resume(registry).unwrap().instances()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_checkpoint);
criterion_main!(benches);
