//! The blocking wire client: [`NetClient`] mirrors
//! [`ServerHandle`](rbm_im_serve::ServerHandle)'s control surface and
//! [`NetStreamClient`] mirrors [`StreamClient`](rbm_im_serve::StreamClient)'s
//! ingest surface — same method names, same [`IngestError`] backpressure
//! contract — so feeder code written against the in-process API runs
//! unchanged over loopback TCP.

use crate::wire::{self, ErrorCode, Frame, WireError};
use rbm_im_harness::pipeline::{RunConfig, RunResult};
use rbm_im_harness::registry::DetectorSpec;
use rbm_im_obs::MetricsSnapshot;
use rbm_im_serve::{HealthSnapshot, IngestError, ServeEvent, ServeReport, StreamCheckpoint};
use rbm_im_streams::{Instance, StreamSchema};
use std::fmt;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::mpsc::{channel, Receiver};
use std::sync::{Arc, Mutex};

/// Errors of wire client operations.
#[derive(Debug)]
pub enum NetError {
    /// Transport I/O failed.
    Io(io::Error),
    /// A frame could not be decoded.
    Wire(WireError),
    /// The server replied with an error frame.
    Remote {
        /// Machine-readable category.
        code: ErrorCode,
        /// Human-readable detail from the server.
        message: String,
    },
    /// The server replied with a frame the request does not expect.
    Protocol(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "wire client I/O error: {e}"),
            NetError::Wire(e) => write!(f, "wire client decode error: {e}"),
            NetError::Remote { code, message } => write!(f, "server error ({code}): {message}"),
            NetError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Io(e) => NetError::Io(e),
            other => NetError::Wire(other),
        }
    }
}

/// One framed request→reply connection.
struct Conn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Conn {
    fn open(addr: SocketAddr) -> io::Result<Conn> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let read_half = stream.try_clone()?;
        Ok(Conn { reader: BufReader::new(read_half), writer: BufWriter::new(stream) })
    }

    fn request(&mut self, frame: &Frame) -> Result<Frame, NetError> {
        wire::write_frame(&mut self.writer, frame)?;
        self.writer.flush()?;
        Ok(wire::read_frame(&mut self.reader)?)
    }
}

/// Maps a reply frame onto the "expected Ack" shape shared by several
/// requests; error frames become [`NetError::Remote`].
fn expect_ack(reply: Frame) -> Result<(), NetError> {
    match reply {
        Frame::Ack => Ok(()),
        Frame::Error { code, message } => Err(NetError::Remote { code, message }),
        other => Err(NetError::Protocol(format!("expected Ack, got {other:?}"))),
    }
}

/// Blocking TCP client of a [`NetServer`](crate::NetServer).
///
/// One `NetClient` holds one connection; requests on it are serialized
/// (strict request→reply). Parallel feeder threads should each hold their
/// own `NetClient` — connections are independent, and the determinism
/// suite pins that N connections produce bitwise-identical results to one.
pub struct NetClient {
    addr: SocketAddr,
    conn: Arc<Mutex<Conn>>,
}

impl NetClient {
    /// Connects to a wire front-end.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<NetClient> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address resolved"))?;
        let conn = Conn::open(addr)?;
        Ok(NetClient { addr, conn: Arc::new(Mutex::new(conn)) })
    }

    /// The server address this client talks to.
    pub fn server_addr(&self) -> SocketAddr {
        self.addr
    }

    fn request(&self, frame: &Frame) -> Result<Frame, NetError> {
        self.conn.lock().expect("connection lock poisoned").request(frame)
    }

    /// Attaches a stream under the server's default per-stream run config
    /// and returns its ingest client. The spec travels as its full label
    /// string and is parsed against the *server's* registry.
    pub fn attach(
        &self,
        stream_id: &str,
        schema: StreamSchema,
        spec: &DetectorSpec,
    ) -> Result<NetStreamClient, NetError> {
        self.attach_inner(stream_id, schema, spec, None)
    }

    /// [`NetClient::attach`] with a per-stream [`RunConfig`] override.
    pub fn attach_with(
        &self,
        stream_id: &str,
        schema: StreamSchema,
        spec: &DetectorSpec,
        run: RunConfig,
    ) -> Result<NetStreamClient, NetError> {
        self.attach_inner(stream_id, schema, spec, Some(run))
    }

    fn attach_inner(
        &self,
        stream_id: &str,
        schema: StreamSchema,
        spec: &DetectorSpec,
        run: Option<RunConfig>,
    ) -> Result<NetStreamClient, NetError> {
        let frame =
            Frame::Attach { stream: stream_id.to_string(), schema, spec: spec.label(), run };
        expect_ack(self.request(&frame)?)?;
        Ok(self.client(stream_id))
    }

    /// An ingest client for an already-attached stream id (no round trip).
    pub fn client(&self, stream_id: &str) -> NetStreamClient {
        NetStreamClient { id: Arc::from(stream_id), conn: Arc::clone(&self.conn) }
    }

    /// Detaches a stream and returns its final summary.
    pub fn detach(&self, stream_id: &str) -> Result<RunResult, NetError> {
        match self.request(&Frame::Detach { stream: stream_id.to_string() })? {
            Frame::Result(result) => Ok(*result),
            Frame::Error { code, message } => Err(NetError::Remote { code, message }),
            other => Err(NetError::Protocol(format!("expected Result, got {other:?}"))),
        }
    }

    /// Barrier: returns once everything ingested before this call — on
    /// *any* connection — is fully processed.
    pub fn drain(&self) -> Result<(), NetError> {
        expect_ack(self.request(&Frame::Drain)?)
    }

    /// Fetches a point-in-time snapshot of the server's metrics registry
    /// (counters, gauges, latency histograms) over the wire.
    pub fn metrics(&self) -> Result<MetricsSnapshot, NetError> {
        match self.request(&Frame::Metrics)? {
            Frame::MetricsData(snapshot) => Ok(*snapshot),
            Frame::Error { code, message } => Err(NetError::Remote { code, message }),
            other => Err(NetError::Protocol(format!("expected MetricsData, got {other:?}"))),
        }
    }

    /// Fetches the server's liveness/health summary: per-shard queue
    /// depths and stream counts, ingest latency quantiles, and the age of
    /// the last checkpoint spill.
    pub fn health(&self) -> Result<HealthSnapshot, NetError> {
        match self.request(&Frame::Health)? {
            Frame::HealthData(health) => Ok(*health),
            Frame::Error { code, message } => Err(NetError::Remote { code, message }),
            other => Err(NetError::Protocol(format!("expected HealthData, got {other:?}"))),
        }
    }

    /// Captures a non-destructive checkpoint of one attached stream.
    pub fn checkpoint_stream(&self, stream_id: &str) -> Result<StreamCheckpoint, NetError> {
        match self.request(&Frame::Checkpoint { stream: stream_id.to_string() })? {
            Frame::CheckpointData(checkpoint) => Ok(*checkpoint),
            Frame::Error { code, message } => Err(NetError::Remote { code, message }),
            other => Err(NetError::Protocol(format!("expected CheckpointData, got {other:?}"))),
        }
    }

    /// Gracefully shuts the serving plane down and returns the final
    /// report (wire-level drops included in
    /// [`ServeReport::frames_dropped`]).
    pub fn shutdown(self) -> Result<ServeReport, NetError> {
        match self.request(&Frame::Shutdown)? {
            Frame::Report(report) => Ok(*report),
            Frame::Error { code, message } => Err(NetError::Remote { code, message }),
            other => Err(NetError::Protocol(format!("expected Report, got {other:?}"))),
        }
    }

    /// Subscribes to the server's drift-event bus over a dedicated
    /// connection: a pump thread decodes pushed event frames into the
    /// returned channel until the server shuts down (or the connection
    /// drops), after which the receiver sees end-of-stream — the same
    /// termination contract as the in-process
    /// [`ServerHandle::subscribe`](rbm_im_serve::ServerHandle::subscribe).
    pub fn subscribe(&self) -> Result<Receiver<ServeEvent>, NetError> {
        let mut conn = Conn::open(self.addr)?;
        expect_ack(conn.request(&Frame::Subscribe)?)?;
        let (tx, rx) = channel();
        std::thread::spawn(move || {
            // Pump until a non-event frame, a wire error (server closed
            // the stream), or the receiver being dropped.
            while let Ok(Frame::Event(event)) = wire::read_frame(&mut conn.reader) {
                if tx.send(*event).is_err() {
                    break;
                }
            }
        });
        Ok(rx)
    }
}

impl fmt::Debug for NetClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NetClient").field("addr", &self.addr).finish()
    }
}

/// Per-stream ingest handle over the wire — the [`StreamClient`]
/// (rbm_im_serve) surface: blocking `ingest`/`ingest_batch`, fail-fast
/// `try_ingest`/`try_ingest_batch` returning the rejected instances inside
/// [`IngestError`].
///
/// [`StreamClient`]: rbm_im_serve::StreamClient
pub struct NetStreamClient {
    id: Arc<str>,
    conn: Arc<Mutex<Conn>>,
}

impl NetStreamClient {
    /// The stream id.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Sends one ingest frame and maps the reply onto the in-process
    /// ingest contract. The batch rides back out of the frame on failure
    /// so callers keep ownership of rejected instances without a copy.
    fn ingest_frame(&self, blocking: bool, instances: Vec<Instance>) -> Result<(), IngestError> {
        let frame = Frame::Ingest { stream: self.id.to_string(), blocking, instances };
        let reclaim = |frame: Frame| -> Vec<Instance> {
            match frame {
                Frame::Ingest { instances, .. } => instances,
                _ => unreachable!("reclaim is only called on the frame built above"),
            }
        };
        let reply = self.conn.lock().expect("connection lock poisoned").request(&frame);
        match reply {
            Ok(Frame::Ack) => Ok(()),
            Ok(Frame::Busy { .. }) => Err(IngestError::Full(reclaim(frame))),
            // Remote serve errors, protocol surprises and transport
            // failures all mean "this shard is not reachable anymore" to
            // an ingest caller.
            Ok(_) | Err(_) => Err(IngestError::Closed(reclaim(frame))),
        }
    }

    /// Non-blocking single-instance ingest; [`IngestError::Full`] carries
    /// the rejected instance back on backpressure.
    pub fn try_ingest(&self, instance: Instance) -> Result<(), IngestError> {
        self.ingest_frame(false, vec![instance])
    }

    /// Non-blocking micro-batch ingest (all-or-nothing, like the
    /// in-process client).
    pub fn try_ingest_batch(&self, instances: Vec<Instance>) -> Result<(), IngestError> {
        if instances.is_empty() {
            return Ok(());
        }
        self.ingest_frame(false, instances)
    }

    /// Blocking single-instance ingest (waits at the shard's pace).
    pub fn ingest(&self, instance: Instance) -> Result<(), IngestError> {
        self.ingest_frame(true, vec![instance])
    }

    /// Blocking micro-batch ingest.
    pub fn ingest_batch(&self, instances: Vec<Instance>) -> Result<(), IngestError> {
        if instances.is_empty() {
            return Ok(());
        }
        self.ingest_frame(true, instances)
    }
}

impl fmt::Debug for NetStreamClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NetStreamClient").field("id", &self.id).finish()
    }
}
