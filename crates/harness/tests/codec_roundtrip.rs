//! Property tests of the binary checkpoint codec: for arbitrary serde
//! [`Value`] trees — including the shapes real checkpoints produce (packed
//! number arrays, uniform matrices, interned repeated keys, non-finite
//! float *strings*, ±0.0, 2^53 boundary integers) — `decode(encode(v))`
//! must reproduce the tree **exactly**, and a binary-serialized pipeline
//! checkpoint must resume bitwise-identically to the JSON path.

use proptest::prelude::*;
use proptest::TestRng;
use rbm_im_harness::checkpoint::codec::{self, CheckpointCodec};
use rbm_im_harness::checkpoint::PipelineCheckpoint;
use rbm_im_harness::pipeline::{PipelineEvent, RunConfig};
use rbm_im_harness::registry::{DetectorRegistry, DetectorSpec};
use rbm_im_harness::stepper::PipelineStepper;
use rbm_im_streams::generators::RandomRbfGenerator;
use rbm_im_streams::{DataStream, StreamExt};
use serde::Value;

/// A random value tree with checkpoint-like shape diversity. `fuel` bounds
/// the total node count so trees stay small but deep.
fn arb_value(rng: &mut TestRng, fuel: &mut u32, depth: u32) -> Value {
    if *fuel == 0 {
        return Value::Null;
    }
    *fuel -= 1;
    let max_kind = if depth >= 4 { 6 } else { 9 };
    match rng.below(max_kind) {
        0 => Value::Null,
        1 => Value::Bool(rng.below(2) == 0),
        // Integer-valued numbers, hugging the exactness boundaries.
        2 => Value::Number(match rng.below(6) {
            0 => 0.0,
            1 => -0.0,
            2 => 9_007_199_254_740_992.0,
            3 => -9_007_199_254_740_992.0,
            4 => rng.below(1_000_000) as f64,
            _ => -((rng.below(1_000_000)) as f64),
        }),
        // Arbitrary finite floats across many binades.
        3 => {
            let magnitude = (rng.unit_f64() * 600.0) - 300.0;
            let v = (rng.unit_f64() * 2.0 - 1.0) * magnitude.exp2();
            Value::Number(if v.is_finite() { v } else { 0.0 })
        }
        4 => Value::String(format!("s{}", rng.below(10))),
        5 => Value::Number(rng.unit_f64()),
        // Homogeneous number arrays (the packed paths).
        6 => {
            let len = rng.below(40) as usize;
            let ints = rng.below(2) == 0;
            Value::Array(
                (0..len)
                    .map(|_| {
                        if ints {
                            Value::Number(rng.below(5_000) as f64 - 2_500.0)
                        } else {
                            Value::Number(rng.unit_f64() * 3.0)
                        }
                    })
                    .collect(),
            )
        }
        // Uniform matrices (the columnar re-blocking path), sometimes
        // made ragged so the fallback is exercised too.
        7 => {
            let rows = rng.below(12) as usize;
            let width = 1 + rng.below(4) as usize;
            let ragged = rng.below(4) == 0;
            Value::Array(
                (0..rows)
                    .map(|r| {
                        let w = if ragged && r == rows / 2 { width + 1 } else { width };
                        Value::Array((0..w).map(|_| arb_value(rng, fuel, depth + 2)).collect())
                    })
                    .collect(),
            )
        }
        // Objects with repeating keys (the interning path).
        _ => {
            let len = rng.below(6) as usize;
            Value::Object(
                (0..len)
                    .map(|i| {
                        (format!("k{}", (i as u64 + rng.below(3)) % 7), {
                            arb_value(rng, fuel, depth + 1)
                        })
                    })
                    .collect(),
            )
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    /// Binary encode → decode is the identity on arbitrary value trees.
    #[test]
    fn binary_roundtrip_is_identity(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::seed(seed);
        let mut fuel = 300u32;
        let value = arb_value(&mut rng, &mut fuel, 0);
        let bytes = codec::encode_value(&value);
        let back = codec::decode_value(&bytes).expect("well-formed encoding must decode");
        prop_assert_eq!(&back, &value);
        // The sniffing entry point agrees.
        let sniffed = codec::decode_to_value(&bytes).expect("sniffed decode");
        prop_assert_eq!(&sniffed, &value);
    }

    /// Truncating a valid encoding at any prefix fails cleanly — never
    /// panics, never silently yields a value.
    #[test]
    fn truncated_encodings_error_cleanly(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::seed(seed);
        let mut fuel = 80u32;
        let value = arb_value(&mut rng, &mut fuel, 0);
        let bytes = codec::encode_value(&value);
        // A handful of random cuts plus the boundary cuts.
        let mut cuts = vec![0usize, 1, 4, 5, bytes.len().saturating_sub(1)];
        for _ in 0..6 {
            cuts.push(rng.below(bytes.len() as u64) as usize);
        }
        for cut in cuts {
            if cut >= bytes.len() {
                continue;
            }
            prop_assert!(
                codec::decode_value(&bytes[..cut]).is_err(),
                "prefix of {cut}/{} bytes must not decode",
                bytes.len()
            );
        }
    }
}

/// A real warmed pipeline serialized with the binary codec resumes
/// bitwise-identically — same guarantee the JSON path has, same test
/// shape as `checkpoint.rs`'s JSON roundtrip.
#[test]
fn binary_checkpoint_resumes_bitwise_identically() {
    let mut gen = RandomRbfGenerator::new(8, 4, 2, 0.0, 33);
    let schema = gen.schema().clone();
    let mut instances = gen.take_instances(1_800);
    gen.regenerate();
    instances.extend(gen.take_instances(1_400));
    let spec = DetectorSpec::parse("rbm(mini_batch=25, warmup=4, persistence=1)").unwrap();
    let run = RunConfig { metric_window: 400, detector_batch: 37, ..Default::default() };
    let registry = DetectorRegistry::global();
    let mut sink = |_: &PipelineEvent<'_>| {};

    let mut uninterrupted = PipelineStepper::from_spec(registry, &spec, &schema, run).unwrap();
    for inst in &instances {
        uninterrupted.step(inst.clone(), &mut sink);
    }
    let (expected, _) = uninterrupted.finish("codec", &mut sink);

    // Cut misaligned with both batch sizes; serialize with BOTH codecs and
    // check they restore the same state.
    let cut = 1_951;
    let mut head = PipelineStepper::from_spec(registry, &spec, &schema, run).unwrap();
    for inst in &instances[..cut] {
        head.step(inst.clone(), &mut sink);
    }
    let checkpoint = PipelineCheckpoint::capture(&head, schema.clone(), spec.clone()).unwrap();
    let binary = checkpoint.to_bytes(CheckpointCodec::Binary);
    let json = checkpoint.to_bytes(CheckpointCodec::Json);
    assert!(codec::is_binary(&binary));
    assert!(!codec::is_binary(&json));
    assert!(
        binary.len() * 2 < json.len(),
        "binary ({}) must be well under half of minified JSON ({})",
        binary.len(),
        json.len()
    );
    assert_eq!(
        PipelineCheckpoint::from_bytes(&binary).unwrap(),
        PipelineCheckpoint::from_bytes(&json).unwrap(),
        "both codecs carry the identical checkpoint"
    );

    let restored = PipelineCheckpoint::from_bytes(&binary).unwrap();
    assert_eq!(restored.processed().unwrap(), cut as u64);
    let mut resumed = restored.resume(registry).unwrap();
    for inst in &instances[cut..] {
        resumed.step(inst.clone(), &mut sink);
    }
    let (result, _) = resumed.finish("codec", &mut sink);
    assert_eq!(result.detections, expected.detections);
    assert_eq!(result.instances, expected.instances);
    assert_eq!(result.pm_auc, expected.pm_auc);
    assert_eq!(result.pm_gmean, expected.pm_gmean);
    assert_eq!(result.accuracy, expected.accuracy);
    assert_eq!(result.kappa, expected.kappa);
}
