//! Lock-free metric instruments and the registry that names them.
//!
//! Registration (`counter` / `gauge` / `histogram`) is the cold path: it
//! takes a mutex, interns the metric id, and hands back an `Arc` handle.
//! Components capture their handles at construction and record through
//! them directly — the hot path never touches the registry, so `inc` /
//! `set` / `record` are single wait-free atomic ops with zero allocation.

use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize, Value};

use crate::histogram::{Histogram, HistogramSnapshot};

/// Monotonically increasing counter.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds 1. Wait-free, allocation-free.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`. Wait-free, allocation-free.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Instantaneous signed value (queue depths, stream counts).
#[derive(Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Replaces the value. Wait-free, allocation-free.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative). Wait-free, allocation-free.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Fully-qualified metric identity: name plus ordered label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricId {
    /// Metric family name (`rbm_serve_ingest_latency_seconds`, …).
    pub name: String,
    /// Label pairs in registration order (`[("shard", "3")]`).
    pub labels: Vec<(String, String)>,
}

impl MetricId {
    /// Builds an id from borrowed parts.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        MetricId {
            name: name.to_string(),
            labels: labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
        }
    }

    /// Renders the `{k="v",…}` label suffix ("" when unlabeled).
    pub fn label_suffix(&self) -> String {
        if self.labels.is_empty() {
            return String::new();
        }
        let pairs: Vec<String> =
            self.labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))).collect();
        format!("{{{}}}", pairs.join(","))
    }

    fn to_value(&self) -> Value {
        let labels: Vec<Value> = self
            .labels
            .iter()
            .map(|(k, v)| Value::Array(vec![Value::String(k.clone()), Value::String(v.clone())]))
            .collect();
        Value::object(vec![
            ("name", Value::String(self.name.clone())),
            ("labels", Value::Array(labels)),
        ])
    }

    fn from_value(value: &Value) -> Result<Self, serde::Error> {
        let name: String = value.field("name")?;
        let labels: Vec<(String, String)> = value.field("labels")?;
        Ok(MetricId { name, labels })
    }
}

/// Escapes a label value for Prometheus text exposition.
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Instrument stores are hash maps, not vecs: a serving fleet registers
/// one `rbm_serve_stream_step_seconds{stream}` histogram per attached
/// stream, so registration and handle re-lookup must stay O(1) at 100k+
/// streams (a linear scan here made fleet attach quadratic). Snapshots
/// sort by id, so iteration order never leaks out.
struct Inner {
    counters: HashMap<MetricId, Arc<Counter>>,
    gauges: HashMap<MetricId, Arc<Gauge>>,
    histograms: HashMap<MetricId, Arc<Histogram>>,
}

/// Registry of named instruments. Cheap to clone handles out of; intended
/// to be shared as `Arc<MetricsRegistry>` per server (plus one process
/// global for context-free call sites like the CD-k kernels).
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry {
            inner: Mutex::new(Inner {
                counters: HashMap::new(),
                gauges: HashMap::new(),
                histograms: HashMap::new(),
            }),
        }
    }

    /// Returns the counter for `name` + `labels`, registering it on first
    /// use. Cold path (mutex + allocation); hold the handle.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let id = MetricId::new(name, labels);
        let mut inner = self.inner.lock().unwrap();
        Arc::clone(inner.counters.entry(id).or_insert_with(|| Arc::new(Counter::new())))
    }

    /// Returns the gauge for `name` + `labels`, registering on first use.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let id = MetricId::new(name, labels);
        let mut inner = self.inner.lock().unwrap();
        Arc::clone(inner.gauges.entry(id).or_insert_with(|| Arc::new(Gauge::new())))
    }

    /// Returns the histogram for `name` + `labels`, registering on first
    /// use. Duration histograms are named `*_seconds` and record integer
    /// nanoseconds; exposition converts at render time.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let id = MetricId::new(name, labels);
        let mut inner = self.inner.lock().unwrap();
        Arc::clone(inner.histograms.entry(id).or_insert_with(|| Arc::new(Histogram::new())))
    }

    /// Point-in-time copy of every registered instrument, sorted by metric
    /// id so snapshots are deterministic and diffable.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap();
        let mut counters: Vec<(MetricId, u64)> =
            inner.counters.iter().map(|(id, c)| (id.clone(), c.get())).collect();
        let mut gauges: Vec<(MetricId, i64)> =
            inner.gauges.iter().map(|(id, g)| (id.clone(), g.get())).collect();
        let mut histograms: Vec<(MetricId, HistogramSnapshot)> =
            inner.histograms.iter().map(|(id, h)| (id.clone(), h.snapshot())).collect();
        drop(inner);
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        MetricsSnapshot { counters, gauges, histograms }
    }
}

/// Owned snapshot of a [`MetricsRegistry`] — the payload of the `Metrics`
/// wire frame and the input to Prometheus rendering.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Counter values, sorted by id.
    pub counters: Vec<(MetricId, u64)>,
    /// Gauge values, sorted by id.
    pub gauges: Vec<(MetricId, i64)>,
    /// Histogram snapshots, sorted by id.
    pub histograms: Vec<(MetricId, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Merges `other` into `self`: same-id counters/histograms add, gauges
    /// take the later value, unseen ids append (re-sorted at the end).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (id, v) in &other.counters {
            match self.counters.iter_mut().find(|(i, _)| i == id) {
                Some((_, mine)) => *mine += v,
                None => self.counters.push((id.clone(), *v)),
            }
        }
        for (id, v) in &other.gauges {
            match self.gauges.iter_mut().find(|(i, _)| i == id) {
                Some((_, mine)) => *mine = *v,
                None => self.gauges.push((id.clone(), *v)),
            }
        }
        for (id, h) in &other.histograms {
            match self.histograms.iter_mut().find(|(i, _)| i == id) {
                Some((_, mine)) => mine.merge(h),
                None => self.histograms.push((id.clone(), h.clone())),
            }
        }
        self.counters.sort_by(|a, b| a.0.cmp(&b.0));
        self.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        self.histograms.sort_by(|a, b| a.0.cmp(&b.0));
    }

    /// Finds a histogram by family name, merging every label instance —
    /// e.g. the all-shards ingest latency distribution.
    pub fn merged_histogram(&self, name: &str) -> HistogramSnapshot {
        let mut merged = HistogramSnapshot::empty();
        for (id, h) in &self.histograms {
            if id.name == name {
                merged.merge(h);
            }
        }
        merged
    }

    /// Looks up a counter by family name, summing label instances.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters.iter().filter(|(id, _)| id.name == name).map(|(_, v)| v).sum()
    }
}

impl Serialize for MetricsSnapshot {
    fn serialize_value(&self) -> Value {
        let counters: Vec<Value> = self
            .counters
            .iter()
            .map(|(id, v)| {
                Value::object(vec![("id", id.to_value()), ("value", Value::from_u64_hex(*v))])
            })
            .collect();
        let gauges: Vec<Value> = self
            .gauges
            .iter()
            .map(|(id, v)| {
                Value::object(vec![("id", id.to_value()), ("value", Value::Number(*v as f64))])
            })
            .collect();
        let histograms: Vec<Value> = self
            .histograms
            .iter()
            .map(|(id, h)| Value::object(vec![("id", id.to_value()), ("value", h.to_value())]))
            .collect();
        Value::object(vec![
            ("counters", Value::Array(counters)),
            ("gauges", Value::Array(gauges)),
            ("histograms", Value::Array(histograms)),
        ])
    }
}

impl Deserialize for MetricsSnapshot {
    fn deserialize_value(value: &Value) -> Result<Self, serde::Error> {
        fn entries(value: &Value, key: &str) -> Result<Vec<Value>, serde::Error> {
            match value.req(key)? {
                Value::Array(items) => Ok(items.clone()),
                other => {
                    Err(serde::Error::msg(format!("`{key}`: expected array, found {other:?}")))
                }
            }
        }
        let mut counters = Vec::new();
        for entry in entries(value, "counters")? {
            let id = MetricId::from_value(entry.req("id")?)?;
            counters.push((id, entry.req("value")?.as_u64_hex()?));
        }
        let mut gauges = Vec::new();
        for entry in entries(value, "gauges")? {
            let id = MetricId::from_value(entry.req("id")?)?;
            gauges.push((id, entry.field("value")?));
        }
        let mut histograms = Vec::new();
        for entry in entries(value, "histograms")? {
            let id = MetricId::from_value(entry.req("id")?)?;
            histograms.push((id, HistogramSnapshot::from_value(entry.req("value")?)?));
        }
        Ok(MetricsSnapshot { counters, gauges, histograms })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_register_returns_same_instrument() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x_total", &[("shard", "0")]);
        let b = reg.counter("x_total", &[("shard", "0")]);
        let other = reg.counter("x_total", &[("shard", "1")]);
        a.inc();
        b.add(2);
        other.inc();
        assert_eq!(a.get(), 3);
        assert_eq!(other.get(), 1);
        let snap = reg.snapshot();
        assert_eq!(snap.counters.len(), 2);
        assert_eq!(snap.counter_total("x_total"), 4);
    }

    #[test]
    fn snapshot_round_trips_through_value() {
        let reg = MetricsRegistry::new();
        reg.counter("c_total", &[]).add(41);
        reg.gauge("g", &[("k", "v")]).set(-7);
        let h = reg.histogram("h_seconds", &[("shard", "2")]);
        h.record(1_000);
        h.record(2_000_000);
        let snap = reg.snapshot();
        let restored =
            MetricsSnapshot::deserialize_value(&snap.serialize_value()).expect("round trip");
        assert_eq!(snap, restored);
    }

    #[test]
    fn merged_histogram_spans_labels() {
        let reg = MetricsRegistry::new();
        reg.histogram("h_seconds", &[("shard", "0")]).record(10);
        reg.histogram("h_seconds", &[("shard", "1")]).record(20);
        let merged = reg.snapshot().merged_histogram("h_seconds");
        assert_eq!(merged.count(), 2);
        assert_eq!(merged.sum, 30);
    }
}
