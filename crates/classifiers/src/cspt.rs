//! Adaptive Cost-Sensitive Perceptron Tree (CSPT).
//!
//! Re-implementation of the behaviourally relevant design of "Cost-sensitive
//! perceptron decision trees for imbalanced drifting data streams"
//! (Krawczyk & Skryjomski, ECML-PKDD 2017), the base classifier used by the
//! paper for every drift detector:
//!
//! * an incremental (Hoeffding-style) decision tree over numeric features;
//! * leaves maintain per-class Gaussian attribute summaries and split on the
//!   information-gain of candidate thresholds once a grace period has
//!   elapsed and the Hoeffding bound separates the best split from the
//!   runner-up;
//! * each leaf carries a **cost-sensitive perceptron** (see
//!   [`crate::perceptron`]) that produces the actual predictions, with
//!   misclassification costs derived from the inverse class frequencies
//!   observed at that leaf;
//! * the tree is *adaptive through its drift detector*: the harness calls
//!   [`OnlineClassifier::reset`] when the attached detector fires, which
//!   rebuilds the tree from scratch (the paper's subtree-replacement
//!   strategy reduced to its essential effect — discarding the outdated
//!   model when told to).

use crate::naive_bayes::GaussianNaiveBayes;
use crate::perceptron::CostSensitivePerceptron;
use crate::OnlineClassifier;
use rbm_im_streams::Instance;

/// Configuration of the perceptron tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CsptConfig {
    /// Number of instances a leaf accumulates between split attempts.
    pub grace_period: u64,
    /// Maximum tree depth (root = 0). Limits memory on fast streams.
    pub max_depth: usize,
    /// Hoeffding-bound confidence parameter δ.
    pub split_confidence: f64,
    /// Tie threshold: if the gain advantage of the best split is below the
    /// Hoeffding bound but the bound itself is below this value, split
    /// anyway (standard Hoeffding-tree tie breaking).
    pub tie_threshold: f64,
    /// Learning rate of the leaf perceptrons.
    pub learning_rate: f64,
    /// Number of candidate thresholds evaluated per feature.
    pub candidate_thresholds: usize,
}

impl Default for CsptConfig {
    fn default() -> Self {
        CsptConfig {
            grace_period: 200,
            max_depth: 6,
            split_confidence: 1e-6,
            tie_threshold: 0.05,
            learning_rate: 0.05,
            candidate_thresholds: 8,
        }
    }
}

/// Per-class Gaussian summary of one feature at a leaf.
#[derive(Debug, Clone, Default)]
struct AttributeObserver {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl AttributeObserver {
    fn update(&mut self, x: f64) {
        if self.count == 0 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    fn std(&self) -> f64 {
        if self.count < 2 {
            1e-3
        } else {
            (self.m2 / (self.count - 1) as f64).sqrt().max(1e-6)
        }
    }

    /// Probability mass of this class's Gaussian falling below `threshold`
    /// (used to estimate the class distribution in each split branch).
    fn fraction_below(&self, threshold: f64) -> f64 {
        if self.count == 0 {
            return 0.5;
        }
        let z = (threshold - self.mean) / (self.std() * std::f64::consts::SQRT_2);
        0.5 * (1.0 + erf_approx(z))
    }
}

/// Abramowitz–Stegun erf approximation (sufficient for split scoring; the
/// exact special function lives in `rbm-im-stats`, which this crate does not
/// need to depend on for just this heuristic).
fn erf_approx(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// A leaf of the perceptron tree.
#[derive(Debug, Clone)]
struct Leaf {
    perceptron: CostSensitivePerceptron,
    /// Naive Bayes fallback for the cold-start phase of a fresh leaf.
    naive_bayes: GaussianNaiveBayes,
    /// `observers[class][feature]` Gaussian summaries for split scoring.
    observers: Vec<Vec<AttributeObserver>>,
    class_counts: Vec<u64>,
    seen: u64,
    seen_since_split_attempt: u64,
    depth: usize,
}

impl Leaf {
    fn new(num_features: usize, num_classes: usize, depth: usize, config: &CsptConfig) -> Self {
        Leaf {
            perceptron: CostSensitivePerceptron::new(
                num_features,
                num_classes,
                config.learning_rate,
            ),
            naive_bayes: GaussianNaiveBayes::new(num_features, num_classes),
            observers: vec![vec![AttributeObserver::default(); num_features]; num_classes],
            class_counts: vec![0; num_classes],
            seen: 0,
            seen_since_split_attempt: 0,
            depth,
        }
    }

    fn entropy(counts: &[u64]) -> f64 {
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let mut h = 0.0;
        for &c in counts {
            if c > 0 {
                let p = c as f64 / total as f64;
                h -= p * p.log2();
            }
        }
        h
    }

    /// Information gain of splitting at `threshold` on `feature`, estimated
    /// from the per-class Gaussian observers.
    fn split_gain(&self, feature: usize, threshold: f64) -> f64 {
        let num_classes = self.class_counts.len();
        let mut left = vec![0u64; num_classes];
        let mut right = vec![0u64; num_classes];
        for c in 0..num_classes {
            let n = self.class_counts[c];
            if n == 0 {
                continue;
            }
            let frac = self.observers[c][feature].fraction_below(threshold);
            let l = (frac * n as f64).round() as u64;
            left[c] = l.min(n);
            right[c] = n - left[c];
        }
        let n_left: u64 = left.iter().sum();
        let n_right: u64 = right.iter().sum();
        let total = n_left + n_right;
        if total == 0 || n_left == 0 || n_right == 0 {
            return 0.0;
        }
        let parent = Self::entropy(&self.class_counts);
        let child = (n_left as f64 / total as f64) * Self::entropy(&left)
            + (n_right as f64 / total as f64) * Self::entropy(&right);
        parent - child
    }

    /// Best `(feature, threshold, gain)` plus the runner-up gain.
    fn best_split(&self, config: &CsptConfig) -> Option<(usize, f64, f64, f64)> {
        let num_features = self.observers[0].len();
        let mut best: Option<(usize, f64, f64)> = None;
        let mut second_gain = 0.0;
        for feature in 0..num_features {
            // Candidate thresholds span the observed range of the feature.
            let (lo, hi) = self
                .observers
                .iter()
                .filter(|o| o[feature].count > 0)
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), o| {
                    (lo.min(o[feature].min), hi.max(o[feature].max))
                });
            if !lo.is_finite() || !hi.is_finite() || hi - lo < 1e-9 {
                continue;
            }
            for k in 1..=config.candidate_thresholds {
                let threshold =
                    lo + (hi - lo) * k as f64 / (config.candidate_thresholds + 1) as f64;
                let gain = self.split_gain(feature, threshold);
                match best {
                    Some((_, _, g)) if gain <= g => {
                        if gain > second_gain {
                            second_gain = gain;
                        }
                    }
                    _ => {
                        if let Some((_, _, g)) = best {
                            second_gain = g;
                        }
                        best = Some((feature, threshold, gain));
                    }
                }
            }
        }
        best.map(|(f, t, g)| (f, t, g, second_gain))
    }
}

/// A tree node.
#[derive(Debug, Clone)]
enum Node {
    Leaf(Box<Leaf>),
    Split { feature: usize, threshold: f64, left: Box<Node>, right: Box<Node> },
}

// ---- checkpoint encoding -------------------------------------------------
//
// The tree serializes recursively: a leaf is `{"leaf": {...}}` (perceptron
// and naive-Bayes state via their own `OnlineClassifier::snapshot_state`,
// plus the per-class attribute observers), a split is
// `{"feature", "threshold", "left", "right"}`.

fn observer_to_value(o: &AttributeObserver) -> serde::Value {
    use serde::{Serialize, Value};
    Value::object(vec![
        ("count", o.count.serialize_value()),
        ("mean", o.mean.serialize_value()),
        ("m2", o.m2.serialize_value()),
        ("min", o.min.serialize_value()),
        ("max", o.max.serialize_value()),
    ])
}

fn observer_from_value(value: &serde::Value) -> Result<AttributeObserver, serde::Error> {
    Ok(AttributeObserver {
        count: value.field("count")?,
        mean: value.field("mean")?,
        m2: value.field("m2")?,
        min: value.field("min")?,
        max: value.field("max")?,
    })
}

fn leaf_to_value(leaf: &Leaf) -> serde::Value {
    use serde::{Serialize, Value};
    let observers: Vec<Value> = leaf
        .observers
        .iter()
        .map(|per_class| Value::Array(per_class.iter().map(observer_to_value).collect()))
        .collect();
    Value::object(vec![
        (
            "perceptron",
            leaf.perceptron.snapshot_state().expect("perceptron supports checkpointing"),
        ),
        (
            "naive_bayes",
            leaf.naive_bayes.snapshot_state().expect("naive bayes supports checkpointing"),
        ),
        ("observers", Value::Array(observers)),
        ("class_counts", leaf.class_counts.serialize_value()),
        ("seen", leaf.seen.serialize_value()),
        ("seen_since_split_attempt", leaf.seen_since_split_attempt.serialize_value()),
        ("depth", leaf.depth.serialize_value()),
    ])
}

fn leaf_from_value(
    value: &serde::Value,
    num_features: usize,
    num_classes: usize,
    config: &CsptConfig,
) -> Result<Leaf, serde::Error> {
    let depth: usize = value.field("depth")?;
    let mut leaf = Leaf::new(num_features, num_classes, depth, config);
    leaf.perceptron.restore_state(value.req("perceptron")?)?;
    leaf.naive_bayes.restore_state(value.req("naive_bayes")?)?;
    let serde::Value::Array(per_class_values) = value.req("observers")? else {
        return Err(serde::Error::msg("leaf `observers` must be an array"));
    };
    if per_class_values.len() != num_classes {
        return Err(serde::Error::msg("leaf observer class count mismatch"));
    }
    let mut observers = Vec::with_capacity(num_classes);
    for per_class in per_class_values {
        let serde::Value::Array(features) = per_class else {
            return Err(serde::Error::msg("leaf per-class observers must be an array"));
        };
        if features.len() != num_features {
            return Err(serde::Error::msg("leaf observer feature count mismatch"));
        }
        observers.push(
            features.iter().map(observer_from_value).collect::<Result<Vec<_>, serde::Error>>()?,
        );
    }
    leaf.observers = observers;
    leaf.class_counts = value.field("class_counts")?;
    leaf.seen = value.field("seen")?;
    leaf.seen_since_split_attempt = value.field("seen_since_split_attempt")?;
    Ok(leaf)
}

fn node_to_value(node: &Node) -> serde::Value {
    use serde::{Serialize, Value};
    match node {
        Node::Leaf(leaf) => Value::object(vec![("leaf", leaf_to_value(leaf))]),
        Node::Split { feature, threshold, left, right } => Value::object(vec![
            ("feature", feature.serialize_value()),
            ("threshold", threshold.serialize_value()),
            ("left", node_to_value(left)),
            ("right", node_to_value(right)),
        ]),
    }
}

fn node_from_value(
    value: &serde::Value,
    num_features: usize,
    num_classes: usize,
    config: &CsptConfig,
) -> Result<Node, serde::Error> {
    if let Some(leaf) = value.get("leaf") {
        return Ok(Node::Leaf(Box::new(leaf_from_value(leaf, num_features, num_classes, config)?)));
    }
    let feature: usize = value.field("feature")?;
    if feature >= num_features {
        // A corrupt snapshot must fail here, not panic at predict time
        // when `find_leaf` indexes the feature vector.
        return Err(serde::Error::msg(format!(
            "split feature index {feature} out of range for {num_features} features"
        )));
    }
    Ok(Node::Split {
        feature,
        threshold: value.field("threshold")?,
        left: Box::new(node_from_value(value.req("left")?, num_features, num_classes, config)?),
        right: Box::new(node_from_value(value.req("right")?, num_features, num_classes, config)?),
    })
}

/// The Adaptive Cost-Sensitive Perceptron Tree.
#[derive(Debug, Clone)]
pub struct CostSensitivePerceptronTree {
    num_features: usize,
    num_classes: usize,
    config: CsptConfig,
    root: Node,
    instances_seen: u64,
    n_splits: u64,
    n_resets: u64,
}

impl CostSensitivePerceptronTree {
    /// Creates an untrained tree with the default configuration.
    pub fn new(num_features: usize, num_classes: usize) -> Self {
        Self::with_config(num_features, num_classes, CsptConfig::default())
    }

    /// Creates an untrained tree with an explicit configuration.
    pub fn with_config(num_features: usize, num_classes: usize, config: CsptConfig) -> Self {
        assert!(num_features > 0);
        assert!(num_classes >= 2);
        CostSensitivePerceptronTree {
            num_features,
            num_classes,
            config,
            root: Node::Leaf(Box::new(Leaf::new(num_features, num_classes, 0, &config))),
            instances_seen: 0,
            n_splits: 0,
            n_resets: 0,
        }
    }

    /// Number of split nodes created so far.
    pub fn split_count(&self) -> u64 {
        self.n_splits
    }

    /// Number of times the tree has been reset (drift adaptations).
    pub fn reset_count(&self) -> u64 {
        self.n_resets
    }

    /// Total instances learned.
    pub fn instances_seen(&self) -> u64 {
        self.instances_seen
    }

    /// Depth of the current tree.
    pub fn depth(&self) -> usize {
        fn depth_of(node: &Node) -> usize {
            match node {
                Node::Leaf(_) => 0,
                Node::Split { left, right, .. } => 1 + depth_of(left).max(depth_of(right)),
            }
        }
        depth_of(&self.root)
    }

    fn find_leaf<'a>(node: &'a Node, features: &[f64]) -> &'a Leaf {
        match node {
            Node::Leaf(leaf) => leaf,
            Node::Split { feature, threshold, left, right } => {
                if features[*feature] <= *threshold {
                    Self::find_leaf(left, features)
                } else {
                    Self::find_leaf(right, features)
                }
            }
        }
    }

    fn learn_recursive(
        node: &mut Node,
        instance: &Instance,
        num_features: usize,
        num_classes: usize,
        config: &CsptConfig,
        n_splits: &mut u64,
    ) {
        match node {
            Node::Split { feature, threshold, left, right } => {
                let child = if instance.features[*feature] <= *threshold { left } else { right };
                Self::learn_recursive(child, instance, num_features, num_classes, config, n_splits);
            }
            Node::Leaf(leaf) => {
                leaf.perceptron.learn(instance);
                leaf.naive_bayes.learn(instance);
                leaf.class_counts[instance.class] += 1;
                for (f, obs) in
                    instance.features.iter().zip(leaf.observers[instance.class].iter_mut())
                {
                    obs.update(*f);
                }
                leaf.seen += 1;
                leaf.seen_since_split_attempt += 1;

                if leaf.seen_since_split_attempt >= config.grace_period
                    && leaf.depth < config.max_depth
                {
                    leaf.seen_since_split_attempt = 0;
                    // Only consider splitting once at least two classes are
                    // present — otherwise the leaf is already pure.
                    let present = leaf.class_counts.iter().filter(|&&c| c > 0).count();
                    if present < 2 {
                        return;
                    }
                    if let Some((feature, threshold, gain, second)) = leaf.best_split(config) {
                        // Hoeffding bound over the information-gain range
                        // log2(num_classes).
                        let range = (num_classes as f64).log2();
                        let epsilon = (range * range * (1.0 / config.split_confidence).ln()
                            / (2.0 * leaf.seen as f64))
                            .sqrt();
                        let advantage = gain - second;
                        if gain > 1e-3 && (advantage > epsilon || epsilon < config.tie_threshold) {
                            let depth = leaf.depth;
                            let left = Node::Leaf(Box::new(Leaf::new(
                                num_features,
                                num_classes,
                                depth + 1,
                                config,
                            )));
                            let right = Node::Leaf(Box::new(Leaf::new(
                                num_features,
                                num_classes,
                                depth + 1,
                                config,
                            )));
                            *n_splits += 1;
                            *node = Node::Split {
                                feature,
                                threshold,
                                left: Box::new(left),
                                right: Box::new(right),
                            };
                        }
                    }
                }
            }
        }
    }
}

impl OnlineClassifier for CostSensitivePerceptronTree {
    fn predict_scores(&self, features: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        self.predict_scores_into(features, &mut out);
        out
    }

    fn predict_scores_into(&self, features: &[f64], out: &mut Vec<f64>) {
        assert_eq!(features.len(), self.num_features, "feature count mismatch");
        let leaf = Self::find_leaf(&self.root, features);
        // Cold leaves (right after a split or a reset) fall back to their
        // naive Bayes model, which is usable from the first instance.
        if leaf.seen < 30 {
            leaf.naive_bayes.predict_scores_into(features, out)
        } else {
            leaf.perceptron.predict_scores_into(features, out)
        }
    }

    fn learn(&mut self, instance: &Instance) {
        assert_eq!(instance.features.len(), self.num_features, "feature count mismatch");
        assert!(instance.class < self.num_classes, "class out of range");
        self.instances_seen += 1;
        let config = self.config;
        Self::learn_recursive(
            &mut self.root,
            instance,
            self.num_features,
            self.num_classes,
            &config,
            &mut self.n_splits,
        );
    }

    fn num_classes(&self) -> usize {
        self.num_classes
    }

    fn reset(&mut self) {
        self.root =
            Node::Leaf(Box::new(Leaf::new(self.num_features, self.num_classes, 0, &self.config)));
        self.n_resets += 1;
    }

    fn snapshot_state(&self) -> Option<serde::Value> {
        use serde::{Serialize, Value};
        Some(Value::object(vec![
            ("num_features", self.num_features.serialize_value()),
            ("num_classes", self.num_classes.serialize_value()),
            ("root", node_to_value(&self.root)),
            ("instances_seen", self.instances_seen.serialize_value()),
            ("n_splits", self.n_splits.serialize_value()),
            ("n_resets", self.n_resets.serialize_value()),
        ]))
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), serde::Error> {
        let num_features: usize = state.field("num_features")?;
        let num_classes: usize = state.field("num_classes")?;
        if num_features != self.num_features || num_classes != self.num_classes {
            return Err(serde::Error::msg(format!(
                "perceptron tree shape mismatch: snapshot is {num_features}×{num_classes}, model \
                 is {}×{}",
                self.num_features, self.num_classes
            )));
        }
        self.root =
            node_from_value(state.req("root")?, self.num_features, self.num_classes, &self.config)?;
        self.instances_seen = state.field("instances_seen")?;
        self.n_splits = state.field("n_splits")?;
        self.n_resets = state.field("n_resets")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbm_im_streams::generators::{GaussianMixtureGenerator, RandomRbfGenerator};
    use rbm_im_streams::imbalance::{ImbalanceProfile, ImbalancedStream};
    use rbm_im_streams::StreamExt;

    fn prequential_accuracy(classifier: &mut dyn OnlineClassifier, instances: &[Instance]) -> f64 {
        let mut correct = 0usize;
        for inst in instances {
            if classifier.predict(&inst.features) == inst.class {
                correct += 1;
            }
            classifier.learn(inst);
        }
        correct as f64 / instances.len() as f64
    }

    #[test]
    fn learns_mixture_stream_better_than_chance() {
        let mut stream = GaussianMixtureGenerator::balanced(8, 5, 2, 5);
        let data = stream.take_instances(6000);
        let mut tree = CostSensitivePerceptronTree::new(8, 5);
        let acc = prequential_accuracy(&mut tree, &data);
        assert!(acc > 0.5, "prequential accuracy {acc} (chance = 0.2)");
        assert_eq!(tree.instances_seen(), 6000);
    }

    #[test]
    fn splits_happen_on_structured_data() {
        let mut stream = RandomRbfGenerator::new(6, 4, 2, 0.0, 13);
        let data = stream.take_instances(8000);
        let mut tree = CostSensitivePerceptronTree::new(6, 4);
        for inst in &data {
            tree.learn(inst);
        }
        assert!(tree.split_count() > 0, "tree should have grown at least one split");
        assert!(tree.depth() >= 1);
        assert!(tree.depth() <= CsptConfig::default().max_depth);
    }

    #[test]
    fn respects_max_depth() {
        let config = CsptConfig { max_depth: 1, grace_period: 50, ..Default::default() };
        let mut stream = RandomRbfGenerator::new(5, 3, 2, 0.0, 13);
        let data = stream.take_instances(5000);
        let mut tree = CostSensitivePerceptronTree::with_config(5, 3, config);
        for inst in &data {
            tree.learn(inst);
        }
        assert!(tree.depth() <= 1);
    }

    #[test]
    fn handles_imbalanced_stream_without_collapsing_to_majority() {
        let base = GaussianMixtureGenerator::balanced(6, 3, 1, 21);
        let profile = ImbalanceProfile::Static(vec![50.0, 5.0, 1.0]);
        let mut stream = ImbalancedStream::new(base, profile, 3);
        let data = stream.take_instances(8000);
        let mut tree = CostSensitivePerceptronTree::new(6, 3);
        // Prequential pass.
        let mut minority_correct = 0usize;
        let mut minority_total = 0usize;
        for inst in &data {
            let pred = tree.predict(&inst.features);
            if inst.class == 2 {
                minority_total += 1;
                if pred == 2 {
                    minority_correct += 1;
                }
            }
            tree.learn(inst);
        }
        assert!(minority_total > 20, "stream should contain minority instances");
        let recall = minority_correct as f64 / minority_total as f64;
        assert!(recall > 0.2, "minority recall should be well above zero, got {recall}");
    }

    #[test]
    fn reset_discards_learned_structure() {
        let mut stream = GaussianMixtureGenerator::balanced(5, 3, 1, 2);
        let data = stream.take_instances(4000);
        let mut tree = CostSensitivePerceptronTree::new(5, 3);
        for inst in &data {
            tree.learn(inst);
        }
        tree.reset();
        assert_eq!(tree.reset_count(), 1);
        assert_eq!(tree.depth(), 0);
        // After a reset predictions come from an untrained leaf (uniform-ish).
        let scores = tree.predict_scores(&data[0].features);
        let max = scores.iter().cloned().fold(f64::MIN, f64::max);
        let min = scores.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max - min < 0.2, "fresh tree should be close to uniform, got {scores:?}");
    }

    #[test]
    fn adaptation_after_drift_improves_over_frozen_model() {
        // Train on one concept, then switch concepts: a tree that is reset at
        // the drift recovers faster than one that never adapts.
        let mut concept_a = RandomRbfGenerator::new(6, 4, 2, 0.0, 100);
        let mut concept_b = RandomRbfGenerator::new(6, 4, 2, 0.0, 200);
        let before = concept_a.take_instances(4000);
        let after = concept_b.take_instances(4000);

        let mut frozen = CostSensitivePerceptronTree::new(6, 4);
        let mut adaptive = CostSensitivePerceptronTree::new(6, 4);
        for inst in &before {
            frozen.learn(inst);
            adaptive.learn(inst);
        }
        adaptive.reset(); // simulated perfect drift signal
        let acc_frozen = prequential_accuracy(&mut frozen, &after);
        let acc_adaptive = prequential_accuracy(&mut adaptive, &after);
        assert!(
            acc_adaptive > acc_frozen - 0.02,
            "adaptive {acc_adaptive} should not trail frozen {acc_frozen}"
        );
    }

    #[test]
    fn scores_are_probability_vectors() {
        let mut tree = CostSensitivePerceptronTree::new(4, 6);
        tree.learn(&Instance::new(vec![0.1, 0.2, 0.3, 0.4], 2));
        let s = tree.predict_scores(&[0.1, 0.2, 0.3, 0.4]);
        assert_eq!(s.len(), 6);
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn wrong_feature_count_rejected() {
        CostSensitivePerceptronTree::new(3, 2).predict_scores(&[1.0]);
    }
}
