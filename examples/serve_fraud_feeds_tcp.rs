//! The `serve_fraud_feeds` fleet, fed over loopback TCP.
//!
//! Same 64 imbalanced merchant feeds, same tuned RBM-IM detectors, same
//! feeder-pool structure as `examples/serve_fraud_feeds.rs` — but the
//! serving plane sits behind the `rbm-im-net` wire front-end and every
//! feeder thread talks to it over its own TCP connection. The feeding code
//! is unchanged: `NetClient`/`NetStreamClient` mirror the in-process API
//! (blocking `ingest_batch` backpressure, drain barrier, event-bus
//! subscription, shutdown → report), and because the wire adds no
//! nondeterminism the fleet's drift offsets and metrics are bitwise what
//! the in-process example produces.
//!
//! Run with:
//! `cargo run -p rbm-im-net --release --example serve_fraud_feeds_tcp`

use rbm_im_harness::registry::DetectorSpec;
use rbm_im_net::{NetClient, NetServer};
use rbm_im_obs::ObsServer;
use rbm_im_serve::{ServeConfig, ServeEventKind};
use rbm_im_streams::drift::local::{LocalDriftEvent, LocalDriftStream};
use rbm_im_streams::drift::DriftKind;
use rbm_im_streams::generators::RandomRbfGenerator;
use rbm_im_streams::imbalance::{ImbalanceProfile, ImbalancedStream};
use rbm_im_streams::source::{derive_stream_seed, StreamSource};
use rbm_im_streams::{DataStream, StreamExt};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const FEEDS: usize = 64;
const INSTANCES_PER_FEED: usize = 1_500;
const SHARDS: usize = 8;
const FEEDER_THREADS: usize = 8;

/// One merchant feed — identical construction to the in-process example,
/// so the two examples produce identical fleets.
fn feed_source(id: &str) -> StreamSource {
    let seed = derive_stream_seed(2_026, id);
    let drift_at = 600 + (seed % 600);
    StreamSource::new(id.to_string(), move || {
        let base = RandomRbfGenerator::new(10, 4, 3, 0.0, seed);
        let imbalanced =
            ImbalancedStream::new(base, ImbalanceProfile::geometric(4, 20.0), seed ^ 0x5a5a);
        let drift = LocalDriftEvent {
            affected_classes: vec![3],
            position: drift_at,
            width: 0,
            kind: DriftKind::Sudden,
            magnitude: 0.9,
        };
        Box::new(LocalDriftStream::new(imbalanced, vec![drift], seed ^ 0xa5a5))
    })
}

fn main() {
    println!(
        "serving {FEEDS} imbalanced fraud feeds × {INSTANCES_PER_FEED} instances \
         over loopback TCP on {SHARDS} shards ({FEEDER_THREADS} connections)\n"
    );

    let server = NetServer::bind(
        "127.0.0.1:0",
        ServeConfig { num_shards: SHARDS, queue_capacity: 256, ..Default::default() },
    )
    .expect("bind loopback");
    let addr = server.local_addr();
    println!("wire front-end listening on {addr}");

    // Telemetry on (same as RBM_OBS=on) + a Prometheus scrape endpoint over
    // the fleet's registry, live for the whole run.
    rbm_im_obs::force_enabled(true);
    let obs = ObsServer::serve("127.0.0.1:0", vec![server.metrics()]).expect("scrape listener");
    println!("scrape endpoint live at http://{}/metrics\n", obs.local_addr());

    // Control connection: attaches, drain, shutdown.
    let control = NetClient::connect(addr).expect("connect control");

    // Subscriber: drift events stream back over a dedicated connection.
    let events = control.subscribe().expect("subscribe");
    let drift_count = Arc::new(AtomicU64::new(0));
    let subscriber = {
        let drift_count = Arc::clone(&drift_count);
        std::thread::spawn(move || {
            let mut printed = 0;
            for event in events {
                if let ServeEventKind::Drift { position, ref classes } = event.kind {
                    let n = drift_count.fetch_add(1, Ordering::Relaxed) + 1;
                    if printed < 12 {
                        println!(
                            "  drift #{n:<3} {} @ {position:>5} (shard {}, classes {classes:?})",
                            event.stream, event.shard
                        );
                        printed += 1;
                    } else if printed == 12 {
                        println!("  … (further drifts counted silently)");
                        printed += 1;
                    }
                }
            }
            drift_count.load(Ordering::Relaxed)
        })
    };

    let spec = DetectorSpec::parse("rbm(minibatch=25, warmup=4, persistence=1, hidden=8)")
        .expect("valid spec");
    let sources: Vec<StreamSource> =
        (0..FEEDS).map(|i| feed_source(&format!("merchant-{i:02}"))).collect();
    for source in &sources {
        control.attach(source.id(), source.schema().clone(), &spec).expect("attach feed");
    }

    // Feeder pool: one TCP connection per thread; the pump loop is the
    // in-process example's, verbatim — blocking ingest over the wire gives
    // the same natural backpressure.
    let start = std::time::Instant::now();
    std::thread::scope(|scope| {
        for worker in 0..FEEDER_THREADS {
            let sources = &sources;
            scope.spawn(move || {
                let conn = NetClient::connect(addr).expect("connect feeder");
                let mine: Vec<usize> =
                    (0..FEEDS).filter(|i| i % FEEDER_THREADS == worker).collect();
                let clients: Vec<_> = mine.iter().map(|&i| conn.client(sources[i].id())).collect();
                let mut streams: Vec<Box<dyn DataStream + Send>> =
                    mine.iter().map(|&i| sources[i].open()).collect();
                let mut remaining: Vec<usize> = vec![INSTANCES_PER_FEED; mine.len()];
                loop {
                    let mut progressed = false;
                    for slot in 0..mine.len() {
                        if remaining[slot] == 0 {
                            continue;
                        }
                        let chunk = remaining[slot].min(50);
                        let batch = streams[slot].take_instances(chunk);
                        remaining[slot] -= batch.len();
                        clients[slot].ingest_batch(batch).expect("shard alive");
                        progressed = true;
                    }
                    if !progressed {
                        break;
                    }
                }
            });
        }
    });
    control.drain().expect("drain barrier");
    let serve_seconds = start.elapsed().as_secs_f64();

    // Mid-run telemetry fetch over the wire: the same snapshot a scrape
    // sees, as a structured value.
    let quantile_ms = |family: &str, q: f64| -> String {
        let hist = control.metrics().expect("metrics over the wire").merged_histogram(family);
        if hist.count() == 0 {
            "-".to_string()
        } else {
            format!("{:.3}ms", hist.quantile(q) as f64 / 1e6)
        }
    };
    println!(
        "\ntelemetry: ingest p50 {} / p99 {}, wire ingest-request p99 {}",
        quantile_ms("rbm_serve_ingest_latency_seconds", 0.5),
        quantile_ms("rbm_serve_ingest_latency_seconds", 0.99),
        quantile_ms("rbm_net_request_latency_seconds", 0.99),
    );

    let report = control.shutdown().expect("shutdown");
    let total_drifts = subscriber.join().expect("subscriber thread");
    server.shutdown(); // joins the accept loop; the report was taken above
    obs.shutdown();

    let total = report.total_instances();
    println!("\nprocessed {total} instances in {serve_seconds:.2}s over TCP");
    println!(
        "  ({:.0} instances/s end-to-end, {} drift events, {} frames dropped)",
        total as f64 / serve_seconds,
        total_drifts,
        report.frames_dropped,
    );

    let mut by_drifts = report.streams.clone();
    by_drifts.sort_by_key(|s| std::cmp::Reverse(s.result.detections.len()));
    println!("\nnoisiest feeds:");
    println!("  {:<14} {:>6} {:>8} {:>8} {:>7}", "feed", "drifts", "pmAUC", "pmGM", "shard");
    for summary in by_drifts.iter().take(5) {
        println!(
            "  {:<14} {:>6} {:>8.2} {:>8.2} {:>7}",
            summary.stream,
            summary.result.detections.len(),
            summary.result.pm_auc,
            summary.result.pm_gmean,
            summary.shard,
        );
    }
    let detected = report.streams.iter().filter(|s| !s.result.detections.is_empty()).count();
    println!("\n{detected}/{FEEDS} feeds raised at least one drift signal");
}
