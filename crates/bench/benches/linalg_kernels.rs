//! `linalg_kernels`: kernel-level microbenchmark of the CD-k hot loops in
//! `rbm_im::linalg`, isolating each kernel from the training loop so the
//! parallel-dispatch and fast-math deltas are directly attributable.
//!
//! Two shapes bracket the serving reality: `narrow` is the harness default
//! (10 visible features + 4 classes, hidden ≈ 7, batch 50) where the
//! size-based `Auto` fallback should keep everything sequential, and `wide`
//! (80 visible + 4 classes, hidden 40, batch 100) where row-parallelism has
//! real work to split. Every `gemm`/`cdk` kernel runs sequential vs
//! parallel (worker caps 1/2/4), and the activation kernels run exact vs
//! fast-math. Outputs are bitwise-identical across the parallel arms, so
//! deltas are pure dispatch cost vs core gain — read them against the
//! `rayon_pool_threads` runner-metadata field (on a 1-core runner the
//! "parallel speedup" is a dispatch-overhead measurement, nothing more).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rbm_im::linalg::{
    cdk_bias_gradient_with, cdk_weight_gradient_with, gemm_acc_with, sigmoid_matrix_with,
    softmax_cols_in_place_with, DenseMatrix, KernelPolicy, ParallelMode,
};

/// Deterministic pseudo-random matrix fill (xorshift; no rand dependency).
fn filled(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    DenseMatrix::from_fn(rows, cols, |_, _| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
    })
}

fn policy(threads: usize) -> KernelPolicy {
    KernelPolicy {
        parallel: ParallelMode::On,
        max_threads: threads,
        fast_math: false,
        timing: false,
    }
}

struct Shape {
    name: &'static str,
    visible: usize,
    hidden: usize,
    batch: usize,
}

const SHAPES: &[Shape] = &[
    Shape { name: "narrow", visible: 10, hidden: 7, batch: 50 },
    Shape { name: "wide", visible: 80, hidden: 40, batch: 100 },
];

fn bench_linalg_kernels(c: &mut Criterion) {
    rayon::ensure_pool(4);
    rbm_im_bench::print_runner_metadata();
    let mut group = c.benchmark_group("linalg_kernels");
    group.sample_size(20);

    for shape in SHAPES {
        let Shape { name, visible, hidden, batch } = *shape;

        // gemm_acc: hidden-activation product h += W^T-layout GEMM —
        // (hidden × visible) · (visible × batch).
        let a = filled(hidden, visible, 1);
        let b_mat = filled(visible, batch, 2);
        for threads in [0usize, 1, 2, 4] {
            let label = if threads == 0 { "seq".to_string() } else { format!("par-t{threads}") };
            let pol = if threads == 0 { KernelPolicy::EXACT_SEQUENTIAL } else { policy(threads) };
            group.bench_with_input(
                BenchmarkId::new(format!("gemm_acc/{label}"), name),
                &(),
                |bench, _| {
                    let mut c_mat = DenseMatrix::zeros(hidden, batch);
                    bench.iter(|| {
                        c_mat.fill(0.0);
                        gemm_acc_with(&pol, &mut c_mat, &a, &b_mat);
                        c_mat.get(0, 0)
                    })
                },
            );
        }

        // cdk_weight_gradient: ΔW from the positive/negative phase
        // visible/hidden states — the single hottest CD-k kernel.
        let x0 = filled(visible, batch, 3);
        let xk = filled(visible, batch, 4);
        let h0 = filled(hidden, batch, 5);
        let hk = filled(hidden, batch, 6);
        let weights: Vec<f64> = (0..batch).map(|i| 1.0 + (i % 3) as f64 * 0.25).collect();
        for threads in [0usize, 1, 2, 4] {
            let label = if threads == 0 { "seq".to_string() } else { format!("par-t{threads}") };
            let pol = if threads == 0 { KernelPolicy::EXACT_SEQUENTIAL } else { policy(threads) };
            group.bench_with_input(
                BenchmarkId::new(format!("cdk_weight_gradient/{label}"), name),
                &(),
                |bench, _| {
                    let mut d = DenseMatrix::zeros(visible, hidden);
                    bench.iter(|| {
                        d.fill(0.0);
                        cdk_weight_gradient_with(&pol, &mut d, &weights, &x0, &h0, &xk, &hk);
                        d.get(0, 0)
                    })
                },
            );
        }

        // cdk_bias_gradient: Δa over visible rows.
        for threads in [0usize, 1, 2, 4] {
            let label = if threads == 0 { "seq".to_string() } else { format!("par-t{threads}") };
            let pol = if threads == 0 { KernelPolicy::EXACT_SEQUENTIAL } else { policy(threads) };
            group.bench_with_input(
                BenchmarkId::new(format!("cdk_bias_gradient/{label}"), name),
                &(),
                |bench, _| {
                    let mut d = vec![0.0; visible];
                    bench.iter(|| {
                        d.iter_mut().for_each(|v| *v = 0.0);
                        cdk_bias_gradient_with(&pol, &mut d, &weights, &x0, &xk);
                        d[0]
                    })
                },
            );
        }

        // Activation kernels: exact `exp` vs the ≤1e-9 fast-math
        // polynomial. This is the ~1/3-of-CD-k slice the fast path targets.
        let logits = filled(hidden, batch, 7);
        for (label, fast) in [("exact", false), ("fast", true)] {
            let pol = KernelPolicy { fast_math: fast, ..KernelPolicy::EXACT_SEQUENTIAL };
            group.bench_with_input(
                BenchmarkId::new(format!("sigmoid/{label}"), name),
                &(),
                |bench, _| {
                    let mut m = logits.clone();
                    bench.iter(|| {
                        m.as_mut_slice().copy_from_slice(logits.as_slice());
                        sigmoid_matrix_with(&pol, &mut m);
                        m.get(0, 0)
                    })
                },
            );
        }
        let scores = filled(4, batch, 8);
        for (label, fast) in [("exact", false), ("fast", true)] {
            let pol = KernelPolicy { fast_math: fast, ..KernelPolicy::EXACT_SEQUENTIAL };
            group.bench_with_input(
                BenchmarkId::new(format!("softmax_cols/{label}"), name),
                &(),
                |bench, _| {
                    let mut m = scores.clone();
                    bench.iter(|| {
                        m.as_mut_slice().copy_from_slice(scores.as_slice());
                        softmax_cols_in_place_with(&pol, &mut m);
                        m.get(0, 0)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_linalg_kernels);
criterion_main!(benches);
