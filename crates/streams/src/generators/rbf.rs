//! RandomRBF generator (multi-class, with optional centroid drift).
//!
//! Instances are drawn from per-class sets of radial basis (Gaussian)
//! centroids scattered in the unit hypercube — the MOA `RandomRBFGenerator`.
//! Because every centroid is owned by a class, this generator supports
//! *class-conditional* generation natively, which the local-drift and
//! imbalance operators exploit:
//!
//! * **global drift**: all centroids move with a constant speed along random
//!   directions (`RandomRBFGeneratorDrift` behaviour) — an incremental real
//!   drift; alternatively [`RandomRbfGenerator::regenerate`] redraws every
//!   centroid (a sudden drift);
//! * **local drift**: [`RandomRbfGenerator::regenerate_classes`] redraws the
//!   centroids of a chosen subset of classes only, which is exactly the
//!   paper's Experiment 2 setup (drift injected into the `k` smallest
//!   classes).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::instance::{Instance, StreamSchema};
use crate::stream::DataStream;

/// A single radial basis centroid.
#[derive(Debug, Clone)]
struct Centroid {
    center: Vec<f64>,
    /// Standard deviation of the spherical Gaussian around the center.
    spread: f64,
    /// Per-dimension drift direction (unit vector), used when `speed > 0`.
    direction: Vec<f64>,
}

/// Multi-class RandomRBF generator.
pub struct RandomRbfGenerator {
    schema: StreamSchema,
    seed: u64,
    rng: StdRng,
    /// `centroids[class]` is the list of centroids owned by that class.
    centroids: Vec<Vec<Centroid>>,
    centroids_per_class: usize,
    /// Per-instance centroid movement magnitude (0 = stationary concept).
    speed: f64,
    counter: u64,
}

impl RandomRbfGenerator {
    /// Creates a generator with `num_classes * centroids_per_class`
    /// centroids in a `num_features`-dimensional unit cube. `speed` is the
    /// per-instance centroid displacement (incremental drift; `0.0` for a
    /// stationary concept).
    pub fn new(
        num_features: usize,
        num_classes: usize,
        centroids_per_class: usize,
        speed: f64,
        seed: u64,
    ) -> Self {
        assert!(num_features >= 1);
        assert!(num_classes >= 2);
        assert!(centroids_per_class >= 1);
        assert!(speed >= 0.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let centroids = (0..num_classes)
            .map(|_| {
                (0..centroids_per_class)
                    .map(|_| Self::random_centroid(num_features, &mut rng))
                    .collect()
            })
            .collect();
        let schema = StreamSchema::new(
            format!("rbf-d{num_features}-c{num_classes}"),
            num_features,
            num_classes,
        );
        RandomRbfGenerator { schema, seed, rng, centroids, centroids_per_class, speed, counter: 0 }
    }

    fn random_centroid(num_features: usize, rng: &mut StdRng) -> Centroid {
        let center: Vec<f64> = (0..num_features).map(|_| rng.gen_range(0.0..1.0)).collect();
        let spread = rng.gen_range(0.02..0.12);
        // Random unit direction for incremental drift.
        let mut direction: Vec<f64> = (0..num_features).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let norm: f64 = direction.iter().map(|d| d * d).sum::<f64>().sqrt().max(1e-12);
        for d in direction.iter_mut() {
            *d /= norm;
        }
        Centroid { center, spread, direction }
    }

    /// Redraws every centroid — a sudden global real drift.
    pub fn regenerate(&mut self) {
        let classes: Vec<usize> = (0..self.schema.num_classes).collect();
        self.regenerate_classes(&classes);
    }

    /// Redraws the centroids of the listed classes only — a sudden *local*
    /// real drift affecting just those classes.
    pub fn regenerate_classes(&mut self, classes: &[usize]) {
        for &c in classes {
            assert!(c < self.schema.num_classes, "class {c} out of range");
            self.centroids[c] = (0..self.centroids_per_class)
                .map(|_| Self::random_centroid(self.schema.num_features, &mut self.rng))
                .collect();
        }
    }

    /// Generates one instance of the requested class (class-conditional
    /// sampling). Used by the imbalance wrapper to impose arbitrary class
    /// distributions without rejection sampling.
    pub fn generate_for_class(&mut self, class: usize) -> Instance {
        assert!(class < self.schema.num_classes, "class {class} out of range");
        let idx = self.rng.gen_range(0..self.centroids_per_class);
        let (center, spread) = {
            let c = &self.centroids[class][idx];
            (c.center.clone(), c.spread)
        };
        let features: Vec<f64> = center
            .iter()
            .map(|&m| {
                // Box–Muller standard normal.
                let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
                let u2: f64 = self.rng.gen::<f64>();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                m + z * spread
            })
            .collect();
        self.advance_centroids();
        let inst = Instance::with_index(features, class, self.counter);
        self.counter += 1;
        inst
    }

    fn advance_centroids(&mut self) {
        if self.speed == 0.0 {
            return;
        }
        for class in self.centroids.iter_mut() {
            for c in class.iter_mut() {
                for (x, d) in c.center.iter_mut().zip(c.direction.iter_mut()) {
                    *x += *d * self.speed;
                    // Bounce off the unit cube walls.
                    if *x < 0.0 {
                        *x = -*x;
                        *d = -*d;
                    } else if *x > 1.0 {
                        *x = 2.0 - *x;
                        *d = -*d;
                    }
                }
            }
        }
    }

    /// Current centroid centers of a class (diagnostics / tests).
    pub fn class_centroids(&self, class: usize) -> Vec<Vec<f64>> {
        self.centroids[class].iter().map(|c| c.center.clone()).collect()
    }
}

impl DataStream for RandomRbfGenerator {
    fn next_instance(&mut self) -> Option<Instance> {
        let class = self.rng.gen_range(0..self.schema.num_classes);
        Some(self.generate_for_class(class))
    }

    fn schema(&self) -> &StreamSchema {
        &self.schema
    }

    fn restart(&mut self) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.centroids = (0..self.schema.num_classes)
            .map(|_| {
                (0..self.centroids_per_class)
                    .map(|_| Self::random_centroid(self.schema.num_features, &mut rng))
                    .collect()
            })
            .collect();
        self.rng = rng;
        self.counter = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::StreamExt;

    #[test]
    fn class_conditional_generation_honors_class() {
        let mut g = RandomRbfGenerator::new(10, 6, 3, 0.0, 4);
        for c in 0..6 {
            for _ in 0..20 {
                assert_eq!(g.generate_for_class(c).class, c);
            }
        }
    }

    #[test]
    fn stationary_centroids_do_not_move() {
        let mut g = RandomRbfGenerator::new(5, 3, 2, 0.0, 8);
        let before = g.class_centroids(0);
        g.take_instances(1000);
        assert_eq!(g.class_centroids(0), before);
    }

    #[test]
    fn drifting_centroids_move_and_stay_in_bounds() {
        let mut g = RandomRbfGenerator::new(5, 3, 2, 0.001, 8);
        let before = g.class_centroids(1);
        g.take_instances(2000);
        let after = g.class_centroids(1);
        assert_ne!(before, after);
        for c in &after {
            for &x in c {
                assert!((-0.01..=1.01).contains(&x), "centroid left the unit cube: {x}");
            }
        }
    }

    #[test]
    fn regenerate_classes_only_affects_selected() {
        let mut g = RandomRbfGenerator::new(6, 4, 2, 0.0, 15);
        let before0 = g.class_centroids(0);
        let before3 = g.class_centroids(3);
        g.regenerate_classes(&[3]);
        assert_eq!(g.class_centroids(0), before0, "untouched class must keep its centroids");
        assert_ne!(g.class_centroids(3), before3, "drifted class must change");
    }

    #[test]
    fn regenerate_all_changes_every_class() {
        let mut g = RandomRbfGenerator::new(6, 3, 2, 0.0, 16);
        let before: Vec<_> = (0..3).map(|c| g.class_centroids(c)).collect();
        g.regenerate();
        for (c, b) in before.iter().enumerate() {
            assert_ne!(&g.class_centroids(c), b);
        }
    }

    #[test]
    fn local_drift_shifts_class_distribution() {
        // The empirical mean of the drifted class must change after
        // regeneration, while a non-drifted class stays (statistically) put.
        let mut g = RandomRbfGenerator::new(8, 4, 3, 0.0, 99);
        let mean_of = |insts: &[Instance]| -> Vec<f64> {
            let mut m = vec![0.0; 8];
            for i in insts {
                for (acc, v) in m.iter_mut().zip(i.features.iter()) {
                    *acc += v / insts.len() as f64;
                }
            }
            m
        };
        let before_drift: Vec<Instance> = (0..400).map(|_| g.generate_for_class(2)).collect();
        let before_stable: Vec<Instance> = (0..400).map(|_| g.generate_for_class(0)).collect();
        g.regenerate_classes(&[2]);
        let after_drift: Vec<Instance> = (0..400).map(|_| g.generate_for_class(2)).collect();
        let after_stable: Vec<Instance> = (0..400).map(|_| g.generate_for_class(0)).collect();
        let dist = |a: &[f64], b: &[f64]| -> f64 {
            a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt()
        };
        let moved = dist(&mean_of(&before_drift), &mean_of(&after_drift));
        let stayed = dist(&mean_of(&before_stable), &mean_of(&after_stable));
        assert!(
            moved > 3.0 * stayed || moved > 0.1,
            "drifted class moved {moved}, stable {stayed}"
        );
        assert!(stayed < 0.1, "stable class should not move much, moved {stayed}");
    }

    #[test]
    fn restart_reproduces_sequence() {
        let mut g = RandomRbfGenerator::new(7, 5, 2, 0.002, 33);
        let a = g.take_instances(200);
        g.restart();
        let b = g.take_instances(200);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn generate_for_class_rejects_out_of_range() {
        RandomRbfGenerator::new(3, 2, 1, 0.0, 0).generate_for_class(5);
    }
}
