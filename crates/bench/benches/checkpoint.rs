//! `checkpoint`: microbenchmark of per-stream snapshot + restore latency
//! and serialized size, for **both** checkpoint codecs.
//!
//! Elastic resharding and the supervisor's background spills both pay
//! `snapshot + serialize` on one side and `parse + rebuild + restore` on
//! the other, so this bench measures each half for a warmed-up pipeline
//! (5 000 instances ingested) with the trainable RBM-IM detector (the
//! heavyweight case) and with ADWIN (the lightweight classic-detector
//! case), once per codec (JSON and the binary framing of
//! `harness::checkpoint::codec`). The serialized sizes are printed in all
//! three relevant forms — pretty JSON (what `SnapshotSink` spilled before
//! the binary codec existed), minified JSON, and binary —
//! `BENCH_checkpoint.json` records the measured baseline with the runner
//! metadata embedded.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rbm_im_harness::checkpoint::codec::CheckpointCodec;
use rbm_im_harness::checkpoint::PipelineCheckpoint;
use rbm_im_harness::pipeline::{PipelineEvent, RunConfig};
use rbm_im_harness::registry::{DetectorRegistry, DetectorSpec};
use rbm_im_harness::stepper::PipelineStepper;
use rbm_im_streams::generators::RandomRbfGenerator;
use rbm_im_streams::{DataStream, StreamExt};

const WARM_INSTANCES: usize = 5_000;

/// A stepper fed `WARM_INSTANCES` instances of a drifting RBF stream.
fn warmed_stepper(spec: &DetectorSpec) -> (PipelineStepper, rbm_im_streams::StreamSchema) {
    let mut gen = RandomRbfGenerator::new(10, 4, 2, 0.0, 21);
    let schema = gen.schema().clone();
    let run = RunConfig { metric_window: 1_000, detector_batch: 50, ..Default::default() };
    let mut stepper =
        PipelineStepper::from_spec(DetectorRegistry::global(), spec, &schema, run).unwrap();
    let mut sink = |_: &PipelineEvent<'_>| {};
    for instance in gen.take_instances(WARM_INSTANCES) {
        stepper.step(instance, &mut sink);
    }
    (stepper, schema)
}

fn bench_checkpoint(c: &mut Criterion) {
    rbm_im_bench::print_runner_metadata();
    let mut group = c.benchmark_group("checkpoint");
    group.sample_size(10);
    let registry = DetectorRegistry::global();
    let specs =
        [("rbm-im", "rbm(mini_batch=50, warmup=4, seed=7)"), ("adwin", "adwin(delta=0.01)")];
    for (label, spec_text) in specs {
        let spec = DetectorSpec::parse(spec_text).unwrap();
        let (stepper, schema) = warmed_stepper(&spec);
        let checkpoint =
            PipelineCheckpoint::capture(&stepper, schema.clone(), spec.clone()).unwrap();

        // Size report: the three on-disk forms of the same checkpoint.
        let pretty = serde_json::to_string_pretty(&checkpoint).unwrap().len();
        let compact = checkpoint.to_bytes(CheckpointCodec::Json).len();
        let binary = checkpoint.to_bytes(CheckpointCodec::Binary).len();
        println!(
            "checkpoint/{label}: pretty-json {pretty} B, minified-json {compact} B, binary \
             {binary} B ({:.2}x vs pretty spill, {:.2}x vs minified)",
            pretty as f64 / binary as f64,
            compact as f64 / binary as f64,
        );

        for codec in [CheckpointCodec::Json, CheckpointCodec::Binary] {
            // Snapshot + serialize one warmed stream (the migration
            // source's / background spill's cost per stream).
            group.bench_with_input(
                BenchmarkId::new(format!("snapshot-{codec}"), label),
                &(),
                |b, _| {
                    b.iter(|| {
                        PipelineCheckpoint::capture(&stepper, schema.clone(), spec.clone())
                            .unwrap()
                            .to_bytes(codec)
                            .len()
                    })
                },
            );

            // Parse + rebuild + restore (the migration target's / cold
            // restart's cost).
            let bytes = checkpoint.to_bytes(codec);
            group.bench_with_input(
                BenchmarkId::new(format!("restore-{codec}"), label),
                &(),
                |b, _| {
                    b.iter(|| {
                        let parsed = PipelineCheckpoint::from_bytes(&bytes).unwrap();
                        parsed.resume(registry).unwrap().instances()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_checkpoint);
criterion_main!(benches);
