//! WSTD — Wilcoxon Rank Sum Test Drift detector (de Barros et al.,
//! Neurocomputing 2018).
//!
//! Maintains two sub-windows over the stream of prediction outcomes: an
//! *older* window capped at `max_old_instances` and a *recent* sliding
//! window of size `window_size`. Once both hold enough data, a Wilcoxon
//! rank-sum test compares their distributions; p-values below the warning /
//! drift significance levels raise the corresponding signals.

use crate::{DetectorState, DriftDetector, Observation};
use rbm_im_stats::wilcoxon::wilcoxon_rank_sum;
use std::collections::VecDeque;

/// Configuration of [`Wstd`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WstdConfig {
    /// Size of the recent sliding window (25–100 in the paper's grid).
    pub window_size: usize,
    /// Warning significance level.
    pub warning_significance: f64,
    /// Drift significance level (stricter than the warning level).
    pub drift_significance: f64,
    /// Maximum number of old-concept instances retained.
    pub max_old_instances: usize,
    /// How many instances pass between consecutive tests (testing on every
    /// instance is unnecessary and slow).
    pub test_interval: usize,
}

impl Default for WstdConfig {
    fn default() -> Self {
        WstdConfig {
            window_size: 75,
            warning_significance: 0.01,
            drift_significance: 0.001,
            max_old_instances: 3_000,
            test_interval: 25,
        }
    }
}

/// The WSTD detector.
#[derive(Debug, Clone)]
pub struct Wstd {
    config: WstdConfig,
    old_window: VecDeque<f64>,
    recent_window: VecDeque<f64>,
    since_last_test: usize,
    state: DetectorState,
}

impl Wstd {
    /// Creates a WSTD detector with the default configuration.
    pub fn new() -> Self {
        Self::with_config(WstdConfig::default())
    }

    /// Creates a WSTD detector with an explicit configuration.
    pub fn with_config(config: WstdConfig) -> Self {
        assert!(config.window_size >= 10);
        assert!(config.drift_significance < config.warning_significance);
        assert!(config.max_old_instances > config.window_size);
        assert!(config.test_interval >= 1);
        Wstd {
            config,
            old_window: VecDeque::with_capacity(config.max_old_instances),
            recent_window: VecDeque::with_capacity(config.window_size),
            since_last_test: 0,
            state: DetectorState::Stable,
        }
    }
}

impl Default for Wstd {
    fn default() -> Self {
        Self::new()
    }
}

impl DriftDetector for Wstd {
    fn update(&mut self, observation: &Observation<'_>) -> DetectorState {
        let x = if observation.correct { 0.0 } else { 1.0 };
        // The recent window fills first; once full, the oldest recent value
        // graduates into the old-concept window.
        if self.recent_window.len() == self.config.window_size {
            let graduated = self.recent_window.pop_front().expect("recent window full");
            if self.old_window.len() == self.config.max_old_instances {
                self.old_window.pop_front();
            }
            self.old_window.push_back(graduated);
        }
        self.recent_window.push_back(x);

        self.since_last_test += 1;
        if self.recent_window.len() < self.config.window_size
            || self.old_window.len() < self.config.window_size
            || self.since_last_test < self.config.test_interval
        {
            if !self.state.is_warning() {
                self.state = DetectorState::Stable;
            }
            return self.state;
        }
        self.since_last_test = 0;

        let old: Vec<f64> = self.old_window.iter().copied().collect();
        let recent: Vec<f64> = self.recent_window.iter().copied().collect();
        // A one-sided concern (error increase) expressed through the
        // two-sided test plus a direction check, as in the original method.
        let recent_mean = recent.iter().sum::<f64>() / recent.len() as f64;
        let old_mean = old.iter().sum::<f64>() / old.len() as f64;
        let p_value = match wilcoxon_rank_sum(&old, &recent) {
            Ok(res) => res.p_value,
            Err(_) => 1.0,
        };
        self.state = if recent_mean > old_mean && p_value < self.config.drift_significance {
            self.old_window.clear();
            self.recent_window.clear();
            DetectorState::Drift
        } else if recent_mean > old_mean && p_value < self.config.warning_significance {
            DetectorState::Warning
        } else {
            DetectorState::Stable
        };
        self.state
    }

    fn state(&self) -> DetectorState {
        self.state
    }

    fn reset(&mut self) {
        *self = Wstd::with_config(self.config);
    }

    fn name(&self) -> &'static str {
        "WSTD"
    }

    fn snapshot_state(&self) -> Option<serde::Value> {
        use serde::{Serialize, Value};
        Some(Value::object(vec![
            ("old_window", self.old_window.serialize_value()),
            ("recent_window", self.recent_window.serialize_value()),
            ("since_last_test", self.since_last_test.serialize_value()),
            ("state", self.state.serialize_value()),
        ]))
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), serde::Error> {
        self.old_window = state.field("old_window")?;
        self.recent_window = state.field("recent_window")?;
        self.since_last_test = state.field("since_last_test")?;
        self.state = state.field("state")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{
        assert_detects_abrupt_change, assert_quiet_on_stationary, run_error_stream,
    };

    #[test]
    fn detects_abrupt_error_increase() {
        assert_detects_abrupt_change(&mut Wstd::new(), 600, 3);
    }

    #[test]
    fn quiet_on_stationary_stream() {
        assert_quiet_on_stationary(&mut Wstd::new(), 3);
    }

    #[test]
    fn improvement_does_not_trigger() {
        let detections = run_error_stream(&mut Wstd::new(), 0.5, 0.05, 3000, 6000, 9);
        assert!(
            detections.is_empty(),
            "error decreases must not raise WSTD alarms: {detections:?}"
        );
    }

    #[test]
    fn needs_both_windows_before_testing() {
        let mut wstd = Wstd::new();
        let features = [0.0];
        // Fewer instances than one full window: never anything but stable.
        for i in 0..50 {
            let obs = Observation {
                features: &features,
                true_class: 0,
                predicted_class: i % 2,
                correct: i % 2 == 0,
            };
            assert_eq!(wstd.update(&obs), DetectorState::Stable);
        }
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut wstd = Wstd::new();
        run_error_stream(&mut wstd, 0.05, 0.6, 1000, 3000, 3);
        wstd.reset();
        assert_eq!(wstd.state(), DetectorState::Stable);
        assert_eq!(wstd.name(), "WSTD");
    }

    #[test]
    #[should_panic]
    fn invalid_significances_rejected() {
        Wstd::with_config(WstdConfig {
            warning_significance: 0.001,
            drift_significance: 0.05,
            ..Default::default()
        });
    }
}
