//! Serving 64 concurrent imbalanced fraud feeds through `rbm-im-serve`.
//!
//! Sixty-four merchant feeds — each a heavily imbalanced stream whose rare
//! "fraud" class drifts at a feed-specific time — are attached to a sharded
//! server with tuned RBM-IM detectors (hyper-parameters straight in the
//! spec string), pumped concurrently by a pool of feeder threads with
//! blocking backpressure, and monitored live off the drift-event bus. At
//! the end the server drains, shuts down gracefully and prints a fleet
//! summary.
//!
//! Run with:
//! `cargo run -p rbm-im-serve --release --example serve_fraud_feeds`

use rbm_im_harness::registry::DetectorSpec;
use rbm_im_serve::{ServeConfig, ServeEventKind, ServerHandle};
use rbm_im_streams::drift::local::{LocalDriftEvent, LocalDriftStream};
use rbm_im_streams::drift::DriftKind;
use rbm_im_streams::generators::RandomRbfGenerator;
use rbm_im_streams::imbalance::{ImbalanceProfile, ImbalancedStream};
use rbm_im_streams::source::{derive_stream_seed, StreamSource};
use rbm_im_streams::{DataStream, StreamExt};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const FEEDS: usize = 64;
const INSTANCES_PER_FEED: usize = 1_500;
const SHARDS: usize = 8;
const FEEDER_THREADS: usize = 8;

/// One merchant feed: a 4-class RBF stream under geometric 20:1 imbalance
/// whose *minority* class (the fraud pattern) suddenly drifts at a
/// feed-specific position. Fully deterministic per feed id.
fn feed_source(id: &str) -> StreamSource {
    let seed = derive_stream_seed(2_026, id);
    let drift_at = 600 + (seed % 600); // between 40% and 80% of the feed
    StreamSource::new(id.to_string(), move || {
        let base = RandomRbfGenerator::new(10, 4, 3, 0.0, seed);
        let imbalanced =
            ImbalancedStream::new(base, ImbalanceProfile::geometric(4, 20.0), seed ^ 0x5a5a);
        let drift = LocalDriftEvent {
            affected_classes: vec![3],
            position: drift_at,
            width: 0,
            kind: DriftKind::Sudden,
            magnitude: 0.9,
        };
        Box::new(LocalDriftStream::new(imbalanced, vec![drift], seed ^ 0xa5a5))
    })
}

fn main() {
    println!(
        "serving {FEEDS} imbalanced fraud feeds × {INSTANCES_PER_FEED} instances \
         on {SHARDS} shards ({FEEDER_THREADS} feeder threads)\n"
    );

    let server = ServerHandle::start(ServeConfig {
        num_shards: SHARDS,
        queue_capacity: 256,
        ..Default::default()
    });

    // Subscriber: count drifts live off the event bus, printing the first
    // few with their per-class attribution.
    let events = server.subscribe();
    let drift_count = Arc::new(AtomicU64::new(0));
    let subscriber = {
        let drift_count = Arc::clone(&drift_count);
        std::thread::spawn(move || {
            let mut printed = 0;
            for event in events {
                if let ServeEventKind::Drift { position, ref classes } = event.kind {
                    let n = drift_count.fetch_add(1, Ordering::Relaxed) + 1;
                    if printed < 12 {
                        println!(
                            "  drift #{n:<3} {} @ {position:>5} (shard {}, classes {classes:?})",
                            event.stream, event.shard
                        );
                        printed += 1;
                    } else if printed == 12 {
                        println!("  … (further drifts counted silently)");
                        printed += 1;
                    }
                }
            }
            drift_count.load(Ordering::Relaxed)
        })
    };

    // Attach all feeds: tuned RBM-IM hyper-parameters ride in the spec
    // string; deterministic per-stream seeding decorrelates the fleet.
    let spec = DetectorSpec::parse("rbm(minibatch=25, warmup=4, persistence=1, hidden=8)")
        .expect("valid spec");
    let sources: Vec<StreamSource> =
        (0..FEEDS).map(|i| feed_source(&format!("merchant-{i:02}"))).collect();
    let mut clients = Vec::with_capacity(FEEDS);
    for source in &sources {
        let client =
            server.attach(source.id(), source.schema().clone(), &spec).expect("attach feed");
        clients.push(client);
    }

    // Feeder pool: each thread pumps its share of the feeds round-robin in
    // micro-batches, using blocking ingest (natural backpressure — the
    // pumps run at the shards' pace).
    let start = std::time::Instant::now();
    std::thread::scope(|scope| {
        for worker in 0..FEEDER_THREADS {
            let clients = &clients;
            let sources = &sources;
            scope.spawn(move || {
                let mine: Vec<usize> =
                    (0..FEEDS).filter(|i| i % FEEDER_THREADS == worker).collect();
                let mut streams: Vec<Box<dyn DataStream + Send>> =
                    mine.iter().map(|&i| sources[i].open()).collect();
                let mut remaining: Vec<usize> = vec![INSTANCES_PER_FEED; mine.len()];
                loop {
                    let mut progressed = false;
                    for (slot, &feed) in mine.iter().enumerate() {
                        if remaining[slot] == 0 {
                            continue;
                        }
                        let chunk = remaining[slot].min(50);
                        let batch = streams[slot].take_instances(chunk);
                        remaining[slot] -= batch.len();
                        clients[feed].ingest_batch(batch).expect("shard alive");
                        progressed = true;
                    }
                    if !progressed {
                        break;
                    }
                }
            });
        }
    });
    // The clock stops only after the drain barrier: everything queued in
    // the shard channels is fully processed, so the rate below is true
    // end-to-end throughput, not ingest-enqueue speed.
    server.drain();
    let serve_seconds = start.elapsed().as_secs_f64();

    let report = server.shutdown();
    let total_drifts = {
        // Shutdown dropped the bus publishers; the subscriber loop ends.
        subscriber.join().expect("subscriber thread")
    };

    let total = report.total_instances();
    println!("\nprocessed {total} instances in {serve_seconds:.2}s ");
    println!(
        "  ({:.0} instances/s end-to-end, {} drift events, {} reused workspaces)",
        total as f64 / serve_seconds,
        total_drifts,
        report.workspace_reuse_hits,
    );

    // Fleet summary: the five feeds with the most drift signals.
    let mut by_drifts = report.streams.clone();
    by_drifts.sort_by_key(|s| std::cmp::Reverse(s.result.detections.len()));
    println!("\nnoisiest feeds:");
    println!("  {:<14} {:>6} {:>8} {:>8} {:>7}", "feed", "drifts", "pmAUC", "pmGM", "shard");
    for summary in by_drifts.iter().take(5) {
        println!(
            "  {:<14} {:>6} {:>8.2} {:>8.2} {:>7}",
            summary.stream,
            summary.result.detections.len(),
            summary.result.pm_auc,
            summary.result.pm_gmean,
            summary.shard,
        );
    }
    let detected = report.streams.iter().filter(|s| !s.result.detections.is_empty()).count();
    println!("\n{detected}/{FEEDS} feeds raised at least one drift signal");
}
