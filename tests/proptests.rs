//! Property-based tests (proptest) on cross-crate invariants: metric bounds,
//! generator label control, imbalance-profile normalization, detection
//! scoring consistency and statistical-test sanity under arbitrary inputs.

use proptest::prelude::*;
use rbm_im_metrics::{evaluate_detections, StreamingConfusionMatrix, WindowedMultiClassAuc};
use rbm_im_stats::descriptive::rank_with_ties;
use rbm_im_stats::friedman::friedman_test;
use rbm_im_stats::online::SlidingWindowStats;
use rbm_im_streams::generators::RandomRbfGenerator;
use rbm_im_streams::imbalance::ImbalanceProfile;
use rbm_im_streams::StreamExt;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Confusion-matrix derived metrics always stay inside their bounds and
    /// the matrix total matches the number of recorded predictions.
    #[test]
    fn confusion_matrix_metrics_are_bounded(
        labels in prop::collection::vec((0usize..4, 0usize..4), 1..300)
    ) {
        let mut m = StreamingConfusionMatrix::new(4);
        for &(t, p) in &labels {
            m.record(t, p);
        }
        prop_assert_eq!(m.total() as usize, labels.len());
        prop_assert!((0.0..=1.0).contains(&m.accuracy()));
        prop_assert!((0.0..=1.0).contains(&m.g_mean()));
        prop_assert!((-1.0..=1.0).contains(&m.kappa()));
        for c in 0..4 {
            if let Some(r) = m.recall(c) {
                prop_assert!((0.0..=1.0).contains(&r));
            }
        }
    }

    /// The windowed multi-class AUC is always within [0, 1] whatever scores
    /// and labels arrive.
    #[test]
    fn windowed_auc_is_bounded(
        records in prop::collection::vec((prop::collection::vec(0.0f64..1.0, 3), 0usize..3), 1..200)
    ) {
        let mut auc = WindowedMultiClassAuc::new(3, 50);
        for (scores, label) in &records {
            auc.record(scores, *label);
        }
        let value = auc.auc();
        prop_assert!((0.0..=1.0).contains(&value), "auc = {}", value);
    }

    /// Midranks are a permutation-invariant quantity: their sum is always
    /// n(n+1)/2 and every rank lies in [1, n].
    #[test]
    fn ranks_sum_is_invariant(values in prop::collection::vec(-1e6f64..1e6, 1..100)) {
        let ranks = rank_with_ties(&values);
        let n = values.len() as f64;
        let sum: f64 = ranks.iter().sum();
        prop_assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-6);
        prop_assert!(ranks.iter().all(|&r| r >= 1.0 && r <= n));
    }

    /// Friedman average ranks always sum to k(k+1)/2 and the p-value is a
    /// probability, for any score matrix.
    #[test]
    fn friedman_ranks_always_consistent(
        scores in prop::collection::vec(prop::collection::vec(0.0f64..100.0, 4), 2..6)
    ) {
        let result = friedman_test(&scores, true).unwrap();
        let k = scores.len() as f64;
        let sum: f64 = result.average_ranks.iter().sum();
        prop_assert!((sum - k * (k + 1.0) / 2.0).abs() < 1e-9);
        prop_assert!((0.0..=1.0).contains(&result.p_value));
    }

    /// Sliding-window statistics never go negative on variance and track the
    /// window length exactly.
    #[test]
    fn sliding_window_stats_invariants(values in prop::collection::vec(-1e3f64..1e3, 1..200)) {
        let mut w = SlidingWindowStats::new(32);
        for &v in &values {
            w.push(v);
        }
        prop_assert!(w.len() <= 32);
        prop_assert_eq!(w.len(), values.len().min(32));
        prop_assert!(w.variance() >= 0.0);
    }

    /// Imbalance profiles always yield a normalized probability vector and an
    /// imbalance ratio of at least 1.
    #[test]
    fn imbalance_profiles_normalize(num_classes in 2usize..8, ir in 1.0f64..400.0, t in 0u64..100_000) {
        let profile = ImbalanceProfile::geometric(num_classes, ir);
        let probs = profile.probabilities_at(t);
        prop_assert_eq!(probs.len(), num_classes);
        prop_assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(profile.imbalance_ratio_at(t) >= 1.0 - 1e-9);
    }

    /// Detection scoring: detected + missed always equals the number of true
    /// drifts, and precision/recall stay in [0, 1].
    #[test]
    fn detection_scoring_is_consistent(
        truths in prop::collection::vec(0u64..50_000, 0..6),
        alarms in prop::collection::vec(0u64..50_000, 0..20),
        horizon in 1u64..10_000
    ) {
        let q = evaluate_detections(&truths, &alarms, horizon);
        prop_assert_eq!(q.detected + q.missed, q.true_drifts);
        prop_assert!((0.0..=1.0).contains(&q.recall()));
        prop_assert!((0.0..=1.0).contains(&q.precision()));
        prop_assert!(q.false_alarms <= alarms.len());
    }

    /// The RBF generator always produces the declared number of features and
    /// valid class labels, for arbitrary (small) schema choices.
    #[test]
    fn rbf_generator_respects_schema(
        features in 1usize..12,
        classes in 2usize..6,
        seed in 0u64..1_000
    ) {
        let mut gen = RandomRbfGenerator::new(features, classes, 2, 0.0, seed);
        for inst in gen.take_instances(50) {
            prop_assert_eq!(inst.num_features(), features);
            prop_assert!(inst.class < classes);
            prop_assert!(inst.features.iter().all(|f| f.is_finite()));
        }
    }
}
