//! `rbm-im-obs`: the telemetry plane for the RBM-IM serving stack.
//!
//! Hand-rolled on vendored deps only, this crate provides the three
//! primitives the serving layers instrument themselves with:
//!
//! - [`MetricsRegistry`] — named atomic [`Counter`]s, [`Gauge`]s, and
//!   log-linear latency [`Histogram`]s. Registration is the cold path;
//!   recording through a captured handle is wait-free and
//!   allocation-free (enforced by `tests/no_alloc.rs` with the same
//!   counting-allocator harness as `crates/rbm`).
//! - [`ObsServer`] / [`render_prometheus`] — Prometheus text-format
//!   exposition over a plain `std::net` scrape listener, plus
//!   [`MetricsSnapshot`] as a serializable (RBMC-codec-friendly) value
//!   for wire exposition.
//! - [`Tracer`] — ring-buffered structured spans (begin/end with
//!   monotonic timestamps) drained to JSONL by the owning sink.
//!
//! # Naming scheme
//!
//! Families are `rbm_<layer>_<what>_<unit>`: `rbm_serve_*` (shard plane),
//! `rbm_net_*` (TCP front-end), `rbm_supervisor_*` (control plane),
//! `rbm_kernel_*` (CD-k kernels). Duration histograms end in `_seconds`
//! and record **integer nanoseconds**; exposition divides by 1e9. Counter
//! families end in `_total`.
//!
//! # Gating and determinism
//!
//! Timing instrumentation (the clock reads around hot-path operations) is
//! gated by [`enabled`] — off by default, switched on with `RBM_OBS=on`
//! or programmatically via [`force_enabled`]. Structural counters
//! (frames dropped, queue gauges) are always live: they back reports and
//! the resize policy. Observability never perturbs results: instruments
//! only read clocks and bump atomics, and never branch on what they
//! measure — the determinism suites run bitwise-identical with `RBM_OBS`
//! on and off, which CI enforces.

mod expose;
mod histogram;
mod registry;
mod trace;

pub use expose::{render_prometheus, scrape_text, ObsServer};
pub use histogram::{bucket_index, bucket_upper_bound, Histogram, HistogramSnapshot, NUM_BUCKETS};
pub use registry::{Counter, Gauge, MetricId, MetricsRegistry, MetricsSnapshot};
pub use trace::{SpanTimer, TraceEvent, Tracer};

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};

/// Tri-state: 0 = uninitialised (read `RBM_OBS` on first query), 1 = off,
/// 2 = on.
static OBS_STATE: AtomicU8 = AtomicU8::new(0);

/// Whether timing instrumentation is enabled. First call reads the
/// `RBM_OBS` environment variable (`1` / `on` / `true` / `yes` enable);
/// [`force_enabled`] overrides at any time. Cheap enough to query on hot
/// paths (one relaxed atomic load after initialisation).
#[inline]
pub fn enabled() -> bool {
    match OBS_STATE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => {
            let on = std::env::var("RBM_OBS")
                .map(|v| matches!(v.as_str(), "1" | "on" | "true" | "yes"))
                .unwrap_or(false);
            OBS_STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
    }
}

/// Programmatically switches timing instrumentation on or off,
/// overriding `RBM_OBS`. Used by examples (always-on demo telemetry) and
/// the `obs_overhead` bench (same-process on/off comparison).
pub fn force_enabled(on: bool) {
    OBS_STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// The process-global registry, for call sites with no server context
/// (the CD-k kernels in `rbm_im::linalg`). Server-scoped metrics live in
/// per-`ServerHandle` registries instead, so concurrent servers (and
/// tests) never share counters.
pub fn global() -> &'static Arc<MetricsRegistry> {
    static GLOBAL: OnceLock<Arc<MetricsRegistry>> = OnceLock::new();
    GLOBAL.get_or_init(|| Arc::new(MetricsRegistry::new()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn force_enabled_overrides_env_state() {
        force_enabled(true);
        assert!(enabled());
        force_enabled(false);
        assert!(!enabled());
    }

    #[test]
    fn global_registry_is_shared() {
        let a = global().counter("rbm_test_global_total", &[]);
        let b = global().counter("rbm_test_global_total", &[]);
        a.inc();
        assert_eq!(b.get(), 1);
    }
}
