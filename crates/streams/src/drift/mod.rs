//! Concept-drift operators.
//!
//! The paper (Sec. II) distinguishes drifts by **speed** — sudden, gradual,
//! incremental — and by **locality** — global (all classes) vs local (a
//! subset of classes). This module provides:
//!
//! * [`DriftKind`] / [`DriftSchedule`] — when and how fast concepts change;
//! * [`ConceptSequenceStream`] — the MOA-style composition of several
//!   concept streams with scheduled transitions (sudden / gradual /
//!   incremental), used for *global* drift;
//! * [`local`] — the [`LocalDriftStream`] wrapper
//!   that applies real drift to a chosen subset of classes only.

pub mod local;

pub use local::LocalDriftStream;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::instance::{Instance, StreamSchema};
use crate::stream::DataStream;

/// Speed profile of a concept transition (paper Eq. 2–5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftKind {
    /// Abrupt switch at the drift position (Eq. 2).
    Sudden,
    /// Probabilistic oscillation between the old and new concept during the
    /// transition window, with the new concept appearing increasingly often
    /// (Eq. 5).
    Gradual,
    /// Deterministic mixing: instances are drawn from an interpolated
    /// distribution whose mixing weight moves linearly from 0 to 1 across
    /// the transition window (Eq. 3–4). For generator-based concepts this is
    /// realized by sampling the new concept with probability `α_j`.
    Incremental,
}

/// A scheduled transition from concept `i` to concept `i + 1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftEvent {
    /// Stream position (instance index) at which the transition is centered.
    pub position: u64,
    /// Width of the transition window in instances (ignored for sudden).
    pub width: u64,
    /// Speed profile of the transition.
    pub kind: DriftKind,
}

/// A full drift schedule: a sequence of transitions applied in order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DriftSchedule {
    /// The transitions, in increasing `position` order.
    pub events: Vec<DriftEvent>,
}

impl DriftSchedule {
    /// A schedule with no drift at all (stationary stream).
    pub fn stationary() -> Self {
        DriftSchedule { events: Vec::new() }
    }

    /// Evenly spaced transitions of the same kind/width across a stream of
    /// `stream_length` instances: `n_drifts` events at positions
    /// `stream_length * k / (n_drifts + 1)`.
    pub fn evenly_spaced(n_drifts: usize, stream_length: u64, width: u64, kind: DriftKind) -> Self {
        let events = (1..=n_drifts as u64)
            .map(|k| DriftEvent {
                position: stream_length * k / (n_drifts as u64 + 1),
                width,
                kind,
            })
            .collect();
        DriftSchedule { events }
    }

    /// Returns, for instance index `t`, the index of the active concept and
    /// the probability of drawing from the *next* concept (0.0 before a
    /// transition starts, 1.0 after it finishes).
    ///
    /// The active concept index equals the number of completed transitions.
    pub fn concept_at(&self, t: u64) -> (usize, f64) {
        let mut active = 0usize;
        for event in &self.events {
            let half = event.width / 2;
            let start = event.position.saturating_sub(half);
            let end = event.position + half;
            match event.kind {
                DriftKind::Sudden => {
                    if t >= event.position {
                        active += 1;
                    } else {
                        return (active, 0.0);
                    }
                }
                DriftKind::Gradual | DriftKind::Incremental => {
                    if t >= end {
                        active += 1;
                    } else if t >= start && event.width > 0 {
                        let alpha = (t - start) as f64 / event.width as f64;
                        return (active, alpha.clamp(0.0, 1.0));
                    } else {
                        return (active, 0.0);
                    }
                }
            }
        }
        (active, 0.0)
    }

    /// The positions of all drift events (useful for detection-delay
    /// evaluation).
    pub fn drift_positions(&self) -> Vec<u64> {
        self.events.iter().map(|e| e.position).collect()
    }
}

/// MOA-style composition of a sequence of concept streams with scheduled
/// transitions between consecutive concepts.
///
/// Concept `i` is the stream active after `i` completed transitions. During
/// a gradual/incremental transition window instances are drawn from the old
/// or new concept according to the transition probability `α`.
pub struct ConceptSequenceStream {
    schema: StreamSchema,
    concepts: Vec<Box<dyn DataStream + Send>>,
    schedule: DriftSchedule,
    rng: StdRng,
    seed: u64,
    counter: u64,
}

impl ConceptSequenceStream {
    /// Creates a stream from at least one concept. All concepts must share
    /// the same feature/class dimensions. There should be exactly
    /// `schedule.events.len() + 1` concepts; extra events beyond the last
    /// concept keep the final concept active.
    pub fn new(
        concepts: Vec<Box<dyn DataStream + Send>>,
        schedule: DriftSchedule,
        seed: u64,
    ) -> Self {
        assert!(!concepts.is_empty(), "need at least one concept");
        let schema =
            concepts[0].schema().renamed(format!("{}-drifting", concepts[0].schema().name));
        for c in &concepts {
            assert_eq!(
                c.schema().num_features,
                schema.num_features,
                "concepts must share feature count"
            );
            assert_eq!(
                c.schema().num_classes,
                schema.num_classes,
                "concepts must share class count"
            );
        }
        ConceptSequenceStream {
            schema,
            concepts,
            schedule,
            rng: StdRng::seed_from_u64(seed),
            seed,
            counter: 0,
        }
    }

    /// The drift schedule driving this stream.
    pub fn schedule(&self) -> &DriftSchedule {
        &self.schedule
    }
}

impl DataStream for ConceptSequenceStream {
    fn next_instance(&mut self) -> Option<Instance> {
        let (active, alpha) = self.schedule.concept_at(self.counter);
        let active = active.min(self.concepts.len() - 1);
        let use_next =
            alpha > 0.0 && active + 1 < self.concepts.len() && self.rng.gen::<f64>() < alpha;
        let source = if use_next { active + 1 } else { active };
        let mut inst = self.concepts[source].next_instance()?;
        inst.index = self.counter;
        self.counter += 1;
        Some(inst)
    }

    fn schema(&self) -> &StreamSchema {
        &self.schema
    }

    fn restart(&mut self) {
        for c in self.concepts.iter_mut() {
            c.restart();
        }
        self.rng = StdRng::seed_from_u64(self.seed);
        self.counter = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{AgrawalGenerator, RandomRbfGenerator};
    use crate::stream::StreamExt;

    #[test]
    fn schedule_concept_indexing_sudden() {
        let s = DriftSchedule {
            events: vec![
                DriftEvent { position: 100, width: 0, kind: DriftKind::Sudden },
                DriftEvent { position: 200, width: 0, kind: DriftKind::Sudden },
            ],
        };
        assert_eq!(s.concept_at(0), (0, 0.0));
        assert_eq!(s.concept_at(99), (0, 0.0));
        assert_eq!(s.concept_at(100), (1, 0.0));
        assert_eq!(s.concept_at(199), (1, 0.0));
        assert_eq!(s.concept_at(200), (2, 0.0));
        assert_eq!(s.drift_positions(), vec![100, 200]);
    }

    #[test]
    fn schedule_concept_indexing_gradual() {
        let s = DriftSchedule {
            events: vec![DriftEvent { position: 100, width: 40, kind: DriftKind::Gradual }],
        };
        assert_eq!(s.concept_at(50), (0, 0.0));
        let (c, a) = s.concept_at(100);
        assert_eq!(c, 0);
        assert!((a - 0.5).abs() < 1e-12);
        let (c, a) = s.concept_at(119);
        assert_eq!(c, 0);
        assert!(a > 0.9);
        assert_eq!(s.concept_at(120), (1, 0.0));
    }

    #[test]
    fn evenly_spaced_positions() {
        let s = DriftSchedule::evenly_spaced(3, 4000, 100, DriftKind::Incremental);
        assert_eq!(s.drift_positions(), vec![1000, 2000, 3000]);
        assert_eq!(s.events[0].width, 100);
    }

    #[test]
    fn stationary_schedule_never_advances() {
        let s = DriftSchedule::stationary();
        assert_eq!(s.concept_at(1_000_000), (0, 0.0));
    }

    #[test]
    fn sudden_concept_switch_changes_labeling() {
        // Two Agrawal concepts with identical seeds: features identical,
        // labels diverge after the drift position.
        let c0 = Box::new(AgrawalGenerator::new(0, 4, 5));
        let c1 = Box::new(AgrawalGenerator::new(5, 4, 5));
        let schedule = DriftSchedule {
            events: vec![DriftEvent { position: 500, width: 0, kind: DriftKind::Sudden }],
        };
        let mut stream = ConceptSequenceStream::new(vec![c0, c1], schedule, 1);
        let sample = stream.take_instances(1000);

        // Reference labels from a pure concept-0 stream.
        let mut reference = AgrawalGenerator::new(0, 4, 5);
        let ref_sample = reference.take_instances(1000);
        let pre_diff = sample[..500]
            .iter()
            .zip(ref_sample[..500].iter())
            .filter(|(a, b)| a.class != b.class)
            .count();
        assert_eq!(pre_diff, 0, "before the drift the stream must equal concept 0");
        // After the drift, labels come from concept 1 (different function) —
        // a noticeable share must differ from what concept 0 would produce.
        let post_diff = sample[500..]
            .iter()
            .zip(ref_sample[500..].iter())
            .filter(|(a, b)| a.class != b.class)
            .count();
        assert!(post_diff > 100, "after a sudden drift labels must change, got {post_diff}");
    }

    #[test]
    fn gradual_transition_mixes_concepts() {
        let c0 = Box::new(RandomRbfGenerator::new(5, 3, 2, 0.0, 11));
        let c1 = Box::new(RandomRbfGenerator::new(5, 3, 2, 0.0, 999));
        let schedule = DriftSchedule {
            events: vec![DriftEvent { position: 1000, width: 800, kind: DriftKind::Gradual }],
        };
        let mut stream = ConceptSequenceStream::new(vec![c0, c1], schedule, 7);
        let sample = stream.take_instances(2000);
        assert_eq!(sample.len(), 2000);
        // Indices are re-stamped by the wrapper.
        assert_eq!(sample[1999].index, 1999);
    }

    #[test]
    fn restart_reproduces_drifting_stream() {
        let c0 = Box::new(AgrawalGenerator::new(1, 3, 2));
        let c1 = Box::new(AgrawalGenerator::new(2, 3, 2));
        let schedule = DriftSchedule::evenly_spaced(1, 600, 200, DriftKind::Gradual);
        let mut stream = ConceptSequenceStream::new(vec![c0, c1], schedule, 3);
        let a = stream.take_instances(600);
        stream.restart();
        let b = stream.take_instances(600);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn mismatched_concepts_rejected() {
        let c0: Box<dyn DataStream + Send> = Box::new(AgrawalGenerator::new(0, 3, 1));
        let c1: Box<dyn DataStream + Send> = Box::new(AgrawalGenerator::new(0, 5, 1));
        ConceptSequenceStream::new(vec![c0, c1], DriftSchedule::stationary(), 0);
    }
}
