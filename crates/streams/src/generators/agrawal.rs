//! Multi-class Agrawal generator.
//!
//! The classical Agrawal generator (Agrawal et al., 1993; as shipped in MOA)
//! draws nine attributes describing a loan applicant — salary, commission,
//! age, education level, car maker, zip code, house value, years owned and
//! loan amount — and labels the instance with one of ten hand-crafted
//! decision functions. The paper's `Aggrawal5/10/20` benchmarks are
//! multi-class variants; we obtain `M` roughly balanced classes by
//! computing the continuous decision margin of the chosen function and
//! splitting it into `M` quantile bands calibrated on a pilot sample at
//! construction time. Concept drift is obtained by switching the decision
//! function (the classical MOA recipe).
//!
//! Feature layout (all numeric, categorical attributes use their index):
//! `[salary, commission, age, elevel, car, zipcode, hvalue, hyears, loan]`,
//! optionally followed by irrelevant noise attributes so the benchmark's
//! feature counts (20/40/80) of Table I are met.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::{class_from_score, quantile_thresholds};
use crate::instance::{Instance, StreamSchema};
use crate::stream::DataStream;

/// Number of distinct Agrawal decision functions available as concepts.
pub const NUM_AGRAWAL_FUNCTIONS: usize = 10;

/// The number of "real" Agrawal attributes before optional padding.
const BASE_ATTRS: usize = 9;

/// Multi-class Agrawal generator.
pub struct AgrawalGenerator {
    schema: StreamSchema,
    function: usize,
    num_classes: usize,
    seed: u64,
    rng: StdRng,
    thresholds: Vec<f64>,
    /// Extra irrelevant attributes appended after the nine Agrawal ones.
    padding: usize,
    counter: u64,
    /// Fraction of labels randomly perturbed (label noise), in `[0, 1)`.
    noise: f64,
}

impl AgrawalGenerator {
    /// Creates a generator using decision `function` (0..10) and `num_classes`
    /// quantile-balanced classes.
    ///
    /// # Panics
    /// Panics if `function >= 10` or `num_classes < 2`.
    pub fn new(function: usize, num_classes: usize, seed: u64) -> Self {
        Self::with_padding(function, num_classes, 0, seed)
    }

    /// Like [`AgrawalGenerator::new`] but appends `padding` irrelevant
    /// uniform attributes so the total feature count matches a benchmark
    /// specification.
    pub fn with_padding(function: usize, num_classes: usize, padding: usize, seed: u64) -> Self {
        assert!(
            function < NUM_AGRAWAL_FUNCTIONS,
            "agrawal function must be in 0..10, got {function}"
        );
        assert!(num_classes >= 2, "need at least two classes");
        let schema = StreamSchema::new(
            format!("agrawal-f{function}-c{num_classes}"),
            BASE_ATTRS + padding,
            num_classes,
        );
        let mut gen = AgrawalGenerator {
            schema,
            function,
            num_classes,
            seed,
            rng: StdRng::seed_from_u64(seed),
            thresholds: Vec::new(),
            padding,
            counter: 0,
            noise: 0.0,
        };
        gen.calibrate();
        gen
    }

    /// Sets the label-noise fraction (share of instances whose label is
    /// replaced by a uniformly random one).
    pub fn with_noise(mut self, noise: f64) -> Self {
        assert!((0.0..1.0).contains(&noise), "noise must be in [0,1), got {noise}");
        self.noise = noise;
        self
    }

    /// The decision function currently in use (the concept id).
    pub fn function(&self) -> usize {
        self.function
    }

    /// Switches to a different decision function — this is a sudden global
    /// concept drift when done mid-stream.
    pub fn set_function(&mut self, function: usize) {
        assert!(function < NUM_AGRAWAL_FUNCTIONS);
        self.function = function;
        self.calibrate();
    }

    /// Calibrates the quantile thresholds of the current function on a pilot
    /// sample drawn from a dedicated RNG (so calibration does not perturb
    /// the instance sequence).
    fn calibrate(&mut self) {
        let mut pilot_rng = StdRng::seed_from_u64(self.seed ^ 0x00c0_ffee);
        let mut scores: Vec<f64> = (0..2000)
            .map(|_| Self::margin(self.function, &Self::draw_attributes(&mut pilot_rng)))
            .collect();
        self.thresholds = quantile_thresholds(&mut scores, self.num_classes);
    }

    /// Draws the nine raw Agrawal attributes.
    fn draw_attributes(rng: &mut StdRng) -> [f64; BASE_ATTRS] {
        let salary = rng.gen_range(20_000.0..150_000.0);
        let commission = if salary >= 75_000.0 { 0.0 } else { rng.gen_range(10_000.0..75_000.0) };
        let age = rng.gen_range(20.0..81.0_f64).floor();
        let elevel = rng.gen_range(0.0..5.0_f64).floor();
        let car = rng.gen_range(1.0..21.0_f64).floor();
        let zipcode = rng.gen_range(0.0..9.0_f64).floor();
        let hvalue = (9.0 - zipcode) * 100_000.0 * rng.gen_range(0.5..1.5);
        let hyears = rng.gen_range(1.0..31.0_f64).floor();
        let loan = rng.gen_range(0.0..500_000.0);
        [salary, commission, age, elevel, car, zipcode, hvalue, hyears, loan]
    }

    /// Continuous decision margin of the chosen Agrawal function. The sign
    /// structure follows the original binary rules; the magnitude preserves
    /// "how deeply" an applicant satisfies the rule so quantile banding
    /// yields meaningful multi-class concepts.
    fn margin(function: usize, a: &[f64; BASE_ATTRS]) -> f64 {
        let [salary, commission, age, elevel, car, zipcode, hvalue, hyears, loan] = *a;
        // Normalization constants keep the terms comparable across functions.
        let s = salary / 1_000.0;
        let c = commission / 1_000.0;
        let h = hvalue / 1_000.0;
        let l = loan / 1_000.0;
        match function {
            0 => {
                // Group A iff age < 40 or age >= 60.
                if age < 40.0 {
                    40.0 - age
                } else if age >= 60.0 {
                    age - 60.0
                } else {
                    -(age - 40.0).min(60.0 - age)
                }
            }
            1 => {
                // Age bands crossed with salary levels.
                if age < 40.0 {
                    s - 100.0 + (40.0 - age)
                } else if age < 60.0 {
                    s - 75.0
                } else {
                    s - 25.0 + (age - 60.0)
                }
            }
            2 => {
                // Education level dominant.
                (elevel - 2.0) * 30.0 + s * 0.2 - 10.0
            }
            3 => {
                // Education and house value.
                (elevel - 2.0) * 25.0 + (h - 300.0) * 0.1
            }
            4 => {
                // Loan burden vs income.
                s + c * 0.5 - l * 0.3 - 20.0
            }
            5 => {
                // Total income thresholded by age band.
                let total = s + c;
                if age < 40.0 {
                    total - 90.0
                } else if age < 60.0 {
                    total - 110.0
                } else {
                    total - 70.0
                }
            }
            6 => {
                // Disposable income: 2/3 salary − loan/5 − 20k.
                0.667 * s - l * 0.2 - 20.0 + 5.0 * (elevel - 2.0)
            }
            7 => {
                // Equity-driven rule.
                0.667 * s - l * 0.2 + 0.05 * h * (hyears / 10.0) - 30.0
            }
            8 => {
                // Commission earners with mid-range houses.
                c * 0.8 + (h - 400.0) * 0.05 - age * 0.3
            }
            9 => {
                // Car/zip interaction plus income.
                (car - 10.0) * 2.0 + (4.0 - zipcode) * 5.0 + s * 0.15 + c * 0.1 - 15.0
            }
            _ => unreachable!("function index validated at construction"),
        }
    }
}

impl DataStream for AgrawalGenerator {
    fn next_instance(&mut self) -> Option<Instance> {
        let attrs = Self::draw_attributes(&mut self.rng);
        let score = Self::margin(self.function, &attrs);
        let mut class = class_from_score(score, &self.thresholds);
        if self.noise > 0.0 && self.rng.gen::<f64>() < self.noise {
            class = self.rng.gen_range(0..self.num_classes);
        }
        let mut features = attrs.to_vec();
        for _ in 0..self.padding {
            features.push(self.rng.gen_range(0.0..1.0));
        }
        let inst = Instance::with_index(features, class, self.counter);
        self.counter += 1;
        Some(inst)
    }

    fn schema(&self) -> &StreamSchema {
        &self.schema
    }

    fn restart(&mut self) {
        self.rng = StdRng::seed_from_u64(self.seed);
        self.counter = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::StreamExt;

    #[test]
    fn produces_requested_shape() {
        let mut g = AgrawalGenerator::with_padding(0, 5, 11, 1);
        let inst = g.next_instance().unwrap();
        assert_eq!(inst.num_features(), 20);
        assert!(inst.class < 5);
        assert_eq!(g.schema().num_features, 20);
    }

    #[test]
    fn different_functions_induce_different_labelings() {
        // Same seed, different decision function ⇒ same features, and the
        // label sequence must differ somewhere (that is what drift means).
        let mut a = AgrawalGenerator::new(0, 5, 5);
        let mut b = AgrawalGenerator::new(6, 5, 5);
        let xa = a.take_instances(500);
        let xb = b.take_instances(500);
        let mut feature_equal = 0;
        let mut label_diff = 0;
        for (ia, ib) in xa.iter().zip(xb.iter()) {
            if ia.features == ib.features {
                feature_equal += 1;
                if ia.class != ib.class {
                    label_diff += 1;
                }
            }
        }
        assert_eq!(feature_equal, 500, "feature sequence must be identical for equal seeds");
        assert!(
            label_diff > 100,
            "switching the function must relabel a large share, got {label_diff}"
        );
    }

    #[test]
    fn set_function_changes_concept_in_place() {
        let mut g = AgrawalGenerator::new(0, 5, 9);
        assert_eq!(g.function(), 0);
        let before: Vec<usize> = g.take_instances(300).iter().map(|i| i.class).collect();
        g.restart();
        g.set_function(4);
        assert_eq!(g.function(), 4);
        let after: Vec<usize> = g.take_instances(300).iter().map(|i| i.class).collect();
        assert_ne!(before, after);
    }

    #[test]
    fn commission_rule_respected() {
        // Commission is zero whenever salary >= 75k (original Agrawal rule).
        let mut g = AgrawalGenerator::new(3, 3, 77);
        for inst in g.take_instances(2000) {
            if inst.features[0] >= 75_000.0 {
                assert_eq!(inst.features[1], 0.0);
            }
        }
    }

    #[test]
    fn label_noise_perturbs_labels() {
        let clean: Vec<usize> =
            AgrawalGenerator::new(1, 4, 123).take_instances(1000).iter().map(|i| i.class).collect();
        let noisy: Vec<usize> = AgrawalGenerator::new(1, 4, 123)
            .with_noise(0.3)
            .take_instances(1000)
            .iter()
            .map(|i| i.class)
            .collect();
        let differing = clean.iter().zip(noisy.iter()).filter(|(a, b)| a != b).count();
        assert!(differing > 100, "noise must change a noticeable share of labels, got {differing}");
    }

    #[test]
    fn all_functions_are_exercisable() {
        for f in 0..NUM_AGRAWAL_FUNCTIONS {
            let mut g = AgrawalGenerator::new(f, 3, 2);
            let sample = g.take_instances(600);
            let mut counts = [0usize; 3];
            for i in &sample {
                counts[i.class] += 1;
            }
            for (c, &count) in counts.iter().enumerate() {
                assert!(count > 60, "function {f} class {c} nearly empty: {count}");
            }
        }
    }

    #[test]
    #[should_panic]
    fn rejects_invalid_function() {
        AgrawalGenerator::new(10, 5, 0);
    }
}
