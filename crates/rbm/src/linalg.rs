//! Dense linear-algebra kernels backing the flat-matrix RBM.
//!
//! Everything in this module operates on **flat row-major** storage: a
//! matrix with `rows × cols` entries keeps element `(r, c)` at index
//! `r * cols + c` of one contiguous `Vec<f64>`. Compared to the seed's
//! `Vec<Vec<f64>>` (one heap allocation per row, a pointer chase per row
//! access) this layout is cache-friendly, allocation-free once sized, and
//! auto-vectorizable: every kernel below keeps its inner loop over
//! contiguous slices so LLVM emits SIMD without any `unsafe` or intrinsics.
//!
//! **Reproducibility contract.** The batched CD-k trainer promises results
//! bitwise-identical to the retained per-instance reference implementation
//! ([`crate::reference`]). Floating-point addition is not associative, so
//! every kernel here fixes its accumulation order to the one the reference
//! uses: [`gemm_acc`] adds rank-1 contributions in ascending inner-dimension
//! order (`c[r][j] += a[r][0]·b[0][j]`, then `a[r][1]·b[1][j]`, …), which is
//! exactly the order of the reference's scalar `act += v[i] * w[i][j]`
//! loops. Blocked variants only tile the *independent* output dimensions
//! (rows and column panels), never the reduction, so tiling cannot change
//! the rounding. The kernels still vectorize because the element-wise
//! accumulation (`axpy`) parallelizes across output columns, not across the
//! reduction.

/// A dense row-major matrix over `f64`.
///
/// Element `(r, c)` lives at `data[r * cols + c]`; each row is one
/// contiguous `cols`-long slice, so row access is a single slice index and
/// row-wise kernels (axpy, sigmoid, softmax) run over contiguous memory.
/// [`DenseMatrix::resize`] re-shapes in place without shrinking the backing
/// allocation, which is what lets the training [`Workspace`](crate::network::Workspace)
/// (`crate::network::Workspace`) reach a zero-allocation steady state: the
/// first mini-batch grows every buffer to its working size and subsequent
/// batches reuse the capacity.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix by evaluating `f(row, col)` in row-major order.
    ///
    /// The row-major evaluation order is part of the contract: the RBM
    /// weight initialization draws its RNG stream in exactly this order, so
    /// it must match the reference implementation's nested
    /// row-outer/column-inner loops.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        DenseMatrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Re-shapes the matrix to `rows × cols`, zero-filling the contents.
    ///
    /// Never releases the backing allocation: growing beyond any previously
    /// seen size allocates once, after which all re-shapes are free. This is
    /// the primitive behind the zero-allocation steady state of the training
    /// workspace.
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Re-shapes the matrix to `rows × cols` **without** zero-filling: the
    /// contents are unspecified (stale values from earlier shapes may
    /// linger). For buffers whose every element is overwritten right after
    /// re-shaping (bias broadcasts, packed inputs, pre-drawn uniforms), this
    /// skips [`DenseMatrix::resize`]'s memset. Same no-shrink capacity
    /// behaviour as `resize`.
    pub fn reshape_uninit(&mut self, rows: usize, cols: usize) {
        let len = rows * cols;
        if self.data.len() < len {
            self.data.resize(len, 0.0);
        } else {
            self.data.truncate(len);
        }
        self.rows = rows;
        self.cols = cols;
    }

    /// Borrows row `r` as a contiguous slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a contiguous slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element access (bounds-checked).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Mutable element access (bounds-checked).
    #[inline]
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }

    /// The whole storage as one flat slice (row-major).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The whole storage as one flat mutable slice (row-major).
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Fills every element with `value`.
    pub fn fill(&mut self, value: f64) {
        self.data.fill(value);
    }

    /// Fills row `r` with `src[r]` (broadcast along columns). This seeds a
    /// **feature-major** activation matrix (layer units × batch) with its
    /// bias vector: every instance (column) starts from the same bias.
    pub fn broadcast_cols(&mut self, src: &[f64]) {
        assert_eq!(src.len(), self.rows, "broadcast length must match row count");
        for (r, &value) in src.iter().enumerate() {
            self.row_mut(r).fill(value);
        }
    }
}

/// `y[j] += alpha * x[j]` over contiguous slices — the vectorizable core of
/// every GEMM/GEMV here. Each output element receives exactly one addend, so
/// the kernel is embarrassingly parallel across `j` and LLVM unrolls it into
/// packed SIMD adds/mults.
#[inline]
pub fn axpy(y: &mut [f64], alpha: f64, x: &[f64]) {
    assert_eq!(y.len(), x.len(), "axpy length mismatch");
    for (yj, &xj) in y.iter_mut().zip(x.iter()) {
        *yj += alpha * xj;
    }
}

/// Sequential dot product. Accumulates in ascending index order (the
/// reference implementation's order); deliberately *not* unrolled into
/// multiple accumulators, which would change the rounding.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    let mut acc = 0.0;
    for (&xi, &yi) in x.iter().zip(y.iter()) {
        acc += xi * yi;
    }
    acc
}

/// Column panel width of the blocked GEMM. 256 doubles (2 KiB per panel
/// row) keeps a few panel rows of `b` resident in L1 while still giving the
/// axpy inner loop long contiguous runs.
const GEMM_PANEL: usize = 256;

/// Blocked GEMM accumulate: `c += a · b` with `a: m×k`, `b: k×n`, `c: m×n`.
///
/// Row-major throughout. The loop nest is panel-of-`n` outer, rows of `c`
/// next, reduction (`k`) innermost-but-one, with the element-wise update
/// over the column panel innermost — i.e. the outer-product formulation of
/// GEMM. The reduction is unrolled four-wide, but each output element still
/// receives its `k` addends **one at a time, in ascending order** (the
/// unrolled body is a chain of separate `t += aᵢ·bᵢⱼ` statements, which the
/// compiler may not reassociate), so the result is bitwise-identical to the
/// naive ordered triple loop while the column loop vectorizes and the
/// per-iteration slicing overhead is amortized — this matters at RBM sizes,
/// where the hidden dimension is often in the single digits.
pub fn gemm_acc(c: &mut DenseMatrix, a: &DenseMatrix, b: &DenseMatrix) {
    assert_eq!(a.cols, b.rows, "gemm inner dimensions must agree");
    assert_eq!(c.rows, a.rows, "gemm output rows must match a");
    assert_eq!(c.cols, b.cols, "gemm output cols must match b");
    let m = c.rows;
    let n = c.cols;
    let k = a.cols;
    let mut j0 = 0;
    while j0 < n {
        let j1 = (j0 + GEMM_PANEL).min(n);
        let width = j1 - j0;
        // Register block of four output rows: one slice of each `b` row per
        // reduction step serves four independent accumulation streams,
        // which amortizes the slicing and gives the column loop ILP even at
        // single-digit widths (RBM hidden/class layers are that narrow).
        let mut r0 = 0;
        while r0 + 4 <= m {
            let (block, _) = c.data[r0 * n..].split_at_mut(4 * n);
            let mut rows = block.chunks_exact_mut(n);
            let c0 = &mut rows.next().unwrap()[j0..j1];
            let c1 = &mut rows.next().unwrap()[j0..j1];
            let c2 = &mut rows.next().unwrap()[j0..j1];
            let c3 = &mut rows.next().unwrap()[j0..j1];
            let (ar0, ar1, ar2, ar3) = (a.row(r0), a.row(r0 + 1), a.row(r0 + 2), a.row(r0 + 3));
            // All five slices have length exactly `width`, so the indexed
            // loop below carries no bounds checks after LLVM folds them.
            let (c0, c1, c2, c3) =
                (&mut c0[..width], &mut c1[..width], &mut c2[..width], &mut c3[..width]);
            for i in 0..k {
                let b_row = &b.data[i * n + j0..i * n + j1][..width];
                let (a0, a1, a2, a3) = (ar0[i], ar1[i], ar2[i], ar3[i]);
                for j in 0..width {
                    let bj = b_row[j];
                    c0[j] += a0 * bj;
                    c1[j] += a1 * bj;
                    c2[j] += a2 * bj;
                    c3[j] += a3 * bj;
                }
            }
            r0 += 4;
        }
        for r in r0..m {
            let a_row = a.row(r);
            let c_row = &mut c.data[r * n + j0..r * n + j1];
            for (i, &a_ri) in a_row.iter().enumerate() {
                let b_row = &b.data[i * n + j0..i * n + j1];
                axpy(c_row, a_ri, b_row);
            }
        }
        j0 = j1;
    }
}

/// Fused double-GEMM accumulate: `c += a1 · b1 + a2 · b2` with
/// `a1: m×k1`, `b1: k1×n`, `a2: m×k2`, `b2: k2×n`, `c: m×n`.
///
/// Exactly [`gemm_acc`] run twice — all `a1·b1` addends land before any
/// `a2·b2` addend, each in ascending reduction order, matching the
/// reference's "visible terms, then class terms" activation sums — but each
/// output row block is sliced and traversed once instead of twice. This is
/// the hidden-layer activation kernel: `h = σ(b ⊕ v·w + z·uᵀ)` feeds both
/// phases of CD-k.
pub fn gemm2_acc(
    c: &mut DenseMatrix,
    a1: &DenseMatrix,
    b1: &DenseMatrix,
    a2: &DenseMatrix,
    b2: &DenseMatrix,
) {
    assert_eq!(a1.cols, b1.rows, "gemm2 first inner dimensions must agree");
    assert_eq!(a2.cols, b2.rows, "gemm2 second inner dimensions must agree");
    assert_eq!(c.rows, a1.rows, "gemm2 output rows must match a1");
    assert_eq!(c.rows, a2.rows, "gemm2 output rows must match a2");
    assert_eq!(c.cols, b1.cols, "gemm2 output cols must match b1");
    assert_eq!(c.cols, b2.cols, "gemm2 output cols must match b2");
    let m = c.rows;
    let n = c.cols;
    let (k1, k2) = (a1.cols, a2.cols);
    let mut j0 = 0;
    while j0 < n {
        let j1 = (j0 + GEMM_PANEL).min(n);
        let width = j1 - j0;
        let mut r0 = 0;
        while r0 + 4 <= m {
            let (block, _) = c.data[r0 * n..].split_at_mut(4 * n);
            let mut rows = block.chunks_exact_mut(n);
            let c0 = &mut rows.next().unwrap()[j0..j1];
            let c1 = &mut rows.next().unwrap()[j0..j1];
            let c2 = &mut rows.next().unwrap()[j0..j1];
            let c3 = &mut rows.next().unwrap()[j0..j1];
            let (c0, c1, c2, c3) =
                (&mut c0[..width], &mut c1[..width], &mut c2[..width], &mut c3[..width]);
            for (a, b, k) in [(a1, b1, k1), (a2, b2, k2)] {
                let (ar0, ar1, ar2, ar3) = (a.row(r0), a.row(r0 + 1), a.row(r0 + 2), a.row(r0 + 3));
                for i in 0..k {
                    let b_row = &b.data[i * n + j0..i * n + j1][..width];
                    let (a0, a1, a2, a3) = (ar0[i], ar1[i], ar2[i], ar3[i]);
                    for j in 0..width {
                        let bj = b_row[j];
                        c0[j] += a0 * bj;
                        c1[j] += a1 * bj;
                        c2[j] += a2 * bj;
                        c3[j] += a3 * bj;
                    }
                }
            }
            r0 += 4;
        }
        for r in r0..m {
            let c_row = &mut c.data[r * n + j0..r * n + j1];
            for (a, b) in [(a1, b1), (a2, b2)] {
                for (i, &a_ri) in a.row(r).iter().enumerate() {
                    let b_row = &b.data[i * n + j0..i * n + j1];
                    axpy(c_row, a_ri, b_row);
                }
            }
        }
        j0 = j1;
    }
}

/// GEMV accumulate against a transposed matrix: `y += aᵀ · x` with
/// `a: k×n`, `x: k`, `y: n`.
///
/// Runs as `k` axpys over the rows of `a`, so the memory access is
/// contiguous (no strided column walks) and each `y[j]` accumulates in
/// ascending-`i` order — the reference's `act += v[i] * w[i][j]` order.
pub fn gemv_t_acc(y: &mut [f64], a: &DenseMatrix, x: &[f64]) {
    assert_eq!(x.len(), a.rows, "gemv_t input length must match rows");
    assert_eq!(y.len(), a.cols, "gemv_t output length must match cols");
    for (i, &xi) in x.iter().enumerate() {
        axpy(y, xi, a.row(i));
    }
}

/// Row-dot GEMV accumulate: `y[r] += a.row(r) · x` with `a: m×n`, `x: n`,
/// `y: m`.
///
/// Each output element continues accumulating from its current value, one
/// addend at a time in ascending column order — the order of the
/// reference's `act += h[j] * w[i][j]` loops, so results are
/// bitwise-identical to them. Rows of `a` are contiguous, so the access
/// pattern streams memory even though the reduction itself stays scalar.
pub fn gemv_acc(y: &mut [f64], a: &DenseMatrix, x: &[f64]) {
    assert_eq!(y.len(), a.rows, "gemv output length must match rows");
    assert_eq!(x.len(), a.cols, "gemv input length must match cols");
    for (r, yr) in y.iter_mut().enumerate() {
        let mut acc = *yr;
        for (&av, &xv) in a.row(r).iter().zip(x.iter()) {
            acc += av * xv;
        }
        *yr = acc;
    }
}

/// Writes the transpose of `src` into `dst` (re-shaping `dst` as needed).
///
/// The flat RBM stores `w: V×H` and `u: H×Z` row-major and refreshes the
/// transposes `wᵀ: H×V`, `uᵀ: Z×H` once per mini-batch, so that *every*
/// GEMM in the batched CD-k can run in the contiguous axpy form above —
/// an O(V·H) copy buys O(N·V·H) worth of contiguous accesses.
pub fn transpose_into(dst: &mut DenseMatrix, src: &DenseMatrix) {
    dst.resize(src.cols, src.rows);
    for r in 0..src.rows {
        let row = &src.data[r * src.cols..(r + 1) * src.cols];
        for (c, &v) in row.iter().enumerate() {
            dst.data[c * src.rows + r] = v;
        }
    }
}

/// Fused logistic sigmoid: `x[j] ← 1 / (1 + e^(−x[j]))` in place.
pub fn sigmoid_in_place(x: &mut [f64]) {
    for v in x.iter_mut() {
        *v = 1.0 / (1.0 + (-*v).exp());
    }
}

/// In-place numerically stable softmax: replaces raw scores with the
/// softmax distribution (uniform for degenerate inputs) without any
/// allocation.
///
/// This is the one shared softmax of the workspace: the RBM's class-layer
/// reconstruction (Eq. 12) and every classifier in `rbm-im-classifiers`
/// (which re-exports it) use this exact implementation, so the two can
/// never drift apart numerically.
pub fn softmax_in_place(scores: &mut [f64]) {
    if scores.is_empty() {
        return;
    }
    let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    for s in scores.iter_mut() {
        *s = (*s - max).exp();
    }
    let total: f64 = scores.iter().sum();
    if total <= 0.0 || !total.is_finite() {
        let uniform = 1.0 / scores.len() as f64;
        scores.fill(uniform);
        return;
    }
    for s in scores.iter_mut() {
        *s /= total;
    }
}

/// Batched CD-k weight gradient over **feature-major** activations:
/// `d[i][j] += Σₙ weights[n] · (x0[i][n]·h0[j][n] − xk[i][n]·hk[j][n])`
/// with `d: V×H`, `x0`/`xk`: `V×N`, `h0`/`hk`: `H×N`.
///
/// Each gradient element is a weighted batch reduction of the fused
/// positive-minus-negative outer product. The reduction runs over `n` in
/// ascending order with each addend kept as the reference's exact
/// expression `w·(x0·h0 − xk·hk)` (no factoring of `w·x0` out, which would
/// re-associate the multiplies), so the result is bitwise-identical to the
/// per-instance loop. Four `j` columns are interleaved per pass to give the
/// serial reduction chains ILP, and all operand rows are contiguous.
pub fn cdk_weight_gradient(
    d: &mut DenseMatrix,
    weights: &[f64],
    x0: &DenseMatrix,
    h0: &DenseMatrix,
    xk: &DenseMatrix,
    hk: &DenseMatrix,
) {
    let batch = weights.len();
    assert_eq!(x0.cols, batch, "x0 batch mismatch");
    assert_eq!(xk.cols, batch, "xk batch mismatch");
    assert_eq!(h0.cols, batch, "h0 batch mismatch");
    assert_eq!(hk.cols, batch, "hk batch mismatch");
    assert_eq!(d.rows, x0.rows, "gradient rows must match x height");
    assert_eq!(d.cols, h0.rows, "gradient cols must match h height");
    let v = d.rows;
    let h = d.cols;
    let weights = &weights[..batch];
    for i in 0..v {
        let x0r = &x0.row(i)[..batch];
        let xkr = &xk.row(i)[..batch];
        let d_row = &mut d.data[i * h..(i + 1) * h];
        let mut j = 0;
        while j + 4 <= h {
            let (h0a, h0b, h0c, h0d) = (
                &h0.row(j)[..batch],
                &h0.row(j + 1)[..batch],
                &h0.row(j + 2)[..batch],
                &h0.row(j + 3)[..batch],
            );
            let (hka, hkb, hkc, hkd) = (
                &hk.row(j)[..batch],
                &hk.row(j + 1)[..batch],
                &hk.row(j + 2)[..batch],
                &hk.row(j + 3)[..batch],
            );
            let (mut s0, mut s1, mut s2, mut s3) =
                (d_row[j], d_row[j + 1], d_row[j + 2], d_row[j + 3]);
            for n in 0..batch {
                let (w, p, q) = (weights[n], x0r[n], xkr[n]);
                s0 += w * (p * h0a[n] - q * hka[n]);
                s1 += w * (p * h0b[n] - q * hkb[n]);
                s2 += w * (p * h0c[n] - q * hkc[n]);
                s3 += w * (p * h0d[n] - q * hkd[n]);
            }
            d_row[j] = s0;
            d_row[j + 1] = s1;
            d_row[j + 2] = s2;
            d_row[j + 3] = s3;
            j += 4;
        }
        while j < h {
            let h0r = &h0.row(j)[..batch];
            let hkr = &hk.row(j)[..batch];
            let mut acc = d_row[j];
            for n in 0..batch {
                acc += weights[n] * (x0r[n] * h0r[n] - xkr[n] * hkr[n]);
            }
            d_row[j] = acc;
            j += 1;
        }
    }
}

/// Batched CD-k bias gradient over **feature-major** activations:
/// `d[i] += Σₙ weights[n] · (x0[i][n] − xk[i][n])`, reduced in ascending
/// instance order. Two unit rows are interleaved per pass so the serial
/// reduction chains overlap.
pub fn cdk_bias_gradient(d: &mut [f64], weights: &[f64], x0: &DenseMatrix, xk: &DenseMatrix) {
    let batch = weights.len();
    assert_eq!(x0.cols, batch, "x0 batch mismatch");
    assert_eq!(xk.cols, batch, "xk batch mismatch");
    assert_eq!(d.len(), x0.rows, "bias gradient length mismatch");
    let weights = &weights[..batch];
    let mut i = 0;
    while i + 2 <= d.len() {
        let x0a = &x0.row(i)[..batch];
        let x0b = &x0.row(i + 1)[..batch];
        let xka = &xk.row(i)[..batch];
        let xkb = &xk.row(i + 1)[..batch];
        let (mut s0, mut s1) = (d[i], d[i + 1]);
        for n in 0..batch {
            let w = weights[n];
            s0 += w * (x0a[n] - xka[n]);
            s1 += w * (x0b[n] - xkb[n]);
        }
        d[i] = s0;
        d[i + 1] = s1;
        i += 2;
    }
    if i < d.len() {
        let x0r = &x0.row(i)[..batch];
        let xkr = &xk.row(i)[..batch];
        let mut acc = d[i];
        for n in 0..batch {
            acc += weights[n] * (x0r[n] - xkr[n]);
        }
        d[i] = acc;
    }
}

/// In-place column softmax over a **feature-major** matrix (`Z` class rows
/// × `N` instance columns): each column is replaced by its stable softmax,
/// with exactly the op order of [`softmax_in_place`] (max-subtract, exp,
/// ascending-order sum, divide; uniform for degenerate columns).
pub fn softmax_cols_in_place(m: &mut DenseMatrix) {
    let (z, n) = (m.rows, m.cols);
    if z == 0 {
        return;
    }
    for col in 0..n {
        let mut max = f64::NEG_INFINITY;
        for k in 0..z {
            max = f64::max(max, m.data[k * n + col]);
        }
        let mut total = 0.0;
        for k in 0..z {
            let e = (m.data[k * n + col] - max).exp();
            m.data[k * n + col] = e;
            total += e;
        }
        if total <= 0.0 || !total.is_finite() {
            let uniform = 1.0 / z as f64;
            for k in 0..z {
                m.data[k * n + col] = uniform;
            }
            continue;
        }
        for k in 0..z {
            m.data[k * n + col] /= total;
        }
    }
}

/// Fused momentum + weight-decay parameter update over flat storage:
/// `vel ← momentum·vel + lr·(grad − decay·param)`, `param += vel`.
///
/// One pass over three contiguous slices; vectorizes across elements.
pub fn momentum_update(
    param: &mut [f64],
    vel: &mut [f64],
    grad: &[f64],
    lr: f64,
    momentum: f64,
    decay: f64,
) {
    assert_eq!(param.len(), vel.len(), "momentum update length mismatch");
    assert_eq!(param.len(), grad.len(), "momentum update length mismatch");
    for ((p, v), &g) in param.iter_mut().zip(vel.iter_mut()).zip(grad.iter()) {
        *v = momentum * *v + lr * (g - decay * *p);
        *p += *v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_matrix_layout_is_row_major() {
        let m = DenseMatrix::from_fn(3, 4, |r, c| (r * 10 + c) as f64);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0, 13.0]);
        assert_eq!(m.get(2, 3), 23.0);
        assert_eq!(m.as_slice()[4], 10.0);
    }

    #[test]
    fn resize_keeps_capacity_and_zeroes() {
        let mut m = DenseMatrix::zeros(4, 4);
        m.fill(7.0);
        let ptr = m.as_slice().as_ptr();
        m.resize(2, 3);
        assert_eq!(m.as_slice(), &[0.0; 6]);
        m.resize(4, 4);
        assert_eq!(m.as_slice().as_ptr(), ptr, "re-growing within capacity must not reallocate");
    }

    #[test]
    fn gemm_matches_naive_triple_loop_bitwise() {
        let a = DenseMatrix::from_fn(5, 7, |r, c| ((r * 31 + c * 17) % 13) as f64 * 0.37 - 2.0);
        let b = DenseMatrix::from_fn(7, 9, |r, c| ((r * 5 + c * 3) % 11) as f64 * 0.21 - 1.0);
        let mut c = DenseMatrix::from_fn(5, 9, |r, c| (r + c) as f64 * 0.01);
        let mut naive = c.clone();
        gemm_acc(&mut c, &a, &b);
        for r in 0..5 {
            for j in 0..9 {
                let mut acc = naive.get(r, j);
                for i in 0..7 {
                    acc += a.get(r, i) * b.get(i, j);
                }
                *naive.get_mut(r, j) = acc;
            }
        }
        assert_eq!(c, naive, "blocked gemm must be bitwise-identical to the ordered triple loop");
    }

    #[test]
    fn gemm_blocking_covers_wide_outputs() {
        // Wider than one column panel so the j0 loop takes several steps.
        let n = GEMM_PANEL + 37;
        let a = DenseMatrix::from_fn(2, 3, |r, c| (r + c) as f64);
        let b = DenseMatrix::from_fn(3, n, |r, c| ((r + c) % 7) as f64);
        let mut c = DenseMatrix::zeros(2, n);
        gemm_acc(&mut c, &a, &b);
        for r in 0..2 {
            for j in 0..n {
                let expect: f64 = (0..3).map(|i| a.get(r, i) * b.get(i, j)).sum();
                assert!((c.get(r, j) - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn gemv_t_matches_per_column_dots() {
        let a = DenseMatrix::from_fn(4, 6, |r, c| (r * 6 + c) as f64 * 0.1);
        let x = [1.0, -2.0, 0.5, 3.0];
        let mut y = vec![0.25; 6];
        gemv_t_acc(&mut y, &a, &x);
        for (j, &yj) in y.iter().enumerate() {
            let mut expect = 0.25;
            for (i, &xi) in x.iter().enumerate() {
                expect += a.get(i, j) * xi;
            }
            assert_eq!(yj, expect);
        }
    }

    #[test]
    fn transpose_round_trips() {
        let m = DenseMatrix::from_fn(3, 5, |r, c| (r * 5 + c) as f64);
        let mut t = DenseMatrix::default();
        transpose_into(&mut t, &m);
        assert_eq!(t.rows(), 5);
        assert_eq!(t.cols(), 3);
        let mut back = DenseMatrix::default();
        transpose_into(&mut back, &t);
        assert_eq!(back, m);
    }

    #[test]
    fn softmax_is_stable_and_normalized() {
        let mut s = vec![1000.0, 1001.0, 999.0];
        softmax_in_place(&mut s);
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(s[1] > s[0] && s[0] > s[2]);
        let mut degenerate = vec![f64::NEG_INFINITY, f64::NEG_INFINITY];
        softmax_in_place(&mut degenerate);
        assert_eq!(degenerate, vec![0.5, 0.5]);
        let mut empty: Vec<f64> = vec![];
        softmax_in_place(&mut empty);
        assert!(empty.is_empty());
    }

    #[test]
    fn momentum_update_applies_decay_and_velocity() {
        let mut p = [1.0, -1.0];
        let mut v = [0.5, 0.0];
        let g = [0.1, 0.2];
        momentum_update(&mut p, &mut v, &g, 0.1, 0.9, 0.01);
        let v0 = 0.9 * 0.5 + 0.1 * (0.1 - 0.01 * 1.0);
        let v1 = 0.1 * (0.2 + 0.01);
        assert_eq!(v, [v0, v1]);
        assert_eq!(p, [1.0 + v0, -1.0 + v1]);
    }

    #[test]
    fn dot_is_an_ordered_sum() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }
}
