//! Serving configuration.

use rbm_im_harness::pipeline::RunConfig;
use std::time::Duration;

/// Configuration of a [`ServerHandle`](crate::server::ServerHandle).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Number of detector shards (dedicated worker threads). Stream ids are
    /// hashed onto shards by the [`StreamRouter`](crate::router::StreamRouter);
    /// every stream's whole pipeline state lives on exactly one shard, so
    /// shards share nothing and never lock.
    pub num_shards: usize,
    /// Bound of each shard's ingest channel, in messages (an ingest message
    /// carries one instance or one client-side micro-batch). When a shard
    /// falls behind, `try_ingest` fails fast with
    /// [`IngestError::Full`](crate::server::IngestError::Full) instead of
    /// queueing unboundedly — backpressure is explicit and the caller
    /// chooses between dropping, retrying and blocking.
    pub queue_capacity: usize,
    /// Default per-stream pipeline configuration applied by
    /// [`ServerHandle::attach`](crate::server::ServerHandle::attach)
    /// (`attach_with` overrides it per stream). The default uses
    /// `detector_batch = 50` — RBM-IM's natural mini-batch — so the RBM hot
    /// path always runs the batched CD-k kernels, and emits a metric
    /// snapshot event every 1000 instances per stream.
    pub run: RunConfig,
    /// When `true` (the default), a stream attaching with a detector spec
    /// whose factory accepts a `seed` parameter — and that does not pin one
    /// explicitly — gets `seed = derive_stream_seed(base_seed, stream_id)`
    /// injected. Streams are thereby decorrelated from each other yet fully
    /// reproducible: results depend only on `(base_seed, stream_id, spec,
    /// ingest order)`, never on shard count, shard assignment or ingest
    /// interleaving across streams.
    pub deterministic_seeding: bool,
    /// Base seed of deterministic per-stream seeding (see
    /// [`ServeConfig::deterministic_seeding`]).
    pub base_seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            num_shards: 4,
            queue_capacity: 1024,
            run: RunConfig {
                detector_batch: 50,
                snapshot_every: Some(1_000),
                ..RunConfig::default()
            },
            deterministic_seeding: true,
            base_seed: 42,
        }
    }
}

/// When the [`Supervisor`](crate::supervisor::Supervisor) evicts idle
/// streams' in-memory pipeline state to their binary checkpoint (the
/// **cold tier** — see `ARCHITECTURE.md` §9).
///
/// Two independent triggers, either of which may be disabled:
///
/// * **idle age** — a hot stream that has not ingested for
///   [`TierPolicy::idle_after`] is evicted regardless of budget;
/// * **memory budget** — whenever more than
///   [`TierPolicy::max_hot_streams`] streams are hot, the least-recently
///   active ones are *urgently* evicted until the fleet fits, however
///   recently they stepped.
///
/// Hibernation is purely a residency decision: a hibernated stream stays
/// attached, transparently rehydrates on its next ingest / detach, and a
/// fleet run under any `TierPolicy` stays **bitwise identical** to the
/// same fleet always-hot and to the sequential pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierPolicy {
    /// Evict hot streams idle for at least this long (`None` disables the
    /// idle-age trigger; budget pressure still evicts).
    pub idle_after: Option<Duration>,
    /// Hard cap on simultaneously hot streams across the fleet (`None`
    /// disables budget eviction). Derive it from a byte budget with
    /// [`TierPolicy::budget_bytes`].
    pub max_hot_streams: Option<usize>,
    /// Evictions + cold-memory→disk demotions performed per supervisor
    /// tick: each one costs a checkpoint encode + spill (~1 ms at the
    /// benchmarked 47 KB state), so huge fleets drain toward cold over a
    /// few ticks instead of stalling one tick for seconds.
    pub max_demotions_per_tick: usize,
}

impl TierPolicy {
    /// Engineering estimate of one hot stream's resident footprint
    /// (pipeline state + metric windows + amortized workspace scratch),
    /// anchored on the ~47 KB binary-checkpoint size measured in
    /// `BENCH_checkpoint.json` with headroom for the live (un-packed)
    /// representation. Used by [`TierPolicy::budget_bytes`].
    pub const APPROX_HOT_STREAM_BYTES: u64 = 96 * 1024;

    /// Idle-age-only policy: evict after `idle_after` without a hot cap.
    pub fn idle(idle_after: Duration) -> Self {
        TierPolicy { idle_after: Some(idle_after), ..Self::default() }
    }

    /// Budget-driven policy: size the hot tier to roughly `bytes` of
    /// resident stream state (`max_hot_streams = bytes /`
    /// [`APPROX_HOT_STREAM_BYTES`](Self::APPROX_HOT_STREAM_BYTES), at
    /// least 1), with the default idle-age trigger on top.
    pub fn budget_bytes(bytes: u64) -> Self {
        let max_hot = (bytes / Self::APPROX_HOT_STREAM_BYTES).max(1) as usize;
        TierPolicy { max_hot_streams: Some(max_hot), ..Self::default() }
    }

    /// Replaces the hot-stream cap.
    pub fn with_max_hot_streams(mut self, max_hot_streams: usize) -> Self {
        self.max_hot_streams = Some(max_hot_streams);
        self
    }

    /// Replaces the per-tick demotion cap.
    pub fn with_max_demotions_per_tick(mut self, cap: usize) -> Self {
        self.max_demotions_per_tick = cap.max(1);
        self
    }
}

impl Default for TierPolicy {
    fn default() -> Self {
        TierPolicy {
            idle_after: Some(Duration::from_secs(30)),
            max_hot_streams: None,
            max_demotions_per_tick: 1024,
        }
    }
}
