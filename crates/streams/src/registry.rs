//! Benchmark registry: the 24 streams of Table I.
//!
//! The registry provides (a) the published metadata of every benchmark and
//! (b) builders that assemble the corresponding stream from generators,
//! drift operators and imbalance operators. The 12 artificial benchmarks are
//! generated exactly as described in the paper (generator family × class
//! count, drift type, maximum IR); the 12 real-world benchmarks are built by
//! the synthetic substitutes of [`crate::realworld`].

use crate::drift::{ConceptSequenceStream, DriftEvent, DriftKind, DriftSchedule};
use crate::generators::{
    AgrawalGenerator, HyperplaneGenerator, RandomRbfGenerator, RandomTreeGenerator,
};
use crate::imbalance::{ImbalanceProfile, ImbalancedStream};
use crate::realworld::{RealWorldSpec, REAL_WORLD_SPECS};
use crate::stream::{BoundedStream, DataStream};

/// Drift type of a benchmark as listed in Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchmarkDrift {
    /// "yes" — drift present, type unspecified.
    Present,
    /// "unknown".
    Unknown,
    /// Incremental drift (Agrawal family).
    Incremental,
    /// Gradual drift (Hyperplane family).
    Gradual,
    /// Sudden drift (RBF and RandomTree families).
    Sudden,
}

impl BenchmarkDrift {
    /// Table-I style label.
    pub fn label(&self) -> &'static str {
        match self {
            BenchmarkDrift::Present => "yes",
            BenchmarkDrift::Unknown => "unknown",
            BenchmarkDrift::Incremental => "incremental",
            BenchmarkDrift::Gradual => "gradual",
            BenchmarkDrift::Sudden => "sudden",
        }
    }
}

/// Metadata of one benchmark stream (a row of Table I).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkSpec {
    /// Benchmark name as used in the paper.
    pub name: String,
    /// Published instance count.
    pub instances: u64,
    /// Number of features.
    pub features: usize,
    /// Number of classes.
    pub classes: usize,
    /// Maximum imbalance ratio.
    pub ir: f64,
    /// Drift type.
    pub drift: BenchmarkDrift,
    /// Whether the stream is a real-world benchmark (true) or an artificial
    /// generator (false).
    pub real_world: bool,
}

/// The 12 artificial benchmarks of Table I (bottom half).
pub fn artificial_benchmarks() -> Vec<BenchmarkSpec> {
    let mk = |name: &str,
              instances: u64,
              features: usize,
              classes: usize,
              ir: f64,
              drift: BenchmarkDrift| {
        BenchmarkSpec {
            name: name.to_string(),
            instances,
            features,
            classes,
            ir,
            drift,
            real_world: false,
        }
    };
    vec![
        mk("Aggrawal5", 1_000_000, 20, 5, 50.0, BenchmarkDrift::Incremental),
        mk("Aggrawal10", 1_000_000, 40, 10, 80.0, BenchmarkDrift::Incremental),
        mk("Aggrawal20", 2_000_000, 80, 20, 100.0, BenchmarkDrift::Incremental),
        mk("Hyperplane5", 1_000_000, 20, 5, 100.0, BenchmarkDrift::Gradual),
        mk("Hyperplane10", 1_000_000, 40, 10, 200.0, BenchmarkDrift::Gradual),
        mk("Hyperplane20", 2_000_000, 80, 20, 300.0, BenchmarkDrift::Gradual),
        mk("RBF5", 1_000_000, 20, 5, 100.0, BenchmarkDrift::Sudden),
        mk("RBF10", 1_000_000, 40, 10, 200.0, BenchmarkDrift::Sudden),
        mk("RBF20", 2_000_000, 80, 20, 300.0, BenchmarkDrift::Sudden),
        mk("RandomTree5", 1_000_000, 20, 5, 100.0, BenchmarkDrift::Sudden),
        mk("RandomTree10", 1_000_000, 40, 10, 200.0, BenchmarkDrift::Sudden),
        mk("RandomTree20", 2_000_000, 80, 20, 300.0, BenchmarkDrift::Sudden),
    ]
}

/// The 12 real-world benchmarks of Table I (top half), as specs.
pub fn real_world_benchmarks() -> Vec<BenchmarkSpec> {
    REAL_WORLD_SPECS
        .iter()
        .map(|s| BenchmarkSpec {
            name: s.name.to_string(),
            instances: s.instances,
            features: s.features,
            classes: s.classes,
            ir: s.ir,
            drift: if s.known_drift { BenchmarkDrift::Present } else { BenchmarkDrift::Unknown },
            real_world: true,
        })
        .collect()
}

/// All 24 benchmarks, real-world first (Table I order).
pub fn all_benchmarks() -> Vec<BenchmarkSpec> {
    let mut all = real_world_benchmarks();
    all.extend(artificial_benchmarks());
    all
}

/// Configuration for building a benchmark stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BuildConfig {
    /// Reproducibility seed.
    pub seed: u64,
    /// Divisor applied to the published instance count (the default harness
    /// uses 20 so the full Table III run finishes in minutes; use 1 for
    /// paper-scale streams).
    pub scale_divisor: u64,
    /// Number of global drift events injected into artificial streams.
    pub n_drifts: usize,
    /// Whether the artificial streams use a *dynamic* imbalance ratio (the
    /// paper's setting: the ratio both increases and decreases over time).
    pub dynamic_imbalance: bool,
}

impl Default for BuildConfig {
    fn default() -> Self {
        BuildConfig { seed: 42, scale_divisor: 20, n_drifts: 3, dynamic_imbalance: true }
    }
}

impl BenchmarkSpec {
    /// Number of instances the built stream will emit under `config`.
    pub fn scaled_instances(&self, config: &BuildConfig) -> u64 {
        (self.instances / config.scale_divisor.max(1)).max(2_000)
    }

    /// Positions of the injected drift events for artificial streams
    /// (empty for real-world substitutes whose drift positions are defined
    /// by [`RealWorldSpec::build`]).
    pub fn drift_positions(&self, config: &BuildConfig) -> Vec<u64> {
        if self.real_world {
            return Vec::new();
        }
        let length = self.scaled_instances(config);
        (1..=config.n_drifts as u64).map(|k| length * k / (config.n_drifts as u64 + 1)).collect()
    }

    /// Builds the benchmark stream.
    pub fn build(&self, config: &BuildConfig) -> Box<dyn DataStream + Send> {
        if self.real_world {
            let spec = RealWorldSpec::by_name(&self.name).expect("real-world spec must exist");
            return Box::new(spec.build(config.seed, config.scale_divisor));
        }
        let length = self.scaled_instances(config);
        let schedule = DriftSchedule {
            events: self
                .drift_positions(config)
                .into_iter()
                .map(|position| DriftEvent {
                    position,
                    width: (length / 20).max(1),
                    kind: match self.drift {
                        BenchmarkDrift::Incremental => DriftKind::Incremental,
                        BenchmarkDrift::Gradual => DriftKind::Gradual,
                        _ => DriftKind::Sudden,
                    },
                })
                .collect(),
        };
        let n_concepts = config.n_drifts + 1;
        let concepts: Vec<Box<dyn DataStream + Send>> =
            (0..n_concepts).map(|i| self.build_concept(i, config)).collect();
        let drifting = ConceptSequenceStream::new(concepts, schedule, config.seed ^ 0xABCD);
        let profile = self.imbalance_profile(length, config);
        let imbalanced = ImbalancedStream::new(drifting, profile, config.seed ^ 0x9876);
        Box::new(BoundedStream::new(imbalanced, length))
    }

    /// Builds concept number `i` of an artificial benchmark.
    fn build_concept(&self, i: usize, config: &BuildConfig) -> Box<dyn DataStream + Send> {
        let seed = config.seed.wrapping_add(i as u64 * 104_729);
        let family = self.name.to_ascii_lowercase();
        if family.starts_with("aggrawal") || family.starts_with("agrawal") {
            let padding = self.features.saturating_sub(9);
            Box::new(
                AgrawalGenerator::with_padding(i % 10, self.classes, padding, config.seed)
                    .with_noise(0.01),
            )
        } else if family.starts_with("hyperplane") {
            // Same seed for every concept: the hyperplane rotates continuously
            // (gradual drift); concept switches additionally reorient it.
            let mut g = HyperplaneGenerator::new(self.features, self.classes, 0.001, config.seed);
            for _ in 0..i {
                g.reorient();
            }
            Box::new(g)
        } else if family.starts_with("rbf") {
            Box::new(RandomRbfGenerator::new(self.features, self.classes, 3, 0.0, seed))
        } else if family.starts_with("randomtree") {
            Box::new(
                RandomTreeGenerator::new(self.features, self.classes, 5, seed).with_noise(0.01),
            )
        } else {
            panic!("unknown artificial benchmark family: {}", self.name);
        }
    }

    /// Imbalance profile of an artificial benchmark: static geometric at the
    /// published IR, or — when `dynamic_imbalance` is on — a linear shift
    /// from the geometric profile to its reverse, which makes the ratio
    /// decrease to 1 mid-stream and grow back with swapped class roles.
    fn imbalance_profile(&self, length: u64, config: &BuildConfig) -> ImbalanceProfile {
        let base = match ImbalanceProfile::geometric(self.classes, self.ir) {
            ImbalanceProfile::Static(w) => w,
            _ => unreachable!(),
        };
        if config.dynamic_imbalance {
            let mut reversed = base.clone();
            reversed.reverse();
            ImbalanceProfile::LinearShift { start: base, end: reversed, period: length }
        } else {
            ImbalanceProfile::Static(base)
        }
    }
}

/// Looks a benchmark up by name (case-insensitive).
pub fn benchmark_by_name(name: &str) -> Option<BenchmarkSpec> {
    all_benchmarks().into_iter().find(|b| b.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::StreamExt;

    #[test]
    fn registry_has_24_benchmarks_matching_table_one() {
        let all = all_benchmarks();
        assert_eq!(all.len(), 24);
        assert_eq!(all.iter().filter(|b| b.real_world).count(), 12);
        assert_eq!(all.iter().filter(|b| !b.real_world).count(), 12);
        let rbf20 = benchmark_by_name("RBF20").unwrap();
        assert_eq!(rbf20.features, 80);
        assert_eq!(rbf20.classes, 20);
        assert_eq!(rbf20.instances, 2_000_000);
        assert!((rbf20.ir - 300.0).abs() < 1e-9);
        assert_eq!(rbf20.drift, BenchmarkDrift::Sudden);
        assert_eq!(rbf20.drift.label(), "sudden");
    }

    #[test]
    fn drift_positions_are_evenly_spaced() {
        let spec = benchmark_by_name("Aggrawal5").unwrap();
        let config = BuildConfig { scale_divisor: 100, n_drifts: 3, ..Default::default() };
        let positions = spec.drift_positions(&config);
        assert_eq!(positions, vec![2500, 5000, 7500]);
        // Real-world substitutes manage drift internally.
        let real = benchmark_by_name("Poker").unwrap();
        assert!(real.drift_positions(&config).is_empty());
    }

    #[test]
    fn artificial_streams_build_and_match_schema() {
        let config = BuildConfig { scale_divisor: 500, ..Default::default() };
        for name in ["Aggrawal5", "Hyperplane5", "RBF5", "RandomTree5"] {
            let spec = benchmark_by_name(name).unwrap();
            let mut stream = spec.build(&config);
            let sample = stream.take_instances(1500);
            assert!(!sample.is_empty(), "{name}");
            for inst in &sample {
                assert_eq!(inst.num_features(), spec.features, "{name}");
                assert!(inst.class < spec.classes, "{name}");
            }
        }
    }

    #[test]
    fn larger_class_count_streams_build() {
        let config = BuildConfig { scale_divisor: 1000, ..Default::default() };
        for name in ["Aggrawal10", "RBF20"] {
            let spec = benchmark_by_name(name).unwrap();
            let mut stream = spec.build(&config);
            let sample = stream.take_instances(1000);
            assert!(!sample.is_empty(), "{name}");
            assert_eq!(sample[0].num_features(), spec.features);
        }
    }

    #[test]
    fn real_world_benchmark_builds_through_registry() {
        let spec = benchmark_by_name("electricity").unwrap();
        let config = BuildConfig { scale_divisor: 10, ..Default::default() };
        let mut stream = spec.build(&config);
        let sample = stream.take_instances(2000);
        assert_eq!(sample.len(), 2000);
        assert_eq!(sample[0].num_features(), 8);
    }

    #[test]
    fn dynamic_imbalance_swaps_roles_over_the_stream() {
        let spec = benchmark_by_name("RBF5").unwrap();
        let config =
            BuildConfig { scale_divisor: 200, dynamic_imbalance: true, n_drifts: 1, seed: 5 };
        let mut stream = spec.build(&config);
        let length = spec.scaled_instances(&config) as usize;
        let sample = stream.take_instances(length);
        let majority_of = |slice: &[crate::instance::Instance]| -> usize {
            let mut counts = [0usize; 5];
            for i in slice {
                counts[i.class] += 1;
            }
            counts.iter().enumerate().max_by_key(|(_, &c)| c).map(|(i, _)| i).unwrap()
        };
        let early = majority_of(&sample[..length / 4]);
        let late = majority_of(&sample[3 * length / 4..]);
        assert_ne!(early, late, "dynamic imbalance must change the majority class");
    }

    #[test]
    fn deterministic_given_seed() {
        let spec = benchmark_by_name("RandomTree5").unwrap();
        let config = BuildConfig { scale_divisor: 500, ..Default::default() };
        let mut a = spec.build(&config);
        let mut b = spec.build(&config);
        assert_eq!(a.take_instances(500), b.take_instances(500));
    }

    #[test]
    fn unknown_benchmark_returns_none() {
        assert!(benchmark_by_name("no-such-stream").is_none());
    }
}
