//! Integration suite of the tiered stream state plane (`ARCHITECTURE.md`
//! §9): manual [`ServerHandle::hibernate_stream`], supervisor-driven
//! [`TierPolicy`] eviction, and the interleavings the tier machinery must
//! survive — hibernation racing live resizes, urgent spills landing the
//! same tick as an eviction, detach of a cold stream.
//!
//! The load-bearing property mirrors the supervisor suite: tiering is
//! **invisible in the results**. However often a stream bounces between
//! hot and cold, its drift offsets and prequential metrics stay
//! bitwise-identical to an always-hot fleet and to a sequential
//! [`PipelineBuilder`] run. (`RBM_HIBERNATE=on` additionally forces every
//! existing serving/resharding/supervisor test through the thrash path in
//! CI.)

use proptest::prelude::*;
use rbm_im_harness::pipeline::{PipelineBuilder, RunConfig, RunResult};
use rbm_im_harness::registry::{DetectorRegistry, DetectorSpec};
use rbm_im_obs::{MetricId, MetricsSnapshot};
use rbm_im_serve::{
    deterministic_spec, CheckpointPolicy, HibernateOutcome, IngestError, ResizeConfig, ServeConfig,
    ServeError, ServeEventKind, ServerHandle, SnapshotSink, StreamClient, Supervisor,
    SupervisorConfig, TierKind, TierPolicy,
};
use rbm_im_streams::generators::RandomRbfGenerator;
use rbm_im_streams::{DataStream, Instance, ReplayStream, StreamExt, StreamSchema};
use std::fs;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// A unique scratch directory for spills.
fn scratch(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rbm-hibernate-{label}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A recorded drifting stream: RBF concept A, then a regenerated concept B.
fn record_drifting_stream(
    seed: u64,
    drift_at: usize,
    total: usize,
) -> (StreamSchema, Vec<Instance>) {
    let mut gen = RandomRbfGenerator::new(8, 4, 2, 0.0, seed);
    let schema = gen.schema().clone();
    let mut instances = gen.take_instances(drift_at);
    gen.regenerate();
    instances.extend(gen.take_instances(total - drift_at));
    (schema, instances)
}

struct Feed {
    id: String,
    schema: StreamSchema,
    instances: Vec<Instance>,
    spec: DetectorSpec,
}

/// A fleet mixing trainable RBM-IM variants with a classic detector.
fn fleet(count: usize, total: usize) -> Vec<Feed> {
    let specs = [
        "rbm(mini_batch=25, warmup=4, persistence=1)",
        "adwin(delta=0.01)",
        "rbm-im(minibatch=25, hidden=8, warmup=4, persistence=1)",
    ];
    (0..count)
        .map(|i| {
            let (schema, instances) = record_drifting_stream(900 + i as u64, total / 2, total);
            Feed {
                id: format!("feed-{i:02}"),
                schema,
                instances,
                spec: DetectorSpec::parse(specs[i % specs.len()]).unwrap(),
            }
        })
        .collect()
}

fn run_config() -> RunConfig {
    RunConfig { metric_window: 500, detector_batch: 50, ..Default::default() }
}

/// Sequential ground truth over the same instances, using the effective
/// (seed-injected) spec the server builds.
fn sequential_baseline(feed: &Feed, run: RunConfig, base_seed: u64) -> RunResult {
    let spec = deterministic_spec(DetectorRegistry::global(), base_seed, &feed.id, &feed.spec);
    PipelineBuilder::new()
        .stream(ReplayStream::new(feed.schema.clone(), feed.instances.clone()))
        .stream_label(feed.id.clone())
        .detector_spec(spec)
        .config(run)
        .run()
        .unwrap()
}

fn assert_results_match(context: &str, served: &RunResult, sequential: &RunResult) {
    assert_eq!(served.detections, sequential.detections, "{context}: drift offsets");
    assert_eq!(served.instances, sequential.instances, "{context}: instance count");
    assert_eq!(served.pm_auc, sequential.pm_auc, "{context}: pmAUC");
    assert_eq!(served.pm_gmean, sequential.pm_gmean, "{context}: pmGM");
    assert_eq!(served.accuracy, sequential.accuracy, "{context}: accuracy");
    assert_eq!(served.kappa, sequential.kappa, "{context}: kappa");
}

/// This suite drives tier transitions *explicitly* and pins their exact
/// outcomes — under `RBM_HIBERNATE` forced mode (which hibernates after
/// every message, so every stream is already cold at every assertion
/// point) those pins are meaningless. Forced mode exists to thrash the
/// serving/resharding/supervisor suites; skip here.
fn skip_under_forced_hibernation() -> bool {
    let forced = std::env::var("RBM_HIBERNATE").is_ok();
    if forced {
        eprintln!("skipping: RBM_HIBERNATE forced mode pre-empts explicit tier transitions");
    }
    forced
}

/// Looks up one labeled gauge in a metrics snapshot.
fn gauge(snapshot: &MetricsSnapshot, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
    let id = MetricId::new(name, labels);
    snapshot.gauges.iter().find(|(i, _)| *i == id).map(|(_, v)| *v)
}

/// Looks up one labeled counter in a metrics snapshot.
fn counter(snapshot: &MetricsSnapshot, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
    let id = MetricId::new(name, labels);
    snapshot.counters.iter().find(|(i, _)| *i == id).map(|(_, v)| *v)
}

/// Blocking batched ingest with backpressure retry.
fn ingest_all(client: &StreamClient, mut batch: Vec<Instance>) {
    loop {
        match client.try_ingest_batch(batch) {
            Ok(()) => return,
            Err(IngestError::Full(rejected)) => {
                batch = rejected;
                std::thread::yield_now();
            }
            Err(IngestError::Closed(_)) => panic!("shard closed during ingest"),
        }
    }
}

/// The manual tier API end to end: a dirty eviction (no background spill
/// to reuse) parks the stream as in-memory checkpoint bytes, tier
/// accounting (scan, health, gauges) tracks it, checkpointing a cold
/// stream decodes the parked bytes **without** rehydrating, re-hibernation
/// is an idempotent `AlreadyCold`, and detaching a cold stream rehydrates
/// once and returns the bitwise-correct final `RunResult`.
#[test]
fn manual_hibernate_cold_checkpoint_and_detach_lifecycle() {
    if skip_under_forced_hibernation() {
        return;
    }
    let feeds = fleet(2, 600);
    let run = run_config();
    let server = ServerHandle::start(ServeConfig { num_shards: 2, run, ..Default::default() });
    let events = server.subscribe();
    for feed in &feeds {
        let client = server.attach(&feed.id, feed.schema.clone(), &feed.spec).unwrap();
        ingest_all(&client, feed.instances.clone());
    }
    server.drain();

    // Unknown ids fail loudly, like every other control operation.
    assert!(matches!(
        server.hibernate_stream("nope"),
        Err(ServeError::UnknownStream(id)) if id == "nope"
    ));

    // Dirty eviction: no spill offered, so the shard encodes on demand.
    let cold_id = &feeds[0].id;
    match server.hibernate_stream(cold_id).unwrap() {
        HibernateOutcome::Hibernated { position, clean } => {
            assert_eq!(position, 600);
            assert!(!clean, "no background spill exists, the eviction must encode");
        }
        other => panic!("expected Hibernated, got {other:?}"),
    }

    // Tier accounting: scan rows, health counts, and the fleet gauges all
    // agree (`rbm_serve_streams{tier=…}` is satellite telemetry — not
    // gated on RBM_OBS, tier transitions are cold-path).
    let scan = server.tier_scan();
    assert_eq!(scan.len(), 2, "every attached stream has a tier row");
    let cold_row = scan.iter().find(|e| e.id.as_ref() == cold_id).unwrap();
    assert_eq!(cold_row.tier, TierKind::ColdMemory);
    assert_eq!(cold_row.position, 600);
    assert!(cold_row.resident_bytes > 0, "in-memory checkpoint bytes are accounted");
    let hot_row = scan.iter().find(|e| e.id.as_ref() == feeds[1].id).unwrap();
    assert_eq!(hot_row.tier, TierKind::Hot);
    let health = server.health();
    assert_eq!((health.streams, health.hot_streams, health.cold_streams), (2, 1, 1));
    let snapshot = server.metrics().snapshot();
    assert_eq!(gauge(&snapshot, "rbm_serve_streams", &[("tier", "hot")]), Some(1));
    assert_eq!(gauge(&snapshot, "rbm_serve_streams", &[("tier", "cold")]), Some(1));
    assert!(gauge(&snapshot, "rbm_serve_cold_resident_bytes", &[]).unwrap_or(0) > 0);

    // A cold stream still answers checkpoint requests — from the parked
    // bytes, without waking up.
    let checkpoint = server.checkpoint_stream(cold_id).unwrap();
    assert_eq!(checkpoint.stream, *cold_id);
    assert_eq!(checkpoint.checkpoint.processed().unwrap(), 600);
    let still = server.tier_scan();
    let row = still.iter().find(|e| e.id.as_ref() == cold_id).unwrap();
    assert_eq!(row.tier, TierKind::ColdMemory, "checkpointing must not rehydrate");

    // Idempotent: hibernating a cold stream changes nothing.
    assert_eq!(
        server.hibernate_stream(cold_id).unwrap(),
        HibernateOutcome::AlreadyCold { position: 600 }
    );

    // Detach rehydrates once, transparently, and the result is bitwise.
    let result = server.detach(cold_id).unwrap();
    let sequential = sequential_baseline(&feeds[0], run, ServeConfig::default().base_seed);
    assert_results_match("detach of cold stream", &result, &sequential);
    assert!(server.health().rehydrate_p99_seconds > 0.0, "the rehydrate latency was recorded");

    let mut hibernated = 0usize;
    let mut rehydrated = 0usize;
    for event in events.try_iter() {
        match event.kind {
            ServeEventKind::Hibernated { position, clean } => {
                assert_eq!(
                    (position, clean, event.stream.as_ref()),
                    (600, false, cold_id.as_str())
                );
                hibernated += 1;
            }
            ServeEventKind::Rehydrated { position } => {
                assert_eq!((position, event.stream.as_ref()), (600, cold_id.as_str()));
                rehydrated += 1;
            }
            _ => {}
        }
    }
    assert_eq!((hibernated, rehydrated), (1, 1), "one eviction, one wake-up, on the bus");

    let report = server.shutdown();
    assert_eq!(report.streams.len(), 1, "only the never-hibernated stream remains");
    assert_results_match(
        "always-hot sibling",
        &report.streams[0].result,
        &sequential_baseline(&feeds[1], run, ServeConfig::default().base_seed),
    );
}

/// Transparent rehydrate-on-ingest, thrashed: the stream is evicted after
/// every chunk and woken by the next one, many times across its life —
/// and the final result is still bitwise-identical to a sequential run
/// that never hibernated.
#[test]
fn rehydrate_on_ingest_thrash_is_bitwise_identical() {
    if skip_under_forced_hibernation() {
        return;
    }
    let feeds = fleet(1, 2_000);
    let feed = &feeds[0];
    let run = run_config();
    let server = ServerHandle::start(ServeConfig { num_shards: 1, run, ..Default::default() });
    let client = server.attach(&feed.id, feed.schema.clone(), &feed.spec).unwrap();

    let mut evictions = 0u64;
    for chunk in feed.instances.chunks(250) {
        ingest_all(&client, chunk.to_vec());
        server.drain();
        if matches!(server.hibernate_stream(&feed.id).unwrap(), HibernateOutcome::Hibernated { .. })
        {
            evictions += 1;
        }
    }
    assert_eq!(evictions, 8, "every chunk boundary evicted the stream");

    let snapshot = server.metrics().snapshot();
    assert_eq!(counter(&snapshot, "rbm_serve_hibernations_total", &[("kind", "dirty")]), Some(8));
    assert_eq!(
        counter(&snapshot, "rbm_serve_rehydrations_total", &[("trigger", "ingest")]),
        Some(7),
        "every chunk after the first woke the stream"
    );
    assert!(
        snapshot.merged_histogram("rbm_serve_rehydrate_seconds").count() >= 7,
        "rehydrate latency is always recorded"
    );

    let report = server.shutdown();
    assert_eq!(report.streams.len(), 1);
    let sequential = sequential_baseline(feed, run, ServeConfig::default().base_seed);
    assert!(!sequential.detections.is_empty(), "the baseline must drift");
    assert_results_match("hibernate thrash", &report.streams[0].result, &sequential);
}

/// The supervisor's budget policy bounds the hot tier: a 6-stream fleet
/// under `max_hot_streams = 2` converges to at most 2 hot streams, every
/// eviction reuses the fresh spill the demotion just wrote (clean — no
/// double encode), a pre-existing cold-memory stream is demoted to disk,
/// and the whole fleet finishes bitwise after the cold tail rehydrates on
/// its next ingest.
#[test]
fn supervisor_budget_policy_bounds_the_hot_tier_bitwise() {
    if skip_under_forced_hibernation() {
        return;
    }
    const MAX_HOT: usize = 2;
    let feeds = fleet(6, 2_000);
    let run = run_config();
    let dir = scratch("budget");
    let head = 1_200usize;
    let server = Arc::new(ServerHandle::start(ServeConfig {
        num_shards: 2,
        queue_capacity: 64,
        run,
        ..Default::default()
    }));
    let clients: Vec<StreamClient> = feeds
        .iter()
        .map(|feed| server.attach(&feed.id, feed.schema.clone(), &feed.spec).unwrap())
        .collect();
    for (i, feed) in feeds.iter().enumerate() {
        ingest_all(&clients[i], feed.instances[..head].to_vec());
    }
    server.drain();
    // One stream is already cold with in-memory bytes before the
    // supervisor starts: its only path to disk is the tier pass's
    // demotion.
    assert!(matches!(
        server.hibernate_stream(&feeds[5].id).unwrap(),
        HibernateOutcome::Hibernated { clean: false, .. }
    ));
    // Subscribed after the manual (dirty) eviction: every Hibernated
    // notice seen below comes from the supervisor's tier pass.
    let events = server.subscribe();

    let supervisor = Supervisor::start(
        Arc::clone(&server),
        SnapshotSink::new(&dir).unwrap(),
        SupervisorConfig {
            tick: Duration::from_millis(5),
            checkpoint: Some(CheckpointPolicy {
                every: Duration::from_millis(40),
                jitter: 0.5,
                on_drift: true,
            }),
            resize: None,
            tier: Some(TierPolicy::default().with_max_hot_streams(MAX_HOT)),
        },
    );
    // Let the tier pass drain the idle fleet toward the budget.
    std::thread::sleep(Duration::from_millis(300));

    let scan = server.tier_scan();
    let hot = scan.iter().filter(|e| e.tier == TierKind::Hot).count();
    let cold_disk = scan.iter().filter(|e| e.tier == TierKind::ColdDisk).count();
    assert!(hot <= MAX_HOT, "hot tier over budget: {hot} > {MAX_HOT}");
    assert_eq!(hot + cold_disk, feeds.len(), "every cold stream became disk-authoritative");
    let health = server.health();
    assert_eq!(health.streams, feeds.len());
    assert_eq!(health.hot_streams, hot);
    assert_eq!(health.cold_streams, feeds.len() - hot);

    // Evictions of *idle* streams demote through the checkpoint the tier
    // pass just spilled, so they are always clean — no state re-encoded.
    // (Evictions racing the live ingest below may legitimately be dirty.)
    let mut clean_evictions = 0u64;
    for event in events.try_iter() {
        if let ServeEventKind::Hibernated { clean, .. } = event.kind {
            assert!(clean, "tier-pass evictions of idle streams reuse the fresh spill");
            clean_evictions += 1;
        }
    }
    assert!(
        clean_evictions >= (feeds.len() - 1 - MAX_HOT) as u64,
        "budget pressure must have cleanly evicted the hot overflow: {clean_evictions}"
    );

    // Wake everyone with the tail; the supervisor keeps running (and keeps
    // evicting the idle-again streams) throughout.
    for (i, feed) in feeds.iter().enumerate() {
        ingest_all(&clients[i], feed.instances[head..].to_vec());
    }
    server.drain();
    let report = supervisor.stop();
    assert!(report.errors.is_empty(), "supervisor errors: {:?}", report.errors);
    assert!(
        report.hibernations >= (feeds.len() - MAX_HOT) as u64,
        "budget pressure must have evicted the overflow: {report:?}"
    );
    assert!(report.disk_demotions >= 1, "the pre-cooled stream's bytes must reach disk");
    drop(events);

    let final_report = Arc::try_unwrap(server).expect("supervisor stopped").shutdown();
    assert_eq!(final_report.streams.len(), feeds.len());
    assert_eq!(final_report.panicked_shards, 0);
    for summary in &final_report.streams {
        let feed = feeds.iter().find(|f| f.id == summary.stream).unwrap();
        let sequential = sequential_baseline(feed, run, ServeConfig::default().base_seed);
        assert_results_match(&format!("budget fleet {}", feed.id), &summary.result, &sequential);
    }
    let _ = fs::remove_dir_all(dir);
}

/// A resize policy that demands a different fleet size on every tick.
struct TogglePolicy {
    big: bool,
}

impl rbm_im_serve::ResizePolicy for TogglePolicy {
    fn desired_shards(
        &mut self,
        _loads: &[rbm_im_serve::ShardLoad],
        current: usize,
    ) -> Option<usize> {
        self.big = !self.big;
        Some(if self.big { current + 1 } else { current.saturating_sub(1).max(1) })
    }
}

/// The most hostile interleaving: every tick resizes the fleet (zero
/// cooldown, toggling policy) *and* hibernates every idle hot stream
/// (`idle_after: ZERO`), under concurrent ingest. Cold streams migrate
/// between shards as raw checkpoint bytes without waking; mid-ingest
/// evictions thrash hot streams through the encode/rehydrate cycle; none
/// of it may error or change a bit of the results.
#[test]
fn hibernation_racing_live_resizes_stays_bitwise_and_error_free() {
    if skip_under_forced_hibernation() {
        return;
    }
    let feeds = fleet(4, 2_000);
    let run = run_config();
    let dir = scratch("resize-race");
    let server = Arc::new(ServerHandle::start(ServeConfig {
        num_shards: 2,
        queue_capacity: 64,
        run,
        ..Default::default()
    }));
    let supervisor = Supervisor::start(
        Arc::clone(&server),
        SnapshotSink::new(&dir).unwrap(),
        SupervisorConfig {
            tick: Duration::from_millis(2),
            checkpoint: Some(CheckpointPolicy {
                every: Duration::from_millis(20),
                jitter: 0.5,
                on_drift: true,
            }),
            resize: Some(ResizeConfig {
                min_shards: 1,
                max_shards: 4,
                cooldown: Duration::ZERO,
                policy: Box::new(TogglePolicy { big: false }),
            }),
            tier: Some(TierPolicy {
                idle_after: Some(Duration::ZERO),
                max_hot_streams: None,
                max_demotions_per_tick: 1024,
            }),
        },
    );

    std::thread::scope(|scope| {
        for feed in &feeds {
            let client = server.attach(&feed.id, feed.schema.clone(), &feed.spec).unwrap();
            scope.spawn(move || {
                for chunk in feed.instances.chunks(37) {
                    ingest_all(&client, chunk.to_vec());
                }
            });
        }
    });
    server.drain();
    // Post-drain window: the fleet keeps toggling sizes while every
    // stream is cold — each migration moves checkpoint bytes, not state.
    std::thread::sleep(Duration::from_millis(400));

    let scan = server.tier_scan();
    assert!(
        scan.iter().all(|e| e.tier != TierKind::Hot),
        "an idle fleet under idle_after=0 must be fully cold: {scan:?}"
    );

    let report = supervisor.stop();
    assert!(report.errors.is_empty(), "supervisor errors: {:?}", report.errors);
    assert!(report.resizes.len() >= 4, "the toggling policy must keep resizing: {report:?}");
    assert!(report.hibernations >= feeds.len() as u64, "evictions must keep firing");

    // Shutdown rehydrates the cold fleet for its final reports.
    let final_report = Arc::try_unwrap(server).expect("supervisor stopped").shutdown();
    assert_eq!(final_report.panicked_shards, 0);
    assert_eq!(final_report.streams.len(), feeds.len());
    for summary in &final_report.streams {
        let feed = feeds.iter().find(|f| f.id == summary.stream).unwrap();
        let sequential = sequential_baseline(feed, run, ServeConfig::default().base_seed);
        assert_results_match(&format!("resize race {}", feed.id), &summary.result, &sequential);
    }
    let _ = fs::remove_dir_all(dir);
}

/// Edge case: a drift's urgent spill and the stream's eviction land in
/// the **same tick** (long tick window, `idle_after: ZERO`, distant
/// periodic schedule). The tick's order is fold → tier pass → spill
/// round, so the urgent spill runs against an already-cold stream — it
/// must checkpoint from the parked bytes without waking it, error-free.
#[test]
fn urgent_spill_same_tick_as_eviction_spills_the_cold_stream() {
    if skip_under_forced_hibernation() {
        return;
    }
    let feeds = fleet(2, 1_400); // feed-01 is the ADWIN feed: cheap, reliable drift
    let feed = &feeds[1];
    let run = run_config();
    let dir = scratch("urgent-evict");
    let server =
        Arc::new(ServerHandle::start(ServeConfig { num_shards: 2, run, ..Default::default() }));
    let events = server.subscribe();
    let supervisor = Supervisor::start(
        Arc::clone(&server),
        SnapshotSink::new(&dir).unwrap(),
        SupervisorConfig {
            // Long tick: attach → ingest → drift → drain all land inside
            // the first window, so one fold sees the drift and the same
            // tick's tier pass evicts the (now idle) stream.
            tick: Duration::from_millis(400),
            checkpoint: Some(CheckpointPolicy {
                every: Duration::from_secs(3_600),
                jitter: 0.0,
                on_drift: true,
            }),
            resize: None,
            tier: Some(TierPolicy {
                idle_after: Some(Duration::ZERO),
                max_hot_streams: None,
                max_demotions_per_tick: 1024,
            }),
        },
    );

    let client = server.attach(&feed.id, feed.schema.clone(), &feed.spec).unwrap();
    ingest_all(&client, feed.instances.clone());
    server.drain();
    // Let a few ticks run so the eviction + urgent spill provably execute.
    std::thread::sleep(Duration::from_millis(900));

    let report = supervisor.stop();
    assert!(report.errors.is_empty(), "supervisor errors: {:?}", report.errors);
    assert!(report.urgent_spills >= 1, "the drift must have forced an urgent spill");
    assert!(report.hibernations >= 1, "idle_after=0 must have evicted the stream");

    // The urgent spill did not wake the stream.
    let scan = server.tier_scan();
    let row = scan.iter().find(|e| e.id.as_ref() == feed.id).unwrap();
    assert_eq!(row.tier, TierKind::ColdDisk, "urgent spill of a cold stream must not rehydrate");

    // Bus order within the tick: the eviction's spill notice (non-urgent)
    // precedes the urgent one.
    let spills: Vec<bool> = events
        .try_iter()
        .filter(|e| e.stream.as_ref() == feed.id)
        .filter_map(|e| match e.kind {
            ServeEventKind::CheckpointSpilled { urgent, .. } => Some(urgent),
            _ => None,
        })
        .collect();
    assert!(spills.contains(&false) && spills.contains(&true), "both spill notices: {spills:?}");
    assert_eq!(spills.iter().position(|u| !u), Some(0), "eviction spill first: {spills:?}");

    // Detaching the cold stream still returns the bitwise-correct result.
    let result = server.detach(&feed.id).unwrap();
    let sequential = sequential_baseline(feed, run, ServeConfig::default().base_seed);
    assert!(!sequential.detections.is_empty(), "the baseline must drift");
    assert_results_match("cold detach after urgent spill", &result, &sequential);

    let _ = Arc::try_unwrap(server).expect("supervisor stopped").shutdown();
    let _ = fs::remove_dir_all(dir);
}

/// One step of the model-based lifecycle walk below, decoded from a raw
/// proptest draw. Ingest is weighted heaviest so most sequences make real
/// progress through the stream before the tier machinery kicks in.
#[derive(Debug, Clone, Copy, PartialEq)]
enum LifecycleOp {
    /// Ingest the next chunk of instances (rehydrates a cold stream).
    Ingest,
    /// Dirty eviction: `hibernate_stream` with no spill to reuse.
    Hibernate,
    /// Clean demotion: spill a fresh checkpoint, then `hibernate_with`
    /// the `(position, path)` pair so the disk file becomes authoritative
    /// (`Memory → Disk` leg of the lifecycle).
    DemoteViaSpill,
    /// Non-destructive checkpoint; must not change the stream's tier.
    Checkpoint,
    /// Detach (rehydrating if cold), check the result against a
    /// sequential prefix run, then restore from a checkpoint and keep
    /// going.
    DetachRestore,
}

impl LifecycleOp {
    fn decode(raw: usize) -> Self {
        match raw {
            0..=3 => LifecycleOp::Ingest,
            4 => LifecycleOp::Hibernate,
            5 => LifecycleOp::DemoteViaSpill,
            6 => LifecycleOp::Checkpoint,
            _ => LifecycleOp::DetachRestore,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Model-based lifecycle sweep: arbitrary interleavings of
    /// ingest / dirty-hibernate / spill-demote / checkpoint /
    /// detach-and-restore against a single-stream server, with a trivial
    /// shadow model (`cursor` = instances ingested, `cold` = tier). Every
    /// step pins the server against the model — positions, tier rows,
    /// hibernate outcomes, prefix results at each detach — and the final
    /// detach must be bitwise-identical to a sequential pipeline that
    /// never tiered at all (the `Memory → Disk → rehydrate` legs are all
    /// exercised whenever the drawn sequence contains them).
    #[test]
    fn arbitrary_tier_lifecycle_interleavings_match_the_model(
        raw_ops in prop::collection::vec(0usize..10, 6..20)
    ) {
        if skip_under_forced_hibernation() {
            return;
        }
        const TOTAL: usize = 600;
        const CHUNK: usize = 60;
        let feeds = fleet(1, TOTAL);
        let feed = &feeds[0];
        let run = run_config();
        let dir = scratch("proptest-lifecycle");
        let sink = SnapshotSink::new(&dir).unwrap();
        let server = ServerHandle::start(ServeConfig { num_shards: 1, run, ..Default::default() });
        let mut client = server.attach(&feed.id, feed.schema.clone(), &feed.spec).unwrap();

        // The shadow model.
        let mut cursor = 0usize; // instances the server has accepted
        let mut cold = false; // current tier (true = ColdMemory or ColdDisk)

        for op in raw_ops.iter().map(|&raw| LifecycleOp::decode(raw)) {
            match op {
                LifecycleOp::Ingest => {
                    if cursor < TOTAL {
                        let next = (cursor + CHUNK).min(TOTAL);
                        ingest_all(&client, feed.instances[cursor..next].to_vec());
                        cursor = next;
                        cold = false; // ingest rehydrates
                    }
                }
                LifecycleOp::Hibernate => {
                    server.drain();
                    match server.hibernate_stream(&feed.id).unwrap() {
                        HibernateOutcome::Hibernated { position, clean } => {
                            prop_assert!(!cold, "model said cold, server evicted");
                            prop_assert_eq!(position, cursor as u64);
                            prop_assert!(!clean, "no spill offered: eviction must encode");
                        }
                        HibernateOutcome::AlreadyCold { position } => {
                            prop_assert!(cold, "model said hot, server said cold");
                            prop_assert_eq!(position, cursor as u64);
                        }
                        HibernateOutcome::DemotedToDisk { .. } => {
                            panic!("no spill offered: demotion to disk is impossible")
                        }
                    }
                    cold = true;
                }
                LifecycleOp::DemoteViaSpill => {
                    server.drain();
                    let checkpoint = server.checkpoint_stream(&feed.id).unwrap();
                    prop_assert_eq!(
                        checkpoint.checkpoint.processed().unwrap(),
                        cursor as u64
                    );
                    let path = sink.spill_checkpoint(&checkpoint).unwrap();
                    server.hibernate_with(&feed.id, Some((cursor as u64, path))).unwrap();
                    let scan = server.tier_scan();
                    let row = scan.iter().find(|e| e.id.as_ref() == feed.id).unwrap();
                    prop_assert_eq!(row.tier, TierKind::ColdDisk);
                    prop_assert_eq!(row.position, cursor as u64);
                    cold = true;
                }
                LifecycleOp::Checkpoint => {
                    server.drain();
                    let checkpoint = server.checkpoint_stream(&feed.id).unwrap();
                    prop_assert_eq!(
                        checkpoint.checkpoint.processed().unwrap(),
                        cursor as u64
                    );
                    let scan = server.tier_scan();
                    let row = scan.iter().find(|e| e.id.as_ref() == feed.id).unwrap();
                    prop_assert_eq!(
                        row.tier == TierKind::Hot,
                        !cold,
                        "checkpointing must not change the tier"
                    );
                }
                LifecycleOp::DetachRestore => {
                    if cursor == 0 {
                        continue;
                    }
                    server.drain();
                    let checkpoint = server.checkpoint_stream(&feed.id).unwrap();
                    let result = server.detach(&feed.id).unwrap();
                    let prefix = Feed {
                        id: feed.id.clone(),
                        schema: feed.schema.clone(),
                        instances: feed.instances[..cursor].to_vec(),
                        spec: feed.spec.clone(),
                    };
                    let sequential =
                        sequential_baseline(&prefix, run, ServeConfig::default().base_seed);
                    assert_results_match("prefix detach", &result, &sequential);
                    client = server.restore_stream(&checkpoint).unwrap();
                    cold = false; // restore re-attaches hot
                }
            }
        }

        // Finish the stream and close the loop against the ground truth.
        if cursor < TOTAL {
            ingest_all(&client, feed.instances[cursor..].to_vec());
        }
        server.drain();
        let result = server.detach(&feed.id).unwrap();
        let sequential = sequential_baseline(feed, run, ServeConfig::default().base_seed);
        prop_assert_eq!(result.instances, TOTAL as u64);
        assert_results_match("final detach", &result, &sequential);
        let report = server.shutdown();
        prop_assert!(report.streams.is_empty());
        prop_assert_eq!(report.panicked_shards, 0);
        let _ = fs::remove_dir_all(dir);
    }
}
