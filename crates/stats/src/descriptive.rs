//! Descriptive statistics and rank transforms.
//!
//! These helpers are used throughout the detectors (window means, variances)
//! and by the rank-based hypothesis tests (Wilcoxon, Friedman), which require
//! midrank handling of ties.

/// Arithmetic mean of a slice. Returns 0.0 for an empty slice.
pub fn mean(data: &[f64]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    data.iter().sum::<f64>() / data.len() as f64
}

/// Unbiased sample variance (denominator `n - 1`). Returns 0.0 if fewer than
/// two observations are provided.
pub fn variance(data: &[f64]) -> f64 {
    if data.len() < 2 {
        return 0.0;
    }
    let m = mean(data);
    data.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (data.len() - 1) as f64
}

/// Population variance (denominator `n`). Returns 0.0 for an empty slice.
pub fn population_variance(data: &[f64]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let m = mean(data);
    data.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / data.len() as f64
}

/// Sample standard deviation (square root of the unbiased variance).
pub fn std_dev(data: &[f64]) -> f64 {
    variance(data).sqrt()
}

/// Median of a slice (average of the two central order statistics for even
/// lengths). Returns 0.0 for an empty slice.
pub fn median(data: &[f64]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("median requires non-NaN data"));
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

/// Minimum of a slice; `None` if empty.
pub fn min(data: &[f64]) -> Option<f64> {
    data.iter().copied().fold(None, |acc, x| match acc {
        None => Some(x),
        Some(m) => Some(m.min(x)),
    })
}

/// Maximum of a slice; `None` if empty.
pub fn max(data: &[f64]) -> Option<f64> {
    data.iter().copied().fold(None, |acc, x| match acc {
        None => Some(x),
        Some(m) => Some(m.max(x)),
    })
}

/// Assigns fractional (midrank) ranks to the observations, averaging the
/// ranks of tied values. Ranks start at 1.
///
/// This is the rank transform used by the Wilcoxon rank-sum test and the
/// Friedman test. For example `[10.0, 20.0, 20.0, 30.0]` receives ranks
/// `[1.0, 2.5, 2.5, 4.0]`.
pub fn rank_with_ties(data: &[f64]) -> Vec<f64> {
    let n = data.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| data[a].partial_cmp(&data[b]).expect("rank requires non-NaN data"));
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        // Extend over the tie group [i, j].
        while j + 1 < n && data[idx[j + 1]] == data[idx[i]] {
            j += 1;
        }
        // Average rank of positions i..=j (1-based).
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Correction term for ties in rank statistics: `sum(t^3 - t)` over all tie
/// groups of size `t`. Used by the Wilcoxon rank-sum variance correction.
pub fn tie_correction(data: &[f64]) -> f64 {
    let mut sorted: Vec<f64> = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("tie correction requires non-NaN data"));
    let mut correction = 0.0;
    let mut i = 0;
    while i < sorted.len() {
        let mut j = i;
        while j + 1 < sorted.len() && sorted[j + 1] == sorted[i] {
            j += 1;
        }
        let t = (j - i + 1) as f64;
        correction += t * t * t - t;
        i = j + 1;
    }
    correction
}

/// Pearson correlation coefficient between two equally long slices.
/// Returns 0.0 if either input has zero variance or fewer than 2 points.
pub fn pearson_correlation(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "correlation requires equal-length inputs");
    if x.len() < 2 {
        return 0.0;
    }
    let mx = mean(x);
    let my = mean(y);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (a, b) in x.iter().zip(y.iter()) {
        let dx = a - mx;
        let dy = b - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return 0.0;
    }
    sxy / (sxx.sqrt() * syy.sqrt())
}

/// First differences of a series: `y[i] = x[i+1] - x[i]`.
///
/// The Granger-causality variant used by RBM-IM operates on first
/// differences to handle non-stationary trend series (Sec. V-B).
pub fn first_differences(x: &[f64]) -> Vec<f64> {
    if x.len() < 2 {
        return Vec::new();
    }
    x.windows(2).map(|w| w[1] - w[0]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_basic() {
        let d = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&d) - 5.0).abs() < 1e-12);
        assert!((population_variance(&d) - 4.0).abs() < 1e-12);
        assert!((variance(&d) - 32.0 / 7.0).abs() < 1e-12);
        assert!((std_dev(&d) - (32.0_f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_and_single_inputs_are_safe() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
        assert_eq!(median(&[]), 0.0);
        assert_eq!(min(&[]), None);
        assert_eq!(max(&[]), None);
        assert!(rank_with_ties(&[]).is_empty());
        assert!(first_differences(&[1.0]).is_empty());
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
    }

    #[test]
    fn min_max() {
        let d = [3.0, -1.0, 7.0, 2.0];
        assert_eq!(min(&d), Some(-1.0));
        assert_eq!(max(&d), Some(7.0));
    }

    #[test]
    fn ranks_without_ties_are_permutation() {
        let d = [10.0, 5.0, 8.0, 1.0];
        assert_eq!(rank_with_ties(&d), vec![4.0, 2.0, 3.0, 1.0]);
    }

    #[test]
    fn ranks_average_ties() {
        let d = [10.0, 20.0, 20.0, 30.0];
        assert_eq!(rank_with_ties(&d), vec![1.0, 2.5, 2.5, 4.0]);
        let all_same = [7.0, 7.0, 7.0];
        assert_eq!(rank_with_ties(&all_same), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn rank_sum_is_invariant() {
        // Sum of ranks must always be n(n+1)/2 regardless of ties.
        let d = [5.0, 5.0, 1.0, 3.0, 3.0, 3.0, 9.0];
        let n = d.len() as f64;
        let s: f64 = rank_with_ties(&d).iter().sum();
        assert!((s - n * (n + 1.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn tie_correction_counts_groups() {
        // two ties of size 2 and 3: (8-2) + (27-3) = 30
        let d = [1.0, 1.0, 2.0, 2.0, 2.0, 5.0];
        assert_eq!(tie_correction(&d), 6.0 + 24.0);
        assert_eq!(tie_correction(&[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn correlation_perfect_and_none() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson_correlation(&x, &y) - 1.0).abs() < 1e-12);
        let z = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson_correlation(&x, &z) + 1.0).abs() < 1e-12);
        let c = [5.0, 5.0, 5.0, 5.0];
        assert_eq!(pearson_correlation(&x, &c), 0.0);
    }

    #[test]
    fn first_differences_basic() {
        assert_eq!(first_differences(&[1.0, 3.0, 6.0, 10.0]), vec![2.0, 3.0, 4.0]);
    }
}
