//! Nelder–Mead simplex optimizer.
//!
//! The paper tunes every detector's hyper-parameters per stream using "self
//! hyper-parameter tuning" (Veloso et al., 2018), which is an online
//! Nelder–Mead search over the parameter space. This module provides the
//! underlying derivative-free simplex minimizer; the harness wraps it with
//! the parameter grids of Tab. II.

/// Configuration of the Nelder–Mead search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NelderMeadConfig {
    /// Reflection coefficient (standard value 1.0).
    pub alpha: f64,
    /// Expansion coefficient (standard value 2.0).
    pub gamma: f64,
    /// Contraction coefficient (standard value 0.5).
    pub rho: f64,
    /// Shrink coefficient (standard value 0.5).
    pub sigma: f64,
    /// Maximum number of objective evaluations.
    pub max_evaluations: usize,
    /// Terminate when the simplex spread (max − min objective) drops below
    /// this tolerance.
    pub tolerance: f64,
}

impl Default for NelderMeadConfig {
    fn default() -> Self {
        NelderMeadConfig {
            alpha: 1.0,
            gamma: 2.0,
            rho: 0.5,
            sigma: 0.5,
            max_evaluations: 200,
            tolerance: 1e-8,
        }
    }
}

/// Result of a Nelder–Mead minimization.
#[derive(Debug, Clone, PartialEq)]
pub struct NelderMeadResult {
    /// Best point found.
    pub point: Vec<f64>,
    /// Objective value at the best point.
    pub value: f64,
    /// Number of objective evaluations used.
    pub evaluations: usize,
    /// Whether the tolerance criterion was met before the evaluation budget
    /// ran out.
    pub converged: bool,
}

/// Derivative-free simplex minimizer.
pub struct NelderMead {
    config: NelderMeadConfig,
    /// Optional per-dimension bounds `(lower, upper)`; points are clamped.
    bounds: Option<Vec<(f64, f64)>>,
}

impl NelderMead {
    /// Creates an unbounded minimizer with the given configuration.
    pub fn new(config: NelderMeadConfig) -> Self {
        NelderMead { config, bounds: None }
    }

    /// Creates a minimizer that clamps every candidate point into the given
    /// per-dimension `(lower, upper)` box — hyper-parameter grids are always
    /// bounded, so this is what the tuning harness uses.
    pub fn with_bounds(config: NelderMeadConfig, bounds: Vec<(f64, f64)>) -> Self {
        assert!(bounds.iter().all(|(l, u)| l < u), "each bound must satisfy lower < upper");
        NelderMead { config, bounds: Some(bounds) }
    }

    fn clamp(&self, point: &mut [f64]) {
        if let Some(bounds) = &self.bounds {
            for (x, (lo, hi)) in point.iter_mut().zip(bounds.iter()) {
                *x = x.clamp(*lo, *hi);
            }
        }
    }

    /// Minimizes `objective` starting from `initial`, using an axis-aligned
    /// initial simplex with step `initial_step` in each dimension.
    ///
    /// # Panics
    /// Panics if `initial` is empty or `initial_step` is not positive, or if
    /// bounds were supplied with a dimensionality different from `initial`.
    pub fn minimize<F>(
        &self,
        mut objective: F,
        initial: &[f64],
        initial_step: f64,
    ) -> NelderMeadResult
    where
        F: FnMut(&[f64]) -> f64,
    {
        assert!(!initial.is_empty(), "initial point must be non-empty");
        assert!(initial_step > 0.0, "initial step must be > 0");
        if let Some(b) = &self.bounds {
            assert_eq!(b.len(), initial.len(), "bounds dimensionality mismatch");
        }
        let n = initial.len();
        let cfg = self.config;
        let mut evaluations = 0usize;
        let mut eval = |pt: &[f64], evals: &mut usize| {
            *evals += 1;
            objective(pt)
        };

        // Initial simplex: start point plus one vertex per axis.
        let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n + 1);
        let mut start = initial.to_vec();
        self.clamp(&mut start);
        let f0 = eval(&start, &mut evaluations);
        simplex.push((start.clone(), f0));
        for i in 0..n {
            let mut p = start.clone();
            p[i] += initial_step;
            self.clamp(&mut p);
            // If clamping collapsed the vertex onto the start, step the other way.
            if p == start {
                p[i] -= 2.0 * initial_step;
                self.clamp(&mut p);
            }
            let f = eval(&p, &mut evaluations);
            simplex.push((p, f));
        }

        let mut converged = false;
        while evaluations < cfg.max_evaluations {
            simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("objective must not return NaN"));
            let spread = simplex[n].1 - simplex[0].1;
            if spread.abs() < cfg.tolerance {
                converged = true;
                break;
            }
            // Centroid of all but the worst vertex.
            let mut centroid = vec![0.0; n];
            for (p, _) in &simplex[..n] {
                for (c, x) in centroid.iter_mut().zip(p.iter()) {
                    *c += x / n as f64;
                }
            }
            let worst = simplex[n].clone();

            // Reflection.
            let mut reflected: Vec<f64> =
                centroid.iter().zip(worst.0.iter()).map(|(c, w)| c + cfg.alpha * (c - w)).collect();
            self.clamp(&mut reflected);
            let f_reflected = eval(&reflected, &mut evaluations);

            if f_reflected < simplex[0].1 {
                // Expansion.
                let mut expanded: Vec<f64> = centroid
                    .iter()
                    .zip(reflected.iter())
                    .map(|(c, r)| c + cfg.gamma * (r - c))
                    .collect();
                self.clamp(&mut expanded);
                let f_expanded = eval(&expanded, &mut evaluations);
                simplex[n] = if f_expanded < f_reflected {
                    (expanded, f_expanded)
                } else {
                    (reflected, f_reflected)
                };
            } else if f_reflected < simplex[n - 1].1 {
                simplex[n] = (reflected, f_reflected);
            } else {
                // Contraction (toward the better of worst/reflected).
                let (base, f_base) = if f_reflected < worst.1 {
                    (&reflected, f_reflected)
                } else {
                    (&worst.0, worst.1)
                };
                let mut contracted: Vec<f64> =
                    centroid.iter().zip(base.iter()).map(|(c, b)| c + cfg.rho * (b - c)).collect();
                self.clamp(&mut contracted);
                let f_contracted = eval(&contracted, &mut evaluations);
                if f_contracted < f_base {
                    simplex[n] = (contracted, f_contracted);
                } else {
                    // Shrink toward the best vertex.
                    let best = simplex[0].0.clone();
                    for vertex in simplex.iter_mut().skip(1) {
                        let mut p: Vec<f64> = best
                            .iter()
                            .zip(vertex.0.iter())
                            .map(|(b, v)| b + cfg.sigma * (v - b))
                            .collect();
                        self.clamp(&mut p);
                        let f = eval(&p, &mut evaluations);
                        *vertex = (p, f);
                        if evaluations >= cfg.max_evaluations {
                            break;
                        }
                    }
                }
            }
        }

        simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("objective must not return NaN"));
        NelderMeadResult {
            point: simplex[0].0.clone(),
            value: simplex[0].1,
            evaluations,
            converged,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic_bowl() {
        let nm = NelderMead::new(NelderMeadConfig { max_evaluations: 500, ..Default::default() });
        let res = nm.minimize(|p| (p[0] - 3.0).powi(2) + (p[1] + 1.0).powi(2), &[0.0, 0.0], 1.0);
        assert!((res.point[0] - 3.0).abs() < 1e-3, "x = {}", res.point[0]);
        assert!((res.point[1] + 1.0).abs() < 1e-3, "y = {}", res.point[1]);
        assert!(res.value < 1e-5);
        assert!(res.converged);
    }

    #[test]
    fn minimizes_rosenbrock_reasonably() {
        let nm = NelderMead::new(NelderMeadConfig {
            max_evaluations: 4000,
            tolerance: 1e-12,
            ..Default::default()
        });
        let rosen = |p: &[f64]| (1.0 - p[0]).powi(2) + 100.0 * (p[1] - p[0] * p[0]).powi(2);
        let res = nm.minimize(rosen, &[-1.2, 1.0], 0.5);
        assert!(res.value < 1e-4, "rosenbrock value = {}", res.value);
    }

    #[test]
    fn one_dimensional_problem() {
        let nm = NelderMead::new(NelderMeadConfig::default());
        let res = nm.minimize(|p| (p[0] - 7.0).powi(2) + 2.0, &[0.0], 1.0);
        assert!((res.point[0] - 7.0).abs() < 1e-3);
        assert!((res.value - 2.0).abs() < 1e-5);
    }

    #[test]
    fn respects_bounds() {
        // The unconstrained minimum (x = 10) lies outside the box [0, 2].
        let nm = NelderMead::with_bounds(NelderMeadConfig::default(), vec![(0.0, 2.0)]);
        let res = nm.minimize(|p| (p[0] - 10.0).powi(2), &[1.0], 0.5);
        assert!(res.point[0] <= 2.0 + 1e-12);
        assert!(res.point[0] > 1.5, "should push to the upper bound, got {}", res.point[0]);
    }

    #[test]
    fn evaluation_budget_is_respected() {
        let nm = NelderMead::new(NelderMeadConfig { max_evaluations: 20, ..Default::default() });
        let mut count = 0usize;
        let res = nm.minimize(
            |p| {
                count += 1;
                p.iter().map(|x| x * x).sum()
            },
            &[5.0, 5.0, 5.0],
            1.0,
        );
        // The implementation may finish the in-flight simplex operation, so
        // allow a small overshoot proportional to the dimensionality.
        assert!(count <= 20 + 4, "count = {count}");
        assert_eq!(res.evaluations, count);
    }

    #[test]
    #[should_panic]
    fn rejects_empty_start() {
        NelderMead::new(NelderMeadConfig::default()).minimize(|_| 0.0, &[], 1.0);
    }

    #[test]
    #[should_panic]
    fn rejects_bad_bounds() {
        NelderMead::with_bounds(NelderMeadConfig::default(), vec![(1.0, 0.0)]);
    }
}
