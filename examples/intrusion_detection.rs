//! Cyber-security scenario from the paper's introduction: multiple attack
//! types appear with very different frequencies (multi-class, extremely
//! imbalanced) and individual attack families evolve over time to bypass
//! defences, while legitimate traffic stays stationary.
//!
//! The example models 1 legitimate-traffic class (majority) plus 4 attack
//! classes with a 200:1 overall imbalance. Two attack families mutate
//! mid-stream (local real drift). A cost-sensitive perceptron tree driven by
//! RBM-IM is compared against the same classifier driven by DDM-OCI, using
//! the paper's pmAUC / pmGM metrics.
//!
//! Run with: `cargo run -p rbm-im-harness --release --example intrusion_detection`

use rbm_im_harness::detectors::DetectorKind;
use rbm_im_harness::pipeline::{run_grid, GridStream, RunConfig};
use rbm_im_streams::drift::local::{LocalDriftEvent, LocalDriftStream};
use rbm_im_streams::drift::DriftKind;
use rbm_im_streams::generators::GaussianMixtureGenerator;
use rbm_im_streams::imbalance::{ImbalanceProfile, ImbalancedStream};
use rbm_im_streams::stream::BoundedStream;
use rbm_im_streams::DataStream;

/// Builds the intrusion-detection stream: class 0 = legitimate traffic,
/// classes 1–4 = attack families; families 3 and 4 (the rarest) mutate at
/// one third and two thirds of the stream.
fn build_stream(seed: u64, length: u64) -> impl DataStream + Send {
    let base = GaussianMixtureGenerator::balanced(16, 5, 2, seed);
    let events = vec![
        LocalDriftEvent {
            affected_classes: vec![3],
            position: length / 3,
            width: length / 30,
            kind: DriftKind::Incremental,
            magnitude: 0.6,
        },
        LocalDriftEvent {
            affected_classes: vec![4],
            position: 2 * length / 3,
            width: 0,
            kind: DriftKind::Sudden,
            magnitude: 0.8,
        },
    ];
    let drifting = LocalDriftStream::new(base, events, seed ^ 0xA11CE);
    // Traffic mix: overwhelmingly legitimate, attacks increasingly rare.
    let profile = ImbalanceProfile::Static(vec![200.0, 20.0, 8.0, 3.0, 1.0]);
    BoundedStream::new(ImbalancedStream::new(drifting, profile, seed ^ 0xBEEF), length)
}

fn main() {
    let length = 40_000;
    println!("intrusion-detection stream: 5 classes, 200:1 imbalance, 2 local attack mutations\n");
    let run_config = RunConfig { metric_window: 1000, ..Default::default() };

    // One parallel grid: three detectors, one stream. Every cell rebuilds
    // the identical deterministic stream, so the comparison is fair and the
    // run exploits all cores.
    let detectors: Vec<_> = [DetectorKind::RbmIm, DetectorKind::DdmOci, DetectorKind::Fhddm]
        .iter()
        .map(|d| d.spec())
        .collect();
    let streams = vec![GridStream::new("intrusion", move || Box::new(build_stream(2024, length)))];
    let results = run_grid(&detectors, &streams, &run_config).expect("grid resolves");
    for result in &results {
        println!(
            "{:<10}  pmAUC {:6.2}%  pmGM {:6.2}%  accuracy {:6.2}%  drift signals {:3}  (detector update time {:.2}s)",
            result.detector,
            result.pm_auc,
            result.pm_gmean,
            result.accuracy,
            result.drift_count(),
            result.detector_update_seconds
        );
    }
    println!(
        "\nThe skew-insensitive detectors keep the classifier's pmGM well above zero by\n\
         triggering retraining when the rare attack families mutate; an error-rate\n\
         detector barely notices because mutated attacks are a tiny share of traffic."
    );
}
