//! Fig. 8 bench: local-drift sweep (1 vs all classes drifting) for RBM-IM
//! and one skew-insensitive baseline, on a compact Scenario-3 stream.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rbm_im_harness::detectors::DetectorKind;
use rbm_im_harness::pipeline::{PipelineBuilder, RunConfig};
use rbm_im_streams::scenarios::{scenario3, ScenarioConfig};

fn bench_fig8(c: &mut Criterion) {
    rbm_im_bench::print_runner_metadata();
    let mut group = c.benchmark_group("fig8_local_drift");
    group.sample_size(10);
    let config = ScenarioConfig {
        num_features: 10,
        num_classes: 5,
        length: 3_000,
        imbalance_ratio: 50.0,
        n_drifts: 1,
        seed: 7,
        ..Default::default()
    };
    let run = RunConfig { metric_window: 500, ..Default::default() };
    for classes_with_drift in [1usize, 5] {
        for detector in [DetectorKind::RbmIm, DetectorKind::DdmOci] {
            let id = format!("{}-k{}", detector.name(), classes_with_drift);
            group.bench_with_input(BenchmarkId::new("scenario3", id), &(), |b, _| {
                b.iter(|| {
                    let scenario = scenario3(&config, classes_with_drift);
                    PipelineBuilder::new()
                        .boxed_stream(scenario.stream)
                        .detector_spec(detector.spec())
                        .config(run)
                        .run()
                        .unwrap()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
