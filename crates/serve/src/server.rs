//! The serving front-end: [`ServerHandle`] (attach / ingest / subscribe /
//! drain / shutdown) and [`StreamClient`] (the per-stream ingest handle
//! feeder threads clone and keep).

use crate::config::ServeConfig;
use crate::event::{EventBus, ServeEvent};
use crate::router::StreamRouter;
use crate::shard::{Payload, ShardMsg, ShardReport, ShardWorker};
use rbm_im_harness::pipeline::{PipelineError, RunConfig, RunResult};
use rbm_im_harness::registry::{DetectorRegistry, DetectorSpec, RegistryError};
use rbm_im_streams::source::derive_stream_seed;
use rbm_im_streams::{Instance, StreamSchema};
use serde::Serialize;
use std::fmt;
use std::sync::mpsc::{channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Errors of serving control operations (attach / detach / blocking
/// ingest).
#[derive(Debug)]
pub enum ServeError {
    /// The stream id is already attached on its shard.
    AlreadyAttached(String),
    /// No stream with this id is attached.
    UnknownStream(String),
    /// Detector spec resolution failed.
    Registry(RegistryError),
    /// The shard worker is gone (server shut down or worker panicked).
    ShardUnavailable,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::AlreadyAttached(id) => write!(f, "stream `{id}` is already attached"),
            ServeError::UnknownStream(id) => write!(f, "no stream `{id}` is attached"),
            ServeError::Registry(e) => write!(f, "detector resolution failed: {e}"),
            ServeError::ShardUnavailable => write!(f, "shard worker unavailable"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<PipelineError> for ServeError {
    fn from(e: PipelineError) -> Self {
        match e {
            PipelineError::Registry(e) => ServeError::Registry(e),
            // The stepper path never reports a missing stream, but map it
            // defensively rather than panicking.
            PipelineError::MissingStream => ServeError::ShardUnavailable,
        }
    }
}

/// Errors of the non-blocking ingest path. Rejected instances ride back in
/// the error so callers can retry or shed load without losing data.
#[derive(Debug)]
pub enum IngestError {
    /// The shard's bounded ingest queue is full — explicit backpressure.
    Full(Vec<Instance>),
    /// The shard is gone (server shut down).
    Closed(Vec<Instance>),
}

impl IngestError {
    /// The instances that were not ingested, in their original order.
    pub fn into_rejected(self) -> Vec<Instance> {
        match self {
            IngestError::Full(instances) | IngestError::Closed(instances) => instances,
        }
    }
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Full(instances) => {
                write!(f, "shard ingest queue full ({} instances rejected)", instances.len())
            }
            IngestError::Closed(instances) => {
                write!(f, "shard closed ({} instances rejected)", instances.len())
            }
        }
    }
}

impl std::error::Error for IngestError {}

/// Final summary of one served stream.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StreamSummary {
    /// Stream id.
    pub stream: String,
    /// Shard that owned the stream.
    pub shard: usize,
    /// The stream's prequential run result (identical to what a sequential
    /// pipeline run over the same instances produces).
    pub result: RunResult,
}

/// What [`ServerHandle::shutdown`] returns: every stream's final summary
/// plus serving diagnostics.
#[derive(Debug, Clone, Default, Serialize)]
pub struct ServeReport {
    /// Per-stream summaries, sorted by stream id (deterministic whatever
    /// the shard layout). Streams detached before shutdown are *not*
    /// included — `detach` already returned their result.
    pub streams: Vec<StreamSummary>,
    /// Instances ingested for ids with no attached pipeline (dropped).
    pub dropped_unknown: u64,
    /// Workspace-pool checkouts served by reuse across all shards.
    pub workspace_reuse_hits: u64,
    /// Workspace-pool checkouts that had to allocate a fresh workspace.
    pub workspace_reuse_misses: u64,
    /// Shard workers that panicked before shutdown. A non-zero value means
    /// the panicked shards' stream summaries (and diagnostics counters) are
    /// **missing** from this report — callers aggregating fleet results
    /// must treat it as partial.
    pub panicked_shards: usize,
}

impl ServeReport {
    /// Total instances processed across all streams still attached at
    /// shutdown.
    pub fn total_instances(&self) -> u64 {
        self.streams.iter().map(|s| s.result.instances).sum()
    }

    /// Total drift signals across all streams still attached at shutdown.
    pub fn total_drifts(&self) -> usize {
        self.streams.iter().map(|s| s.result.detections.len()).sum()
    }
}

/// Applies deterministic per-stream seeding to an attach spec: when the
/// registry's factory for `spec.name` accepts a `seed` parameter and the
/// spec does not pin one, `seed = derive_stream_seed(base_seed, stream_id)`
/// (masked to 48 bits so the `f64` parameter encoding is exact) is
/// injected. Exposed so sequential baseline runs can reproduce exactly what
/// the server built — the determinism tests pin serving against
/// `PipelineBuilder` through this function.
pub fn deterministic_spec(
    registry: &DetectorRegistry,
    base_seed: u64,
    stream_id: &str,
    spec: &DetectorSpec,
) -> DetectorSpec {
    if registry.accepts_param(&spec.name, "seed") && !spec.params.contains_key("seed") {
        let seed = derive_stream_seed(base_seed, stream_id) & ((1u64 << 48) - 1);
        spec.clone().with_param("seed", seed as f64)
    } else {
        spec.clone()
    }
}

/// A cloneable per-stream ingest handle: the stream id is pre-resolved to
/// its shard and interned once, so the hot path is a single bounded-channel
/// send. Feeder threads clone one of these per stream they pump.
#[derive(Debug, Clone)]
pub struct StreamClient {
    id: Arc<str>,
    shard: usize,
    tx: SyncSender<ShardMsg>,
}

impl StreamClient {
    /// The stream id.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The shard owning the stream.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Non-blocking ingest of one instance. On a full queue the instance
    /// comes back in [`IngestError::Full`]; the caller decides between
    /// retrying, blocking ([`StreamClient::ingest`]) and shedding load.
    pub fn try_ingest(&self, instance: Instance) -> Result<(), IngestError> {
        match self.tx.try_send(ShardMsg::Ingest {
            id: Arc::clone(&self.id),
            payload: Payload::One(instance),
        }) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(msg)) => Err(IngestError::Full(reclaim(msg))),
            Err(TrySendError::Disconnected(msg)) => Err(IngestError::Closed(reclaim(msg))),
        }
    }

    /// Non-blocking ingest of a client-side micro-batch (one channel
    /// message however many instances), in per-stream arrival order.
    pub fn try_ingest_batch(&self, instances: Vec<Instance>) -> Result<(), IngestError> {
        if instances.is_empty() {
            return Ok(());
        }
        match self.tx.try_send(ShardMsg::Ingest {
            id: Arc::clone(&self.id),
            payload: Payload::Many(instances),
        }) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(msg)) => Err(IngestError::Full(reclaim(msg))),
            Err(TrySendError::Disconnected(msg)) => Err(IngestError::Closed(reclaim(msg))),
        }
    }

    /// Blocking ingest: waits for queue space instead of failing fast (the
    /// natural mode for replay pumps that should simply run at the shard's
    /// pace).
    pub fn ingest(&self, instance: Instance) -> Result<(), IngestError> {
        self.tx
            .send(ShardMsg::Ingest { id: Arc::clone(&self.id), payload: Payload::One(instance) })
            .map_err(|e| IngestError::Closed(reclaim(e.0)))
    }

    /// Blocking micro-batch ingest.
    pub fn ingest_batch(&self, instances: Vec<Instance>) -> Result<(), IngestError> {
        if instances.is_empty() {
            return Ok(());
        }
        self.tx
            .send(ShardMsg::Ingest { id: Arc::clone(&self.id), payload: Payload::Many(instances) })
            .map_err(|e| IngestError::Closed(reclaim(e.0)))
    }
}

/// Recovers the instances of a bounced ingest message.
fn reclaim(msg: ShardMsg) -> Vec<Instance> {
    match msg {
        ShardMsg::Ingest { payload, .. } => payload.into_instances(),
        _ => Vec::new(),
    }
}

/// A running sharded serving instance.
///
/// Lifecycle: [`ServerHandle::start`] spawns the shard workers;
/// [`ServerHandle::attach`] creates per-stream pipeline state (classifier +
/// detector resolved from an arbitrary registry [`DetectorSpec`]);
/// [`StreamClient::try_ingest`] feeds instances with explicit backpressure;
/// [`ServerHandle::subscribe`] taps the drift-event bus;
/// [`ServerHandle::drain`] barriers until all queued ingest is processed;
/// [`ServerHandle::shutdown`] stops the workers gracefully — every attached
/// stream's trailing micro-batch is flushed and its final summary returned.
pub struct ServerHandle {
    config: ServeConfig,
    registry: Arc<DetectorRegistry>,
    router: StreamRouter,
    bus: Arc<EventBus>,
    shards: Vec<SyncSender<ShardMsg>>,
    joins: Vec<JoinHandle<ShardReport>>,
}

impl ServerHandle {
    /// Starts a server with the default detector registry.
    pub fn start(config: ServeConfig) -> Self {
        Self::start_with_registry(config, Arc::new(DetectorRegistry::with_defaults()))
    }

    /// Starts a server resolving attach specs against a custom registry
    /// (e.g. one with application-specific detectors registered).
    pub fn start_with_registry(config: ServeConfig, registry: Arc<DetectorRegistry>) -> Self {
        assert!(config.num_shards >= 1, "a server needs at least one shard");
        assert!(config.queue_capacity >= 1, "ingest queues need capacity");
        let router = StreamRouter::new(config.num_shards);
        let bus = Arc::new(EventBus::new());
        let mut shards = Vec::with_capacity(config.num_shards);
        let mut joins = Vec::with_capacity(config.num_shards);
        for index in 0..config.num_shards {
            let (tx, rx) = std::sync::mpsc::sync_channel(config.queue_capacity);
            let worker = ShardWorker::new(index, Arc::clone(&registry), Arc::clone(&bus));
            let join = std::thread::Builder::new()
                .name(format!("rbm-serve-shard-{index}"))
                .spawn(move || worker.run(rx))
                .expect("failed to spawn shard worker");
            shards.push(tx);
            joins.push(join);
        }
        ServerHandle { config, registry, router, bus, shards, joins }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.router.num_shards()
    }

    /// The shard a stream id routes to.
    pub fn shard_of(&self, stream_id: &str) -> usize {
        self.router.shard_of(stream_id)
    }

    /// The spec a stream would actually be built with: the attach spec
    /// after deterministic per-stream seed injection (identity when
    /// [`ServeConfig::deterministic_seeding`] is off). Sequential baseline
    /// runs use this to reproduce served results exactly.
    pub fn effective_spec(&self, stream_id: &str, spec: &DetectorSpec) -> DetectorSpec {
        if self.config.deterministic_seeding {
            deterministic_spec(&self.registry, self.config.base_seed, stream_id, spec)
        } else {
            spec.clone()
        }
    }

    /// Attaches a stream under the server's default per-stream
    /// [`RunConfig`] (see [`ServeConfig::run`]) and returns its ingest
    /// client. Fails if the id is already attached or the spec does not
    /// resolve.
    pub fn attach(
        &self,
        stream_id: &str,
        schema: StreamSchema,
        spec: &DetectorSpec,
    ) -> Result<StreamClient, ServeError> {
        self.attach_with(stream_id, schema, spec, self.config.run)
    }

    /// [`ServerHandle::attach`] with a per-stream [`RunConfig`] override
    /// (metric window, micro-batch size, snapshot cadence).
    pub fn attach_with(
        &self,
        stream_id: &str,
        schema: StreamSchema,
        spec: &DetectorSpec,
        run: RunConfig,
    ) -> Result<StreamClient, ServeError> {
        let spec = self.effective_spec(stream_id, spec);
        let shard = self.router.shard_of(stream_id);
        let id: Arc<str> = Arc::from(stream_id);
        let (reply_tx, reply_rx) = channel();
        self.shards[shard]
            .send(ShardMsg::Attach { id: Arc::clone(&id), schema, spec, run, reply: reply_tx })
            .map_err(|_| ServeError::ShardUnavailable)?;
        reply_rx.recv().map_err(|_| ServeError::ShardUnavailable)??;
        Ok(StreamClient { id, shard, tx: self.shards[shard].clone() })
    }

    /// An ingest client for an already-attached stream id (stateless
    /// routing; ingesting through a client for an unattached id counts into
    /// [`ServeReport::dropped_unknown`]).
    pub fn client(&self, stream_id: &str) -> StreamClient {
        let shard = self.router.shard_of(stream_id);
        StreamClient { id: Arc::from(stream_id), shard, tx: self.shards[shard].clone() }
    }

    /// Convenience single-instance ingest by id (interns the id per call;
    /// hot loops should hold a [`StreamClient`]).
    pub fn try_ingest(&self, stream_id: &str, instance: Instance) -> Result<(), IngestError> {
        self.client(stream_id).try_ingest(instance)
    }

    /// Detaches a stream: its trailing micro-batch is flushed (events
    /// included), its pooled workspace reclaimed, and its final summary
    /// returned. Instances of that id still queued behind the detach marker
    /// are dropped (counted in [`ServeReport::dropped_unknown`]).
    pub fn detach(&self, stream_id: &str) -> Result<RunResult, ServeError> {
        let shard = self.router.shard_of(stream_id);
        let (reply_tx, reply_rx) = channel();
        self.shards[shard]
            .send(ShardMsg::Detach { id: Arc::from(stream_id), reply: reply_tx })
            .map_err(|_| ServeError::ShardUnavailable)?;
        reply_rx.recv().map_err(|_| ServeError::ShardUnavailable)?
    }

    /// Subscribes to the drift-event bus: the receiver sees every event
    /// published after this call (attach/detach notices, warnings, drifts
    /// with per-class attribution, periodic metric snapshots).
    pub fn subscribe(&self) -> Receiver<ServeEvent> {
        self.bus.subscribe()
    }

    /// Barrier: returns once every ingest message queued before this call
    /// has been fully processed on every shard (channel FIFO order is the
    /// proof). Events for everything ingested so far are on the bus when
    /// this returns.
    pub fn drain(&self) {
        let mut replies = Vec::with_capacity(self.shards.len());
        for tx in &self.shards {
            let (reply_tx, reply_rx) = channel();
            if tx.send(ShardMsg::Drain { reply: reply_tx }).is_ok() {
                replies.push(reply_rx);
            }
        }
        for reply in replies {
            let _ = reply.recv();
        }
    }

    /// Graceful shutdown: each shard processes everything already queued,
    /// finalizes its remaining streams (flushing trailing micro-batches,
    /// publishing their `Detached` events) and exits. Returns the merged
    /// per-stream report, sorted by stream id.
    pub fn shutdown(self) -> ServeReport {
        for tx in &self.shards {
            let _ = tx.send(ShardMsg::Shutdown);
        }
        drop(self.shards);
        let mut report = ServeReport::default();
        for join in self.joins {
            match join.join() {
                Ok(shard_report) => {
                    report.streams.extend(shard_report.summaries);
                    report.dropped_unknown += shard_report.dropped_unknown;
                    report.workspace_reuse_hits += shard_report.workspace_reuse_hits;
                    report.workspace_reuse_misses += shard_report.workspace_reuse_misses;
                }
                Err(_) => {
                    // A panicked shard loses its streams' summaries; the
                    // remaining shards still report, and the loss is
                    // surfaced via `panicked_shards`.
                    report.panicked_shards += 1;
                }
            }
        }
        report.streams.sort_by(|a, b| a.stream.cmp(&b.stream));
        report
    }
}

impl fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServerHandle")
            .field("num_shards", &self.router.num_shards())
            .field("queue_capacity", &self.config.queue_capacity)
            .finish()
    }
}
