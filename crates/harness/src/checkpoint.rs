//! Self-contained pipeline checkpoints: capture a running
//! [`PipelineStepper`] at any instance
//! boundary, serialize it to JSON, and resume it — later, elsewhere, or on
//! a different shard — **bitwise-identically** to a run that was never
//! interrupted.
//!
//! A [`PipelineCheckpoint`] bundles everything needed to rebuild the
//! pipeline from nothing: the stream schema, the registry
//! [`DetectorSpec`] the detector was built from, the [`RunConfig`], and
//! the opaque state value produced by
//! [`PipelineStepper::state_snapshot`](crate::stepper::PipelineStepper::state_snapshot)
//! (classifier + detector + prequential evaluator + the partially filled
//! detector micro-batch + run counters). [`PipelineCheckpoint::resume`]
//! rebuilds the stepper through the registry and restores the state onto
//! it.
//!
//! This is the enabler for both halves of elastic serving: shard-to-shard
//! live migration (`rbm-im-serve`'s `resize_shards`) and
//! restart-from-disk (`rbm-im-serve`'s `SnapshotSink`).

pub mod codec;

use crate::pipeline::RunConfig;
use crate::registry::{DetectorRegistry, DetectorSpec, RegistryError};
use crate::stepper::PipelineStepper;
use codec::{CheckpointCodec, CodecError};
use rbm_im_streams::StreamSchema;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors of checkpoint capture, serialization, and restoration.
#[derive(Debug)]
pub enum CheckpointError {
    /// The pipeline's classifier or detector does not implement the
    /// snapshot/restore contract.
    Unsupported(String),
    /// A state value did not match the expected shape (corrupt or
    /// incompatible snapshot).
    State(serde::Error),
    /// Rebuilding the detector from its spec failed.
    Registry(RegistryError),
    /// JSON encoding/decoding failed.
    Json(serde_json::Error),
    /// Binary (or sniffed) encoding/decoding failed — truncation, version
    /// mismatch, corruption (see [`codec::CodecError`]).
    Codec(CodecError),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Unsupported(what) => {
                write!(f, "checkpointing unsupported: {what}")
            }
            CheckpointError::State(e) => write!(f, "checkpoint state error: {e}"),
            CheckpointError::Registry(e) => write!(f, "checkpoint detector rebuild failed: {e}"),
            CheckpointError::Json(e) => write!(f, "checkpoint JSON error: {e}"),
            CheckpointError::Codec(e) => write!(f, "checkpoint codec error: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<serde::Error> for CheckpointError {
    fn from(e: serde::Error) -> Self {
        CheckpointError::State(e)
    }
}

impl From<RegistryError> for CheckpointError {
    fn from(e: RegistryError) -> Self {
        CheckpointError::Registry(e)
    }
}

impl From<serde_json::Error> for CheckpointError {
    fn from(e: serde_json::Error) -> Self {
        CheckpointError::Json(e)
    }
}

impl From<CodecError> for CheckpointError {
    fn from(e: CodecError) -> Self {
        CheckpointError::Codec(e)
    }
}

/// A self-contained, serializable checkpoint of one prequential pipeline.
///
/// Serializes to plain JSON; [`PipelineCheckpoint::resume`] rebuilds the
/// stepper (classifier from the schema, detector from the spec via the
/// registry) and restores the captured state, after which stepping
/// continues bitwise-identically to the uninterrupted pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineCheckpoint {
    /// Schema of the stream the pipeline serves.
    pub schema: StreamSchema,
    /// Registry spec the detector is (re)built from — the *effective* spec,
    /// i.e. after any deterministic per-stream seed injection.
    pub spec: DetectorSpec,
    /// The pipeline's run configuration.
    pub run: RunConfig,
    /// Opaque stepper state ([`PipelineStepper::state_snapshot`]).
    pub state: serde::Value,
}

impl PipelineCheckpoint {
    /// Captures a checkpoint of `stepper`, recording the schema / spec /
    /// config needed to resume it from nothing. The spec must be the one
    /// the stepper's detector was built from.
    pub fn capture(
        stepper: &PipelineStepper,
        schema: StreamSchema,
        spec: DetectorSpec,
    ) -> Result<Self, CheckpointError> {
        Ok(PipelineCheckpoint {
            schema,
            spec,
            run: stepper.config(),
            state: stepper.state_snapshot()?,
        })
    }

    /// Rebuilds the pipeline: classifier from the schema, detector from the
    /// spec via `registry`, then restores the captured state. The returned
    /// stepper continues exactly where [`PipelineCheckpoint::capture`] left
    /// off.
    pub fn resume(&self, registry: &DetectorRegistry) -> Result<PipelineStepper, CheckpointError> {
        let mut stepper = PipelineStepper::from_spec(registry, &self.spec, &self.schema, self.run)
            .map_err(|e| match e {
                crate::pipeline::PipelineError::Registry(e) => CheckpointError::Registry(e),
                crate::pipeline::PipelineError::MissingStream => {
                    CheckpointError::Unsupported("stepper construction".into())
                }
            })?;
        stepper.restore_state(&self.state)?;
        Ok(stepper)
    }

    /// Serializes the checkpoint to a JSON string.
    pub fn to_json(&self) -> Result<String, CheckpointError> {
        Ok(serde_json::to_string(self)?)
    }

    /// Parses a checkpoint from a JSON string.
    pub fn from_json(json: &str) -> Result<Self, CheckpointError> {
        Ok(serde_json::from_str(json)?)
    }

    /// Serializes the checkpoint with the chosen codec
    /// ([`CheckpointCodec::Binary`] is ~8× smaller than the pretty JSON
    /// spill format and ~3× smaller than minified JSON on warmed RBM-IM
    /// pipelines — see `BENCH_checkpoint.json`).
    pub fn to_bytes(&self, codec: CheckpointCodec) -> Vec<u8> {
        codec::encode(codec, self)
    }

    /// Parses a checkpoint written by [`PipelineCheckpoint::to_bytes`]
    /// with **either** codec — the binary magic is sniffed, anything else
    /// parses as JSON.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        Ok(codec::decode(bytes)?)
    }

    /// Instances the checkpointed pipeline had processed at capture time —
    /// the resume offset a replayer should continue the stream from.
    pub fn processed(&self) -> Result<u64, CheckpointError> {
        Ok(self.state.field("processed")?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{PipelineBuilder, PipelineEvent};
    use rbm_im_streams::generators::RandomRbfGenerator;
    use rbm_im_streams::{DataStream, ReplayStream, StreamExt};

    /// Checkpoint a pipeline mid-stream (at an awkward cut), serialize to
    /// JSON, resume, run the tail: detections and metrics must equal the
    /// uninterrupted run bitwise.
    #[test]
    fn checkpointed_pipeline_resumes_bitwise_identically() {
        let mut gen = RandomRbfGenerator::new(8, 4, 2, 0.0, 17);
        let schema = gen.schema().clone();
        let mut instances = gen.take_instances(3_000);
        gen.regenerate();
        instances.extend(gen.take_instances(2_500));
        let spec = DetectorSpec::parse("rbm(mini_batch=25, warmup=4, persistence=1)").unwrap();
        let run = RunConfig { metric_window: 500, detector_batch: 37, ..Default::default() };
        let registry = DetectorRegistry::global();

        let uninterrupted = PipelineBuilder::new()
            .stream(ReplayStream::new(schema.clone(), instances.clone()))
            .stream_label("checkpointed")
            .detector_spec(spec.clone())
            .config(run)
            .run()
            .unwrap();
        assert!(!uninterrupted.detections.is_empty(), "drift must be detected");

        // Cut misaligned with both the detector micro-batch (37) and the
        // RBM mini-batch (25).
        let cut = 2_951;
        let mut head = PipelineStepper::from_spec(registry, &spec, &schema, run).unwrap();
        let mut sink = |_: &PipelineEvent<'_>| {};
        for inst in &instances[..cut] {
            head.step(inst.clone(), &mut sink);
        }
        let json = PipelineCheckpoint::capture(&head, schema.clone(), spec.clone())
            .unwrap()
            .to_json()
            .unwrap();
        drop(head);

        let checkpoint = PipelineCheckpoint::from_json(&json).unwrap();
        assert_eq!(checkpoint.schema, schema);
        assert_eq!(checkpoint.spec, spec);
        let mut resumed = checkpoint.resume(registry).unwrap();
        for inst in &instances[cut..] {
            resumed.step(inst.clone(), &mut sink);
        }
        let (result, _detector) = resumed.finish("checkpointed", &mut sink);
        assert_eq!(result.detections, uninterrupted.detections);
        assert_eq!(result.instances, uninterrupted.instances);
        assert_eq!(result.pm_auc, uninterrupted.pm_auc);
        assert_eq!(result.pm_gmean, uninterrupted.pm_gmean);
        assert_eq!(result.accuracy, uninterrupted.accuracy);
        assert_eq!(result.kappa, uninterrupted.kappa);
    }
}
