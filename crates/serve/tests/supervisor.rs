//! Integration suite of the autonomic supervisor (`serve::supervisor`).
//!
//! The load-bearing property is that the control plane is **invisible in
//! the results**: however aggressively the supervisor spills background
//! checkpoints and resizes the fleet, every stream's drift offsets and
//! prequential metrics stay bitwise-identical to a sequential
//! [`PipelineBuilder`] run over the same instances. On top of that the
//! suite pins the durability loop end to end: background checkpoints land
//! on disk in the binary codec while the server is live, and a **cold
//! restart** from whatever the latest spill happens to be resumes each
//! stream bitwise-identically to a run that was never interrupted.

use rbm_im_harness::checkpoint::codec;
use rbm_im_harness::pipeline::{PipelineBuilder, RunConfig, RunResult};
use rbm_im_harness::registry::{DetectorRegistry, DetectorSpec};
use rbm_im_serve::{
    deterministic_spec, CheckpointPolicy, HysteresisResizePolicy, IngestError, ResizeConfig,
    ServeConfig, ServeEventKind, ServerHandle, SnapshotSink, StreamClient, Supervisor,
    SupervisorConfig,
};
use rbm_im_streams::generators::RandomRbfGenerator;
use rbm_im_streams::{DataStream, Instance, ReplayStream, StreamExt, StreamSchema};
use std::fs;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// A unique scratch directory for spills.
fn scratch(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rbm-supervisor-{label}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A recorded drifting stream: RBF concept A, then a regenerated concept B
/// (sudden global drift at `drift_at`).
fn record_drifting_stream(
    seed: u64,
    drift_at: usize,
    total: usize,
) -> (StreamSchema, Vec<Instance>) {
    let mut gen = RandomRbfGenerator::new(8, 4, 2, 0.0, seed);
    let schema = gen.schema().clone();
    let mut instances = gen.take_instances(drift_at);
    gen.regenerate();
    instances.extend(gen.take_instances(total - drift_at));
    (schema, instances)
}

struct Feed {
    id: String,
    schema: StreamSchema,
    instances: Vec<Instance>,
    spec: DetectorSpec,
}

/// A small fleet mixing trainable RBM-IM variants with a classic detector.
fn fleet(total: usize) -> Vec<Feed> {
    let specs = [
        "rbm(mini_batch=25, warmup=4, persistence=1)",
        "adwin(delta=0.01)",
        "rbm-im(minibatch=25, hidden=8, warmup=4, persistence=1)",
        "rbm(mini_batch=25, warmup=4, persistence=1, learning_rate=0.1)",
    ];
    specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let (schema, instances) = record_drifting_stream(300 + i as u64, total / 2, total);
            Feed {
                id: format!("feed-{i:02}"),
                schema,
                instances,
                spec: DetectorSpec::parse(spec).unwrap(),
            }
        })
        .collect()
}

fn run_config() -> RunConfig {
    RunConfig { metric_window: 500, detector_batch: 50, ..Default::default() }
}

/// Sequential ground truth over the same instances, using the effective
/// (seed-injected) spec the server builds.
fn sequential_baseline(feed: &Feed, run: RunConfig, base_seed: u64) -> RunResult {
    let spec = deterministic_spec(DetectorRegistry::global(), base_seed, &feed.id, &feed.spec);
    PipelineBuilder::new()
        .stream(ReplayStream::new(feed.schema.clone(), feed.instances.clone()))
        .stream_label(feed.id.clone())
        .detector_spec(spec)
        .config(run)
        .run()
        .unwrap()
}

fn assert_results_match(context: &str, served: &RunResult, sequential: &RunResult) {
    assert_eq!(served.detections, sequential.detections, "{context}: drift offsets");
    assert_eq!(served.instances, sequential.instances, "{context}: instance count");
    assert_eq!(served.pm_auc, sequential.pm_auc, "{context}: pmAUC");
    assert_eq!(served.pm_gmean, sequential.pm_gmean, "{context}: pmGM");
    assert_eq!(served.accuracy, sequential.accuracy, "{context}: accuracy");
    assert_eq!(served.kappa, sequential.kappa, "{context}: kappa");
}

/// Blocking batched ingest with backpressure retry.
fn ingest_all(client: &StreamClient, mut batch: Vec<Instance>) {
    loop {
        match client.try_ingest_batch(batch) {
            Ok(()) => return,
            Err(IngestError::Full(rejected)) => {
                batch = rejected;
                std::thread::yield_now();
            }
            Err(IngestError::Closed(_)) => panic!("shard closed during ingest"),
        }
    }
}

/// The acceptance pin: an aggressively supervised run — background spills
/// every few milliseconds, urgent spills on drift, auto-resize with tight
/// cooldown driving live migrations under concurrent ingest — produces
/// results bitwise-identical to the sequential pipeline, the fleet never
/// leaves the policy bounds, and binary-codec checkpoints land on disk
/// while serving.
#[test]
fn supervised_run_is_bitwise_deterministic_within_policy_bounds() {
    const MIN_SHARDS: usize = 1;
    const MAX_SHARDS: usize = 5;
    let feeds = fleet(4_000);
    let run = run_config();
    let dir = scratch("determinism");
    let server = Arc::new(ServerHandle::start(ServeConfig {
        num_shards: 2,
        queue_capacity: 32,
        run,
        ..Default::default()
    }));
    let events = server.subscribe();
    let supervisor = Supervisor::start(
        Arc::clone(&server),
        SnapshotSink::new(&dir).unwrap(),
        SupervisorConfig {
            tick: Duration::from_millis(5),
            checkpoint: Some(CheckpointPolicy {
                every: Duration::from_millis(20),
                jitter: 0.5,
                on_drift: true,
            }),
            resize: Some(ResizeConfig {
                min_shards: MIN_SHARDS,
                max_shards: MAX_SHARDS,
                cooldown: Duration::from_millis(25),
                // λ=1.0 → raw backlog; tiny watermarks so the bounded
                // queues (32 messages) push the policy around: sustained
                // ingest grows the fleet, the post-drain idle shrinks it.
                policy: Box::new(HysteresisResizePolicy::new(40.0, 2.0, 1.0)),
            }),
            tier: None,
        },
    );

    // Concurrent feeders, one per stream, blasting micro-batches against
    // the small queues so real backlog accumulates.
    std::thread::scope(|scope| {
        for feed in &feeds {
            let client = server.attach(&feed.id, feed.schema.clone(), &feed.spec).unwrap();
            scope.spawn(move || {
                for chunk in feed.instances.chunks(43) {
                    ingest_all(&client, chunk.to_vec());
                }
            });
        }
    });
    server.drain();

    // Let the supervisor observe the idle fleet for a few cooldowns so the
    // scale-down path runs too.
    std::thread::sleep(Duration::from_millis(150));
    let report = supervisor.stop();
    assert!(report.errors.is_empty(), "supervisor errors: {:?}", report.errors);
    assert!(report.periodic_spills > 0, "background spills must have happened");

    // Every decision stayed within the policy bounds.
    for resize in &report.resizes {
        assert!(
            (MIN_SHARDS..=MAX_SHARDS).contains(&resize.new_shards),
            "resize to {} outside [{MIN_SHARDS}, {MAX_SHARDS}]",
            resize.new_shards
        );
    }
    assert!(
        !report.resizes.is_empty(),
        "tight watermarks + bounded queues must have driven at least one resize"
    );
    let final_shards = server.num_shards();
    assert!((MIN_SHARDS..=MAX_SHARDS).contains(&final_shards));

    // Binary spills are on disk (and only binary: the sink's default).
    let spills: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.to_string_lossy().contains(".checkpoint."))
        .collect();
    assert_eq!(spills.len(), feeds.len(), "one live spill per stream: {spills:?}");
    for path in &spills {
        assert!(path.to_string_lossy().ends_with(".checkpoint.bin"), "{path:?}");
        assert!(codec::is_binary(&fs::read(path).unwrap()), "{path:?} must carry the magic");
    }

    // The bus saw the fleet-level decisions and the spill notices.
    let mut resize_events = 0usize;
    let mut spill_events = 0usize;
    for event in events.try_iter() {
        match event.kind {
            ServeEventKind::ResizeDecision { old_shards, new_shards, .. } => {
                resize_events += 1;
                assert_ne!(old_shards, new_shards);
                assert_eq!(event.shard, new_shards, "fleet events carry the new count");
                assert!(event.stream.is_empty(), "fleet events have no stream id");
            }
            ServeEventKind::CheckpointSpilled { .. } => spill_events += 1,
            _ => {}
        }
    }
    assert_eq!(resize_events, report.resizes.len());
    assert!(spill_events as u64 >= report.periodic_spills + report.urgent_spills);

    // And none of it changed a single bit of the results.
    let report = Arc::try_unwrap(server).expect("supervisor stopped, last handle").shutdown();
    assert_eq!(report.streams.len(), feeds.len());
    assert_eq!(report.dropped_unknown, 0);
    assert_eq!(report.panicked_shards, 0);
    for summary in &report.streams {
        let feed = feeds.iter().find(|f| f.id == summary.stream).unwrap();
        let sequential = sequential_baseline(feed, run, ServeConfig::default().base_seed);
        assert!(!sequential.detections.is_empty(), "{}: baseline must drift", feed.id);
        assert_results_match(&format!("supervised {}", feed.id), &summary.result, &sequential);
    }
    let _ = fs::remove_dir_all(dir);
}

/// The cold-restart acceptance pin: kill a supervised server mid-stream
/// (no drain, no graceful checkpoint), restart from whatever the latest
/// background spill was, replay each stream's tail from the checkpoint's
/// recorded position — and finish bitwise-identical to a sequential run
/// that was never interrupted.
#[test]
fn cold_restart_from_latest_background_spill_is_bitwise_identical() {
    let feeds = fleet(4_500);
    let run = run_config();
    let dir = scratch("restart");
    let base_seed = ServeConfig::default().base_seed;

    // Phase 1: serve the head with background checkpointing, then kill.
    let head = 2_700usize;
    {
        let server = Arc::new(ServerHandle::start(ServeConfig {
            num_shards: 3,
            queue_capacity: 64,
            run,
            ..Default::default()
        }));
        let supervisor = Supervisor::start(
            Arc::clone(&server),
            SnapshotSink::new(&dir).unwrap(),
            SupervisorConfig {
                tick: Duration::from_millis(4),
                checkpoint: Some(CheckpointPolicy {
                    every: Duration::from_millis(15),
                    jitter: 0.4,
                    on_drift: true,
                }),
                resize: None,
                tier: None,
            },
        );
        let clients: Vec<StreamClient> = feeds
            .iter()
            .map(|feed| server.attach(&feed.id, feed.schema.clone(), &feed.spec).unwrap())
            .collect();
        for (i, feed) in feeds.iter().enumerate() {
            ingest_all(&clients[i], feed.instances[..head].to_vec());
        }
        server.drain();
        // Give every stream at least one post-drain spill window so the
        // latest checkpoint is guaranteed to exist (its exact position may
        // be anywhere up to `head` — the restart math below doesn't care).
        std::thread::sleep(Duration::from_millis(120));
        // Keep serving past the last spill, then KILL: no drain, no final
        // checkpoint — everything after the last spill must be recoverable
        // from the recorded stream alone.
        for (i, feed) in feeds.iter().enumerate() {
            ingest_all(&clients[i], feed.instances[head..head + 400].to_vec());
        }
        let report = supervisor.stop();
        assert!(report.errors.is_empty(), "supervisor errors: {:?}", report.errors);
        assert!(
            report.periodic_spills + report.urgent_spills >= feeds.len() as u64,
            "every stream must have spilled at least once"
        );
        // Abrupt stop: the shutdown report is discarded, like a crash that
        // took the process after the workers flushed their queues.
        let _ = Arc::try_unwrap(server).expect("supervisor stopped, last handle").shutdown();
    }

    // Phase 2: cold restart in a "new process": load the latest spills,
    // restore every stream, replay its tail from the checkpoint's recorded
    // position, and finish the stream.
    let sink = SnapshotSink::new(&dir).unwrap();
    let checkpoints = sink.load_checkpoints().unwrap();
    assert_eq!(checkpoints.len(), feeds.len(), "one spill per stream survives the kill");
    let server = ServerHandle::start(ServeConfig {
        num_shards: 2, // a different fleet size on purpose
        queue_capacity: 64,
        run,
        ..Default::default()
    });
    for checkpoint in &checkpoints {
        let feed = feeds.iter().find(|f| f.id == checkpoint.stream).unwrap();
        let position = checkpoint.checkpoint.processed().unwrap() as usize;
        assert!(
            position > 0 && position <= head + 400,
            "{}: spill position {position} out of range",
            feed.id
        );
        let client = server.restore_stream(checkpoint).unwrap();
        ingest_all(&client, feed.instances[position..].to_vec());
    }
    server.drain();
    let report = server.shutdown();
    assert_eq!(report.streams.len(), feeds.len());
    for summary in &report.streams {
        let feed = feeds.iter().find(|f| f.id == summary.stream).unwrap();
        let sequential = sequential_baseline(feed, run, base_seed);
        assert!(!sequential.detections.is_empty(), "{}: baseline must drift", feed.id);
        assert_results_match(&format!("cold restart {}", feed.id), &summary.result, &sequential);
    }
    let _ = fs::remove_dir_all(dir);
}

/// Drift-urgent spills fire, detached streams leave the schedule without
/// errors, and bus subscribers see the urgent spill notices after the
/// drift they were triggered by.
#[test]
fn urgent_spills_and_detach_lifecycle() {
    let feeds = fleet(4_000);
    let feed = &feeds[0]; // the RBM feed — its baseline detects drift
    let run = run_config();
    let dir = scratch("urgent");
    let server = Arc::new(ServerHandle::start(ServeConfig {
        num_shards: 2,
        queue_capacity: 64,
        run,
        ..Default::default()
    }));
    let events = server.subscribe();
    let supervisor = Supervisor::start(
        Arc::clone(&server),
        SnapshotSink::new(&dir).unwrap(),
        SupervisorConfig {
            tick: Duration::from_millis(4),
            // Long interval: any spill soon after the drift is urgent-path.
            checkpoint: Some(CheckpointPolicy {
                every: Duration::from_secs(3_600),
                jitter: 0.0,
                on_drift: true,
            }),
            resize: None,
            tier: None,
        },
    );

    let client = server.attach(&feed.id, feed.schema.clone(), &feed.spec).unwrap();
    let idle = server.attach("idle-stream", feeds[1].schema.clone(), &feeds[1].spec).unwrap();
    ingest_all(&idle, feeds[1].instances[..200].to_vec());
    for chunk in feed.instances.chunks(100) {
        ingest_all(&client, chunk.to_vec());
    }
    server.drain();
    // Detach mid-life: the supervisor must shed it from the schedule
    // silently.
    let detached = server.detach("idle-stream").unwrap();
    assert_eq!(detached.instances, 200);
    std::thread::sleep(Duration::from_millis(60));

    let report = supervisor.stop();
    assert!(report.errors.is_empty(), "supervisor errors: {:?}", report.errors);
    assert!(report.urgent_spills > 0, "drift must have forced an urgent spill");

    let mut drift_seen = false;
    let mut urgent_after_drift = false;
    for event in events.try_iter() {
        match event.kind {
            ServeEventKind::Drift { .. } if event.stream.as_ref() == feed.id => drift_seen = true,
            ServeEventKind::CheckpointSpilled { urgent: true, position } => {
                assert!(drift_seen, "urgent spill must follow a drift");
                assert!(position > 0);
                urgent_after_drift = true;
            }
            _ => {}
        }
    }
    assert!(urgent_after_drift, "bus must carry the urgent spill notice");

    let _ = Arc::try_unwrap(server).expect("supervisor stopped, last handle").shutdown();
    let _ = fs::remove_dir_all(dir);
}

/// A resize policy that demands a different fleet size on every tick —
/// the most hostile schedule possible: with a zero cooldown, every spill
/// round runs right after (or between) live migrations.
struct TogglePolicy {
    big: bool,
}

impl rbm_im_serve::ResizePolicy for TogglePolicy {
    fn desired_shards(
        &mut self,
        _loads: &[rbm_im_serve::ShardLoad],
        current: usize,
    ) -> Option<usize> {
        self.big = !self.big;
        Some(if self.big { current + 1 } else { current.saturating_sub(1).max(1) })
    }
}

/// Edge case: a resize decision landing in the middle of the spill
/// schedule — every tick resizes the fleet (zero cooldown, toggling
/// policy) *and* spills every stream (`every: ZERO`). Migration-adjacent
/// checkpoints must neither error nor change a bit of the results.
#[test]
fn resize_decisions_mid_spill_round_stay_bitwise_and_error_free() {
    let feeds = fleet(2_500);
    let run = run_config();
    let dir = scratch("resize-mid-spill");
    let server = Arc::new(ServerHandle::start(ServeConfig {
        num_shards: 2,
        queue_capacity: 64,
        run,
        ..Default::default()
    }));
    let supervisor = Supervisor::start(
        Arc::clone(&server),
        SnapshotSink::new(&dir).unwrap(),
        SupervisorConfig {
            tick: Duration::from_millis(2),
            // Everything is due every tick: each spill round runs fresh on
            // the heels of that tick's resize.
            checkpoint: Some(CheckpointPolicy {
                every: Duration::ZERO,
                jitter: 0.0,
                on_drift: true,
            }),
            resize: Some(ResizeConfig {
                min_shards: 1,
                max_shards: 4,
                cooldown: Duration::ZERO,
                policy: Box::new(TogglePolicy { big: false }),
            }),
            tier: None,
        },
    );

    std::thread::scope(|scope| {
        for feed in &feeds {
            let client = server.attach(&feed.id, feed.schema.clone(), &feed.spec).unwrap();
            scope.spawn(move || {
                for chunk in feed.instances.chunks(37) {
                    ingest_all(&client, chunk.to_vec());
                }
            });
        }
    });
    server.drain();
    // Post-drain window: the toggling policy keeps resizing the idle
    // fleet while full spill rounds keep running between migrations.
    std::thread::sleep(Duration::from_millis(800));

    let report = supervisor.stop();
    assert!(report.errors.is_empty(), "supervisor errors: {:?}", report.errors);
    assert!(
        report.resizes.len() >= 4,
        "the toggling policy must have resized repeatedly, got {:?}",
        report.resizes
    );
    assert!(report.periodic_spills > 0, "spill rounds must have run between migrations");

    let final_report = Arc::try_unwrap(server).expect("supervisor stopped").shutdown();
    assert_eq!(final_report.panicked_shards, 0);
    assert_eq!(final_report.streams.len(), feeds.len());
    for summary in &final_report.streams {
        let feed = feeds.iter().find(|f| f.id == summary.stream).unwrap();
        let sequential = sequential_baseline(feed, run, ServeConfig::default().base_seed);
        assert_results_match(
            &format!("resize-mid-spill {}", feed.id),
            &summary.result,
            &sequential,
        );
    }
    let _ = fs::remove_dir_all(dir);
}

/// Edge case: a stream that drifts *and* detaches inside the same tick
/// window. The event fold sees `Attached`, `Drift` (urgent mark) and
/// `Detached` together, so the schedule entry dies before the spill round
/// — no panic, no spill attempt, no checkpoint file, no `.tmp` orphan.
#[test]
fn urgent_spill_for_stream_detached_same_tick_leaves_no_orphan() {
    let (schema, instances) = record_drifting_stream(77, 700, 1_400);
    let dir = scratch("detach-same-tick");
    let server = Arc::new(ServerHandle::start(ServeConfig {
        num_shards: 2,
        run: run_config(),
        ..Default::default()
    }));
    let supervisor = Supervisor::start(
        Arc::clone(&server),
        SnapshotSink::new(&dir).unwrap(),
        SupervisorConfig {
            // A long tick: the whole attach→drift→detach lifecycle below
            // completes inside the first window, so one fold sees it all.
            tick: Duration::from_millis(400),
            checkpoint: Some(CheckpointPolicy {
                every: Duration::from_secs(3_600),
                jitter: 0.0,
                on_drift: true,
            }),
            resize: None,
            tier: None,
        },
    );

    // ADWIN: cheap, reliably fires on the recorded concept change.
    let spec = DetectorSpec::parse("adwin(delta=0.01)").unwrap();
    let client = server.attach("ephemeral", schema, &spec).unwrap();
    ingest_all(&client, instances);
    server.drain();
    let result = server.detach("ephemeral").unwrap();
    assert!(!result.detections.is_empty(), "the drift must actually have fired");

    // Let a few ticks run so the fold + spill round provably execute.
    std::thread::sleep(Duration::from_millis(900));
    let report = supervisor.stop();
    assert!(report.errors.is_empty(), "supervisor errors: {:?}", report.errors);
    assert_eq!(report.urgent_spills, 0, "the detach must have cancelled the urgent spill");

    let leftovers: Vec<String> = fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    assert!(
        leftovers.is_empty(),
        "no spill file or temp orphan may exist for the detached stream: {leftovers:?}"
    );

    let final_report = Arc::try_unwrap(server).expect("supervisor stopped").shutdown();
    assert_eq!(final_report.panicked_shards, 0);
    let _ = fs::remove_dir_all(dir);
}

/// Edge case, stressed: rapid attach→ingest→detach churn under a 1 ms
/// tick with everything due every tick. Spill attempts constantly race
/// stream detaches (the `UnknownStream` skip path); none of it may panic,
/// error, or leave a `.tmp` orphan in the sink directory.
#[test]
fn attach_detach_churn_under_eager_spills_leaves_no_tmp_orphans() {
    let (schema, instances) = record_drifting_stream(78, 100, 200);
    let dir = scratch("churn");
    let server = Arc::new(ServerHandle::start(ServeConfig {
        num_shards: 2,
        run: run_config(),
        ..Default::default()
    }));
    let supervisor = Supervisor::start(
        Arc::clone(&server),
        SnapshotSink::new(&dir).unwrap(),
        SupervisorConfig {
            tick: Duration::from_millis(1),
            checkpoint: Some(CheckpointPolicy {
                every: Duration::ZERO,
                jitter: 0.0,
                on_drift: true,
            }),
            resize: None,
            tier: None,
        },
    );

    let spec = DetectorSpec::parse("adwin(delta=0.01)").unwrap();
    for round in 0..60 {
        let id = format!("eph-{round:02}");
        let client = server.attach(&id, schema.clone(), &spec).unwrap();
        ingest_all(&client, instances.clone());
        let result = server.detach(&id).unwrap();
        assert_eq!(result.instances, instances.len() as u64);
    }

    let report = supervisor.stop();
    assert!(report.errors.is_empty(), "supervisor errors: {:?}", report.errors);

    let tmp_orphans: Vec<String> = fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|name| name.ends_with(".tmp"))
        .collect();
    assert!(tmp_orphans.is_empty(), "aborted spills must not strand temp files: {tmp_orphans:?}");

    let final_report = Arc::try_unwrap(server).expect("supervisor stopped").shutdown();
    assert_eq!(final_report.panicked_shards, 0);
    assert_eq!(final_report.dropped_unknown, 0);
    let _ = fs::remove_dir_all(dir);
}
