//! End-to-end fast-math contract: on every benchmark in the 24-stream
//! registry, an RBM-IM detector running the fast-math activation path
//! (`fastmath=on` in the spec grammar) must raise drift at **exactly** the
//! same stream offsets as the exact path, and the surrounding prequential
//! pipeline must report identical final metrics. The ≤1e-9 per-activation
//! bound (pinned in `crates/rbm/tests/fastmath.rs`) is far below the margin
//! of every drift threshold, so any divergence here is a real bug, not
//! noise.
//!
//! Streams are shortened via `BuildConfig::scale_divisor` (each floors at
//! the registry's 2 000-instance minimum) and capped so the sweep stays
//! test-suite friendly while every benchmark family is still exercised.

use rbm_im_harness::pipeline::{PipelineBuilder, RunConfig, RunResult};
use rbm_im_harness::registry::DetectorSpec;
use rbm_im_streams::registry::{all_benchmarks, BenchmarkSpec, BuildConfig};

fn run_spec(benchmark: &BenchmarkSpec, spec: &str) -> RunResult {
    let build = BuildConfig { scale_divisor: 10_000, ..Default::default() };
    let config = RunConfig {
        metric_window: 500,
        max_instances: Some(2_000),
        detector_batch: 10,
        ..Default::default()
    };
    PipelineBuilder::new()
        .boxed_stream(benchmark.build(&build))
        .stream_label(benchmark.name.clone())
        .detector_spec(DetectorSpec::parse(spec).expect("spec parses"))
        .config(config)
        .run()
        .expect("pipeline run succeeds")
}

#[test]
fn fast_math_drift_offsets_match_exact_on_every_registry_benchmark() {
    // A twitchy detector configuration (small batches, minimal warm-up) so
    // a meaningful number of the shortened streams actually fire.
    const EXACT: &str = "rbm(mini_batch=10, warmup=1, persistence=1, seed=7)";
    const FAST: &str = "rbm(mini_batch=10, warmup=1, persistence=1, seed=7, fastmath=on)";

    let benchmarks = all_benchmarks();
    assert_eq!(benchmarks.len(), 24, "registry sweep covers the full Table I set");

    let mut streams_with_drift = 0usize;
    for benchmark in &benchmarks {
        let exact = run_spec(benchmark, EXACT);
        let fast = run_spec(benchmark, FAST);
        assert_eq!(
            exact.detections, fast.detections,
            "{}: fast-math moved a drift offset",
            benchmark.name
        );
        // With identical drift decisions the classifier resets at the same
        // positions, so the prequential metrics must agree bitwise too.
        assert_eq!(exact.pm_auc, fast.pm_auc, "{}: pm_auc diverged", benchmark.name);
        assert_eq!(exact.pm_gmean, fast.pm_gmean, "{}: pm_gmean diverged", benchmark.name);
        assert_eq!(exact.accuracy, fast.accuracy, "{}: accuracy diverged", benchmark.name);
        assert_eq!(exact.kappa, fast.kappa, "{}: kappa diverged", benchmark.name);
        if !exact.detections.is_empty() {
            streams_with_drift += 1;
        }
    }
    // The agreement must not be vacuous: at least some of the shortened
    // streams have to produce actual drift signals for the offsets to pin.
    assert!(
        streams_with_drift >= 3,
        "only {streams_with_drift} of 24 shortened streams fired — sweep too weak to pin offsets"
    );
}
