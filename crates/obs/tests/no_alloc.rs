//! Enforces the hot-path contract: once instruments are registered,
//! `Counter::inc`/`add`, `Gauge::set`/`add`, and `Histogram::record`
//! perform **zero** heap allocations. Same counting-allocator harness as
//! `crates/rbm/tests/no_alloc.rs`; one test per file so no concurrent
//! test pollutes the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use rbm_im_obs::MetricsRegistry;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Only the test thread's allocations are counted while this is set —
    /// libtest's harness threads allocate concurrently and must not
    /// pollute the measurement.
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

fn count_here() {
    if COUNTING.try_with(Cell::get).unwrap_or(false) {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
    }
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_here();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count_here();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_here();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[test]
fn recording_does_not_allocate() {
    // Registration is the cold path and may allocate freely.
    let registry = MetricsRegistry::new();
    let counter = registry.counter("rbm_test_ops_total", &[("shard", "0")]);
    let gauge = registry.gauge("rbm_test_depth", &[("shard", "0")]);
    let histogram = registry.histogram("rbm_test_latency_seconds", &[("shard", "0")]);

    // Warm-up (nothing to grow, but mirror the rbm harness shape).
    for v in 0..16u64 {
        counter.inc();
        gauge.set(v as i64);
        histogram.record(v * 1_000);
    }

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    COUNTING.with(|flag| flag.set(true));
    for v in 0..10_000u64 {
        counter.inc();
        counter.add(3);
        gauge.add(1);
        gauge.set(-(v as i64));
        // Sweep the full bucket range, including the top octave.
        histogram.record(v);
        histogram.record(v.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    }
    COUNTING.with(|flag| flag.set(false));
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(
        after - before,
        0,
        "metric recording must not touch the allocator ({} allocations observed)",
        after - before
    );
    assert_eq!(counter.get(), 16 + 10_000 * 4);
    assert_eq!(histogram.snapshot().count(), 16 + 20_000);
}
