//! Integration suite of the sharded serving subsystem.
//!
//! The load-bearing property is **determinism**: for the same seeded
//! streams, serving must produce drift offsets and prequential metrics that
//! are (a) identical at every shard count and under any ingest
//! interleaving, and (b) identical to a sequential
//! [`PipelineBuilder`] run over the same instances — the serving layer adds
//! concurrency, never different results. Shard counts default to 1, 4 and
//! 8 and can be pinned from CI via `RBM_SERVE_SHARDS` (comma-separated).

use rbm_im_detectors::{DetectorState, DriftDetector, Observation};
use rbm_im_harness::pipeline::{PipelineBuilder, RunConfig, RunResult};
use rbm_im_harness::registry::{DetectorRegistry, DetectorSpec};
use rbm_im_serve::{IngestError, ServeConfig, ServeEventKind, ServerHandle, StreamClient};
use rbm_im_streams::generators::RandomRbfGenerator;
use rbm_im_streams::{DataStream, Instance, ReplayStream, StreamExt, StreamSchema};
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// Shard counts exercised by the determinism tests: `RBM_SERVE_SHARDS`
/// (comma-separated) when set — CI runs the suite once with `1` and once
/// with `8` — otherwise 1, 4 and 8.
fn shard_counts() -> Vec<usize> {
    match std::env::var("RBM_SERVE_SHARDS") {
        Ok(raw) => {
            raw.split(',').filter_map(|s| s.trim().parse().ok()).filter(|&n| n >= 1).collect()
        }
        Err(_) => vec![1, 4, 8],
    }
}

/// A recorded drifting stream: RBF concept A, then a regenerated concept B
/// (sudden global drift at `drift_at`).
fn record_drifting_stream(
    seed: u64,
    features: usize,
    classes: usize,
    drift_at: usize,
    total: usize,
) -> (StreamSchema, Vec<Instance>) {
    let mut gen = RandomRbfGenerator::new(features, classes, 2, 0.0, seed);
    let schema = gen.schema().clone();
    let mut instances = gen.take_instances(drift_at);
    gen.regenerate();
    instances.extend(gen.take_instances(total - drift_at));
    (schema, instances)
}

struct Feed {
    id: String,
    schema: StreamSchema,
    instances: Vec<Instance>,
    spec: DetectorSpec,
}

/// A small fleet of drifting feeds with mixed detector specs (trainable
/// RBM-IM variants and classic detectors).
fn fleet() -> Vec<Feed> {
    let specs = [
        "rbm(mini_batch=25, warmup=4, persistence=1)",
        "rbm-im(minibatch=25, hidden=8, warmup=4, persistence=1)",
        "adwin(delta=0.01)",
        "rbm(mini_batch=25, warmup=4, persistence=1, learning_rate=0.1)",
        "ddm",
        "adwin",
    ];
    specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let (schema, instances) = record_drifting_stream(100 + i as u64, 8, 4, 2_500, 4_500);
            Feed {
                id: format!("feed-{i:02}"),
                schema,
                instances,
                spec: DetectorSpec::parse(spec).unwrap(),
            }
        })
        .collect()
}

fn run_config(detector_batch: usize) -> RunConfig {
    RunConfig { metric_window: 500, detector_batch, ..Default::default() }
}

/// Sequential ground truth: `PipelineBuilder` over a replay of the recorded
/// instances, using the exact spec the server builds (after deterministic
/// seed injection).
fn sequential_baseline(server: &ServerHandle, feed: &Feed, run: RunConfig) -> RunResult {
    let spec = server.effective_spec(&feed.id, &feed.spec);
    PipelineBuilder::new()
        .stream(ReplayStream::new(feed.schema.clone(), feed.instances.clone()))
        .stream_label(feed.id.clone())
        .detector_spec(spec)
        .config(run)
        .run()
        .unwrap()
}

fn assert_results_match(context: &str, served: &RunResult, sequential: &RunResult) {
    assert_eq!(served.detections, sequential.detections, "{context}: drift offsets");
    assert_eq!(served.instances, sequential.instances, "{context}: instance count");
    assert_eq!(served.pm_auc, sequential.pm_auc, "{context}: pmAUC");
    assert_eq!(served.pm_gmean, sequential.pm_gmean, "{context}: pmGM");
    assert_eq!(served.accuracy, sequential.accuracy, "{context}: accuracy");
    assert_eq!(served.kappa, sequential.kappa, "{context}: kappa");
    assert_eq!(served.detector, sequential.detector, "{context}: detector label");
}

/// Ingest a micro-batch with bounded-queue backpressure handled by retry.
fn ingest_all(client: &StreamClient, mut batch: Vec<Instance>) {
    loop {
        match client.try_ingest_batch(batch) {
            Ok(()) => return,
            Err(IngestError::Full(rejected)) => {
                batch = rejected;
                std::thread::yield_now();
            }
            Err(IngestError::Closed(_)) => panic!("shard closed during ingest"),
        }
    }
}

/// The acceptance-criteria pin: identical drift offsets and prequential
/// metrics for the same seeded streams at every shard count, matching the
/// sequential pipeline — under round-robin interleaved ingest whose chunk
/// sizes differ per shard count (so the interleaving genuinely varies).
#[test]
fn serving_is_deterministic_across_shard_counts_and_matches_sequential() {
    let feeds = fleet();
    let run = run_config(50);
    let mut per_shard_results: Vec<(usize, HashMap<String, RunResult>)> = Vec::new();

    for (round, &num_shards) in shard_counts().iter().enumerate() {
        let server = ServerHandle::start(ServeConfig {
            num_shards,
            queue_capacity: 64,
            run,
            ..Default::default()
        });
        let events = server.subscribe();
        let clients: Vec<StreamClient> = feeds
            .iter()
            .map(|feed| server.attach(&feed.id, feed.schema.clone(), &feed.spec).unwrap())
            .collect();

        // Round-robin interleaved ingest; chunk size varies per round so
        // each shard count sees a different interleaving of the same
        // per-stream sequences.
        let chunk = [17usize, 31, 53][round % 3];
        let mut cursors = vec![0usize; feeds.len()];
        loop {
            let mut progressed = false;
            for (i, feed) in feeds.iter().enumerate() {
                let cursor = cursors[i];
                if cursor >= feed.instances.len() {
                    continue;
                }
                let end = (cursor + chunk).min(feed.instances.len());
                ingest_all(&clients[i], feed.instances[cursor..end].to_vec());
                cursors[i] = end;
                progressed = true;
            }
            if !progressed {
                break;
            }
        }

        server.drain();
        let report = server.shutdown();
        assert_eq!(report.streams.len(), feeds.len());
        assert_eq!(report.dropped_unknown, 0);

        // Bus drift events must agree with the per-stream summaries.
        let mut bus_drifts: HashMap<String, Vec<u64>> = HashMap::new();
        for event in events.try_iter() {
            if let ServeEventKind::Drift { position, .. } = event.kind {
                bus_drifts.entry(event.stream.to_string()).or_default().push(position);
            }
        }
        let mut results = HashMap::new();
        for summary in report.streams {
            let from_bus = bus_drifts.remove(&summary.stream).unwrap_or_default();
            assert_eq!(
                from_bus, summary.result.detections,
                "{num_shards} shards, {}: bus events vs summary",
                summary.stream
            );
            results.insert(summary.stream.clone(), summary.result);
        }
        per_shard_results.push((num_shards, results));
    }

    // Every shard count agrees with the sequential pipeline (and therefore
    // with every other shard count).
    let reference_server = ServerHandle::start(ServeConfig::default());
    for feed in &feeds {
        let sequential = sequential_baseline(&reference_server, feed, run);
        assert!(
            !sequential.detections.is_empty(),
            "{}: the injected drift must be detected so the pin is meaningful",
            feed.id
        );
        for (num_shards, results) in &per_shard_results {
            let served = &results[&feed.id];
            assert_results_match(
                &format!("{} @ {num_shards} shards", feed.id),
                served,
                &sequential,
            );
        }
    }
    reference_server.shutdown();
}

/// Satellite: drift-event *offsets* stay exact across micro-batch and shard
/// boundaries — a detector micro-batch (37) deliberately misaligned with
/// RBM-IM's internal mini-batch (25), fed in uneven client chunks, must
/// report the same global instance offsets as the sequential run.
#[test]
fn drift_offsets_exact_across_micro_batch_and_shard_boundaries() {
    let (schema, instances) = record_drifting_stream(7, 8, 4, 2_500, 4_500);
    let spec = DetectorSpec::parse("rbm(mini_batch=25, warmup=4, persistence=1)").unwrap();
    let run = run_config(37);

    for num_shards in [1usize, 3] {
        let server = ServerHandle::start(ServeConfig {
            num_shards,
            queue_capacity: 32,
            run,
            ..Default::default()
        });
        let events = server.subscribe();
        let client = server.attach("offsets", schema.clone(), &spec).unwrap();
        let sequential = sequential_baseline(
            &server,
            &Feed {
                id: "offsets".into(),
                schema: schema.clone(),
                instances: instances.clone(),
                spec: spec.clone(),
            },
            run,
        );

        // Uneven chunk sizes crossing both the 37-instance micro-batch and
        // the 25-instance RBM mini-batch boundaries.
        let pattern = [1usize, 7, 13, 29, 3, 41];
        let mut cursor = 0;
        let mut step = 0;
        while cursor < instances.len() {
            let end = (cursor + pattern[step % pattern.len()]).min(instances.len());
            ingest_all(&client, instances[cursor..end].to_vec());
            cursor = end;
            step += 1;
        }
        // Detach (not shutdown) so the trailing partial micro-batch flush
        // path is exercised through the detach flow too.
        server.drain();
        let result = server.detach("offsets").unwrap();
        assert_results_match(&format!("offsets @ {num_shards} shards"), &result, &sequential);
        assert!(!result.detections.is_empty(), "drift must be detected");

        let drift_positions: Vec<u64> = events
            .try_iter()
            .filter_map(|event| match event.kind {
                ServeEventKind::Drift { position, .. } => Some(position),
                _ => None,
            })
            .collect();
        assert_eq!(drift_positions, sequential.detections, "bus offsets @ {num_shards} shards");
        server.shutdown();
    }
}

/// A detector whose `update` blocks on a gate — used to hold a shard worker
/// mid-step so queue backpressure becomes deterministic.
struct GateDetector {
    gate: Arc<(Mutex<GateState>, Condvar)>,
}

#[derive(Default)]
struct GateState {
    open: bool,
    entered: bool,
}

impl DriftDetector for GateDetector {
    fn update(&mut self, _observation: &Observation<'_>) -> DetectorState {
        let (lock, condvar) = &*self.gate;
        let mut state = lock.lock().unwrap();
        state.entered = true;
        condvar.notify_all();
        while !state.open {
            state = condvar.wait(state).unwrap();
        }
        DetectorState::Stable
    }
    fn state(&self) -> DetectorState {
        DetectorState::Stable
    }
    fn reset(&mut self) {}
    fn name(&self) -> &'static str {
        "Gate"
    }
}

/// Backpressure is explicit: once the shard worker is held mid-step and the
/// bounded queue is full, `try_ingest` fails fast with `Full` and returns
/// the rejected instance; after the gate opens, everything queued is
/// processed.
#[test]
fn try_ingest_reports_backpressure_on_a_full_queue() {
    let gate = Arc::new((Mutex::new(GateState::default()), Condvar::new()));
    let mut registry = DetectorRegistry::with_defaults();
    {
        let gate = Arc::clone(&gate);
        registry.register("gate", &[], move |_, _, _| {
            Ok(Box::new(GateDetector { gate: Arc::clone(&gate) }))
        });
    }
    let capacity = 4;
    let server = ServerHandle::start_with_registry(
        ServeConfig {
            num_shards: 1,
            queue_capacity: capacity,
            run: run_config(1),
            ..Default::default()
        },
        Arc::new(registry),
    );
    let schema = StreamSchema::new("gated", 2, 2);
    let client = server.attach("gated", schema, &DetectorSpec::new("gate")).unwrap();
    let instance = |i: u64| Instance::with_index(vec![0.0, 1.0], 0, i);

    // First instance: wait until the worker is provably holding it inside
    // the detector (so the queue is empty again and counts are exact).
    client.try_ingest(instance(0)).unwrap();
    {
        let (lock, condvar) = &*gate;
        let mut state = lock.lock().unwrap();
        while !state.entered {
            state = condvar.wait(state).unwrap();
        }
    }

    // Fill the queue exactly, then observe explicit backpressure.
    for i in 0..capacity as u64 {
        client.try_ingest(instance(1 + i)).unwrap();
    }
    let rejected = match client.try_ingest(instance(99)) {
        Err(IngestError::Full(rejected)) => rejected,
        other => panic!("expected Full, got {other:?}"),
    };
    assert_eq!(rejected.len(), 1, "the rejected instance rides back to the caller");
    assert_eq!(rejected[0].index, 99);

    // Open the gate; everything queued flows through.
    {
        let (lock, condvar) = &*gate;
        lock.lock().unwrap().open = true;
        condvar.notify_all();
    }
    server.drain();
    let report = server.shutdown();
    assert_eq!(report.streams.len(), 1);
    assert_eq!(report.streams[0].result.instances, 1 + capacity as u64);
}

/// Shard workspace pooling: successive RBM streams on a shard reuse the
/// scratch workspace a detached predecessor returned.
#[test]
fn rbm_workspaces_are_pooled_across_streams_on_a_shard() {
    let server = ServerHandle::start(ServeConfig {
        num_shards: 1,
        run: run_config(25),
        ..Default::default()
    });
    let spec = DetectorSpec::parse("rbm(mini_batch=25)").unwrap();
    let mut gen = RandomRbfGenerator::new(5, 3, 2, 0.0, 3);
    let schema = gen.schema().clone();

    let first = server.attach("pool-a", schema.clone(), &spec).unwrap();
    ingest_all(&first, gen.take_instances(200));
    server.drain();
    server.detach("pool-a").unwrap();

    let second = server.attach("pool-b", schema.clone(), &spec).unwrap();
    ingest_all(&second, gen.take_instances(200));
    server.drain();
    let report = server.shutdown();

    assert_eq!(report.workspace_reuse_misses, 1, "only the first attach allocates");
    if std::env::var("RBM_HIBERNATE").is_ok() {
        // Forced hibernation thrashes the pool (every message returns the
        // workspace and checks it out again), so only the lower bound and
        // the single-allocation invariant above are meaningful.
        assert!(report.workspace_reuse_hits >= 1, "pool-a's workspace is reused");
    } else {
        assert_eq!(report.workspace_reuse_hits, 1, "the second attach reuses pool-a's workspace");
    }
}

/// Attach/detach lifecycle errors and unknown-id ingest accounting.
#[test]
fn lifecycle_errors_and_unknown_ingest_are_surfaced() {
    let server = ServerHandle::start(ServeConfig { num_shards: 2, ..Default::default() });
    let schema = StreamSchema::new("s", 3, 2);
    let spec = DetectorSpec::new("adwin");

    server.attach("dup", schema.clone(), &spec).unwrap();
    let err = server.attach("dup", schema.clone(), &spec).unwrap_err();
    assert!(matches!(err, rbm_im_serve::ServeError::AlreadyAttached(_)), "{err}");

    let err = server.detach("ghost").unwrap_err();
    assert!(matches!(err, rbm_im_serve::ServeError::UnknownStream(_)), "{err}");

    let err = server.attach("bad-spec", schema.clone(), &DetectorSpec::new("nope")).unwrap_err();
    assert!(matches!(err, rbm_im_serve::ServeError::Registry(_)), "{err}");

    // Ingest for an unattached id is dropped and accounted, never lost
    // silently.
    server.try_ingest("ghost", Instance::new(vec![0.0, 0.0, 0.0], 0)).unwrap();
    server.drain();
    let report = server.shutdown();
    assert_eq!(report.dropped_unknown, 1);
    assert_eq!(report.streams.len(), 1, "only `dup` was still attached");
}

/// The bus carries the full lifecycle: attach notice, periodic metric
/// snapshots at the configured cadence, and the detach notice with the
/// final result.
#[test]
fn event_bus_publishes_lifecycle_and_snapshots() {
    let run = RunConfig {
        metric_window: 100,
        snapshot_every: Some(100),
        detector_batch: 25,
        ..Default::default()
    };
    let server = ServerHandle::start(ServeConfig { num_shards: 2, run, ..Default::default() });
    let events = server.subscribe();
    let mut gen = RandomRbfGenerator::new(4, 2, 1, 0.0, 9);
    let schema = gen.schema().clone();
    let spec = DetectorSpec::parse("rbm(mini_batch=25)").unwrap();
    let client = server.attach("lifecycle", schema, &spec).unwrap();
    ingest_all(&client, gen.take_instances(500));
    server.drain();
    let report = server.shutdown();
    assert_eq!(report.streams[0].result.instances, 500);

    let mut attached = 0;
    let mut snapshots = Vec::new();
    let mut detached = 0;
    for event in events.try_iter() {
        assert_eq!(&*event.stream, "lifecycle");
        assert_eq!(event.shard, server_shard(&event), "events carry the owning shard");
        match event.kind {
            ServeEventKind::Attached => attached += 1,
            ServeEventKind::Snapshot { position, .. } => snapshots.push(position),
            ServeEventKind::Detached { ref result } => {
                detached += 1;
                assert_eq!(result.instances, 500);
            }
            _ => {}
        }
    }
    assert_eq!(attached, 1);
    assert_eq!(detached, 1);
    assert_eq!(snapshots, vec![99, 199, 299, 399, 499], "snapshot every 100 instances");
}

/// Events always report the shard the router assigns to the id.
fn server_shard(event: &rbm_im_serve::ServeEvent) -> usize {
    rbm_im_serve::StreamRouter::new(2).shard_of(&event.stream)
}

/// Kernel execution modes are serving-transparent. A stream attached with
/// `parallel=on` (row-parallel kernels, pool oversubscribed to 4 workers so
/// the path genuinely executes on a 1-core runner) is **bitwise identical**
/// — drift offsets and every prequential metric — to the same stream with
/// `parallel=off` and to the sequential pipeline; `fastmath=on` keeps the
/// drift offsets and metrics identical end-to-end as well (its ≤1e-9
/// activation deviation is far below every drift threshold).
#[test]
fn kernel_mode_specs_serve_bitwise_identical_results() {
    rayon::ensure_pool(4);
    let (schema, instances) = record_drifting_stream(400, 8, 4, 2_500, 4_500);

    let serve_spec = |spec_text: &str| -> (RunResult, RunResult) {
        let spec = DetectorSpec::parse(spec_text).unwrap();
        let server = ServerHandle::start(ServeConfig {
            num_shards: 2,
            run: run_config(50),
            ..Default::default()
        });
        let feed = Feed {
            id: "mode".to_string(),
            schema: schema.clone(),
            instances: instances.clone(),
            spec: spec.clone(),
        };
        let sequential = sequential_baseline(&server, &feed, run_config(50));
        let client = server.attach("mode", schema.clone(), &spec).unwrap();
        for chunk in instances.chunks(37) {
            client.ingest_batch(chunk.to_vec()).unwrap();
        }
        server.drain();
        let report = server.shutdown();
        let summary =
            report.streams.iter().find(|s| s.stream == "mode").expect("stream summary present");
        (summary.result.clone(), sequential)
    };

    const BASE: &str = "mini_batch=25, warmup=4, persistence=1";
    let (off, off_seq) = serve_spec(&format!("rbm({BASE}, parallel=off)"));
    let (on, on_seq) = serve_spec(&format!("rbm({BASE}, parallel=on, threads=2)"));
    let (fast, fast_seq) = serve_spec(&format!("rbm({BASE}, fastmath=on)"));

    // Each mode individually matches its own sequential ground truth.
    assert_results_match("parallel=off served vs sequential", &off, &off_seq);
    assert_results_match("parallel=on served vs sequential", &on, &on_seq);
    assert_results_match("fastmath=on served vs sequential", &fast, &fast_seq);
    assert!(!off.detections.is_empty(), "the injected drift must fire for the pin to bite");

    // Cross-mode (labels differ, so compare semantic fields directly):
    // parallel-exact is bitwise, fast-math keeps identical drift decisions
    // and therefore identical classifier trajectories.
    for (context, other) in [("parallel=on", &on), ("fastmath=on", &fast)] {
        assert_eq!(off.detections, other.detections, "{context}: drift offsets vs exact");
        assert_eq!(off.pm_auc, other.pm_auc, "{context}: pmAUC vs exact");
        assert_eq!(off.pm_gmean, other.pm_gmean, "{context}: pmGM vs exact");
        assert_eq!(off.accuracy, other.accuracy, "{context}: accuracy vs exact");
        assert_eq!(off.kappa, other.kappa, "{context}: kappa vs exact");
    }
}
