//! SEA concepts generator (Street & Kim, 2001).
//!
//! Three uniform features in `[0, 10]`; only the first two are relevant. The
//! classical binary concept is `f1 + f2 <= θ` with four canonical thresholds
//! (8, 9, 7, 9.5) defining four concepts. This implementation keeps the four
//! canonical concepts and extends the labeling to `M` classes by splitting
//! `f1 + f2` into `M` bands anchored at the concept threshold, so concept
//! switches remain real drifts in the multi-class setting.
//!
//! SEA is not one of the Table I benchmarks but is used by the real-world
//! substitutes and the examples as a compact, easily interpretable stream.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::instance::{Instance, StreamSchema};
use crate::stream::DataStream;

/// Canonical SEA concept thresholds.
const SEA_THRESHOLDS: [f64; 4] = [8.0, 9.0, 7.0, 9.5];

/// SEA concepts generator.
pub struct SeaGenerator {
    schema: StreamSchema,
    seed: u64,
    rng: StdRng,
    concept: usize,
    num_classes: usize,
    noise: f64,
    counter: u64,
}

impl SeaGenerator {
    /// Creates a SEA stream with the given class count and label-noise
    /// fraction, starting in concept 0.
    pub fn new(num_classes: usize, noise: f64, seed: u64) -> Self {
        assert!(num_classes >= 2);
        assert!((0.0..1.0).contains(&noise));
        let schema = StreamSchema::new(format!("sea-c{num_classes}"), 3, num_classes);
        SeaGenerator {
            schema,
            seed,
            rng: StdRng::seed_from_u64(seed),
            concept: 0,
            num_classes,
            noise,
            counter: 0,
        }
    }

    /// Switches to one of the four canonical concepts (sudden drift).
    pub fn set_concept(&mut self, concept: usize) {
        assert!(concept < SEA_THRESHOLDS.len(), "SEA has 4 concepts, got {concept}");
        self.concept = concept;
    }

    /// Currently active concept index.
    pub fn concept(&self) -> usize {
        self.concept
    }

    fn label(&self, f1: f64, f2: f64) -> usize {
        let theta = SEA_THRESHOLDS[self.concept];
        // Signed distance to the concept threshold, mapped onto M bands that
        // tile the attainable range of f1+f2 ∈ [0, 20].
        let s = f1 + f2;
        let m = self.num_classes as f64;
        // Band 0 is "far below threshold", band M-1 "far above".
        let lower_span = theta.max(1e-9);
        let upper_span = (20.0 - theta).max(1e-9);
        let half = (m / 2.0).ceil();
        let band = if s <= theta {
            // Map [0, theta] onto bands [0, half).
            ((s / lower_span) * half).floor().min(half - 1.0)
        } else {
            // Map (theta, 20] onto bands [half, m).
            half + (((s - theta) / upper_span) * (m - half)).floor().min(m - half - 1.0)
        };
        band as usize
    }
}

impl DataStream for SeaGenerator {
    fn next_instance(&mut self) -> Option<Instance> {
        let f1 = self.rng.gen_range(0.0..10.0);
        let f2 = self.rng.gen_range(0.0..10.0);
        let f3 = self.rng.gen_range(0.0..10.0);
        let mut class = self.label(f1, f2);
        if self.noise > 0.0 && self.rng.gen::<f64>() < self.noise {
            class = self.rng.gen_range(0..self.num_classes);
        }
        let inst = Instance::with_index(vec![f1, f2, f3], class, self.counter);
        self.counter += 1;
        Some(inst)
    }

    fn schema(&self) -> &StreamSchema {
        &self.schema
    }

    fn restart(&mut self) {
        self.rng = StdRng::seed_from_u64(self.seed);
        self.counter = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::StreamExt;

    #[test]
    fn binary_sea_matches_classic_rule() {
        let mut g = SeaGenerator::new(2, 0.0, 5);
        for inst in g.take_instances(2000) {
            let expected = if inst.features[0] + inst.features[1] <= 8.0 { 0 } else { 1 };
            assert_eq!(inst.class, expected);
        }
    }

    #[test]
    fn concept_switch_relabels_boundary_region() {
        let mut a = SeaGenerator::new(2, 0.0, 9);
        let mut b = SeaGenerator::new(2, 0.0, 9);
        b.set_concept(2); // threshold 7 instead of 8
        let xa = a.take_instances(3000);
        let xb = b.take_instances(3000);
        let mut diff = 0;
        for (ia, ib) in xa.iter().zip(xb.iter()) {
            assert_eq!(ia.features, ib.features);
            if ia.class != ib.class {
                diff += 1;
            }
        }
        // Roughly the band between 7 and 8 changes labels (~8% of the mass).
        assert!(diff > 100, "concept switch must relabel the boundary band, got {diff}");
    }

    #[test]
    fn multi_class_bands_cover_all_classes() {
        let mut g = SeaGenerator::new(6, 0.0, 3);
        let mut counts = [0usize; 6];
        for inst in g.take_instances(6000) {
            counts[inst.class] += 1;
        }
        for (c, &n) in counts.iter().enumerate() {
            assert!(n > 100, "class {c} empty: {n}");
        }
    }

    #[test]
    fn third_feature_is_irrelevant() {
        // Re-labeling with a different third feature must not change labels:
        // verify the label depends only on f1+f2.
        let g = SeaGenerator::new(4, 0.0, 1);
        let l1 = g.label(3.0, 4.0);
        let l2 = g.label(4.0, 3.0);
        assert_eq!(l1, l2);
    }

    #[test]
    fn restart_and_concept_accessors() {
        let mut g = SeaGenerator::new(3, 0.0, 4);
        assert_eq!(g.concept(), 0);
        let a = g.take_instances(50);
        g.restart();
        assert_eq!(a, g.take_instances(50));
    }

    #[test]
    #[should_panic]
    fn rejects_invalid_concept() {
        SeaGenerator::new(2, 0.0, 0).set_concept(4);
    }
}
