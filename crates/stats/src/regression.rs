//! Ordinary least squares: simple (one predictor) and multivariate fits.
//!
//! Two consumers in the reproduction:
//!
//! * RBM-IM maintains the *trend* of the per-class reconstruction error as
//!   the slope of a simple linear regression over a sliding window
//!   (paper Eq. 28–37) — see [`simple_linear_regression`] and the
//!   incremental variant in `rbm-im` itself;
//! * the Granger causality test regresses the current value of a series on
//!   lags of itself and of a second series, which requires the multivariate
//!   fit in [`ols_multi`].

use crate::matrix::Matrix;
use crate::{Result, StatsError};

/// Result of a simple (single-predictor) linear regression `y = a + b x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimpleRegression {
    /// Intercept `a`.
    pub intercept: f64,
    /// Slope `b` — the "trend" used by RBM-IM's detection rule.
    pub slope: f64,
    /// Coefficient of determination R².
    pub r_squared: f64,
    /// Residual sum of squares.
    pub rss: f64,
    /// Number of observations used.
    pub n: usize,
}

/// Fits `y = a + b x` by least squares.
///
/// Returns an error if fewer than two points are supplied or if all `x`
/// values are identical (the slope is then undefined).
pub fn simple_linear_regression(x: &[f64], y: &[f64]) -> Result<SimpleRegression> {
    if x.len() != y.len() {
        return Err(StatsError::InvalidParameter(format!(
            "x and y must have equal length ({} vs {})",
            x.len(),
            y.len()
        )));
    }
    let n = x.len();
    if n < 2 {
        return Err(StatsError::InsufficientData { needed: 2, got: n });
    }
    let nf = n as f64;
    let sx: f64 = x.iter().sum();
    let sy: f64 = y.iter().sum();
    let sxx: f64 = x.iter().map(|v| v * v).sum();
    let sxy: f64 = x.iter().zip(y.iter()).map(|(a, b)| a * b).sum();
    let denom = nf * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return Err(StatsError::InvalidParameter("all x values identical; slope undefined".into()));
    }
    let slope = (nf * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / nf;

    let my = sy / nf;
    let mut rss = 0.0;
    let mut tss = 0.0;
    for (xi, yi) in x.iter().zip(y.iter()) {
        let pred = intercept + slope * xi;
        rss += (yi - pred) * (yi - pred);
        tss += (yi - my) * (yi - my);
    }
    let r_squared = if tss == 0.0 { 1.0 } else { 1.0 - rss / tss };
    Ok(SimpleRegression { intercept, slope, r_squared, rss, n })
}

/// Computes the regression-trend slope from accumulated sums, exactly as in
/// paper Eq. 28:
///
/// `Q_r(t) = (n * Σ(t·R) − Σt · ΣR) / (n * Σt² − (Σt)²)`
///
/// where `n` is the number of points in the window, `Σ(t·R)` the sum of
/// time×value products, `Σt` the sum of time indices, `ΣR` the sum of values
/// and `Σt²` the sum of squared time indices. Returns 0.0 when the
/// denominator degenerates (e.g. a single point).
pub fn trend_from_sums(n: f64, sum_tr: f64, sum_t: f64, sum_r: f64, sum_t2: f64) -> f64 {
    let denom = n * sum_t2 - sum_t * sum_t;
    if denom.abs() < 1e-12 {
        0.0
    } else {
        (n * sum_tr - sum_t * sum_r) / denom
    }
}

/// Result of a multivariate OLS fit.
#[derive(Debug, Clone, PartialEq)]
pub struct OlsFit {
    /// Fitted coefficients, in the column order of the design matrix.
    pub coefficients: Vec<f64>,
    /// Residual sum of squares.
    pub rss: f64,
    /// Number of observations.
    pub n: usize,
    /// Number of fitted parameters (columns of the design matrix).
    pub k: usize,
}

impl OlsFit {
    /// Residual degrees of freedom `n - k`.
    pub fn residual_df(&self) -> usize {
        self.n.saturating_sub(self.k)
    }
}

/// Fits `y = X β` by ordinary least squares via the normal equations
/// `XᵀX β = Xᵀy`, solved with partial-pivot Gaussian elimination.
///
/// The caller is responsible for including an intercept column (of ones) in
/// `design` if one is wanted — the Granger test does this explicitly.
///
/// Returns [`StatsError::SingularMatrix`] for rank-deficient designs and
/// [`StatsError::InsufficientData`] if there are fewer rows than columns.
pub fn ols_multi(design: &Matrix, y: &[f64]) -> Result<OlsFit> {
    let n = design.rows();
    let k = design.cols();
    if y.len() != n {
        return Err(StatsError::InvalidParameter(format!(
            "response length {} does not match design rows {}",
            y.len(),
            n
        )));
    }
    if n < k {
        return Err(StatsError::InsufficientData { needed: k, got: n });
    }
    let xt = design.transpose();
    let xtx = xt.matmul(design);
    let xty = xt.matmul(&Matrix::column(y));
    let beta = xtx.solve(xty.as_slice())?;

    let mut rss = 0.0;
    for i in 0..n {
        let mut pred = 0.0;
        for j in 0..k {
            pred += design[(i, j)] * beta[j];
        }
        rss += (y[i] - pred) * (y[i] - pred);
    }
    Ok(OlsFit { coefficients: beta, rss, n, k })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_regression_exact_line() {
        let x = [0.0, 1.0, 2.0, 3.0, 4.0];
        let y = [1.0, 3.0, 5.0, 7.0, 9.0];
        let fit = simple_linear_regression(&x, &y).unwrap();
        assert!((fit.slope - 2.0).abs() < 1e-12);
        assert!((fit.intercept - 1.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!(fit.rss < 1e-20);
    }

    #[test]
    fn simple_regression_noisy_data() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let y = [2.1, 3.9, 6.2, 7.8, 10.1, 11.9];
        let fit = simple_linear_regression(&x, &y).unwrap();
        assert!((fit.slope - 2.0).abs() < 0.1);
        assert!(fit.r_squared > 0.99);
    }

    #[test]
    fn simple_regression_flat_series_has_zero_slope() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [5.0, 5.0, 5.0, 5.0];
        let fit = simple_linear_regression(&x, &y).unwrap();
        assert!(fit.slope.abs() < 1e-12);
        // Flat series: TSS = 0 so R² defined as 1 by convention here.
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    fn simple_regression_errors() {
        assert!(matches!(
            simple_linear_regression(&[1.0], &[1.0]),
            Err(StatsError::InsufficientData { .. })
        ));
        assert!(matches!(
            simple_linear_regression(&[1.0, 1.0], &[1.0, 2.0]),
            Err(StatsError::InvalidParameter(_))
        ));
        assert!(matches!(
            simple_linear_regression(&[1.0, 2.0], &[1.0]),
            Err(StatsError::InvalidParameter(_))
        ));
    }

    #[test]
    fn trend_from_sums_matches_full_regression() {
        let t: Vec<f64> = (1..=10).map(|v| v as f64).collect();
        let r: Vec<f64> = t.iter().map(|v| 0.5 * v + 3.0).collect();
        let fit = simple_linear_regression(&t, &r).unwrap();
        let n = t.len() as f64;
        let sum_tr: f64 = t.iter().zip(r.iter()).map(|(a, b)| a * b).sum();
        let sum_t: f64 = t.iter().sum();
        let sum_r: f64 = r.iter().sum();
        let sum_t2: f64 = t.iter().map(|v| v * v).sum();
        let slope = trend_from_sums(n, sum_tr, sum_t, sum_r, sum_t2);
        assert!((slope - fit.slope).abs() < 1e-10);
    }

    #[test]
    fn trend_from_sums_degenerate_is_zero() {
        assert_eq!(trend_from_sums(1.0, 3.0, 1.0, 3.0, 1.0), 0.0);
    }

    #[test]
    fn ols_multi_recovers_coefficients() {
        // y = 1 + 2*x1 - 3*x2 exactly.
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for i in 0..20 {
            let x1 = i as f64;
            let x2 = (i as f64 * 0.7).sin();
            rows.push(vec![1.0, x1, x2]);
            ys.push(1.0 + 2.0 * x1 - 3.0 * x2);
        }
        let design = Matrix::from_rows(&rows);
        let fit = ols_multi(&design, &ys).unwrap();
        assert!((fit.coefficients[0] - 1.0).abs() < 1e-8);
        assert!((fit.coefficients[1] - 2.0).abs() < 1e-8);
        assert!((fit.coefficients[2] + 3.0).abs() < 1e-8);
        assert!(fit.rss < 1e-12);
        assert_eq!(fit.residual_df(), 17);
    }

    #[test]
    fn ols_multi_matches_simple_regression() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [1.2, 1.9, 3.2, 3.8, 5.1];
        let simple = simple_linear_regression(&x, &y).unwrap();
        let rows: Vec<Vec<f64>> = x.iter().map(|&v| vec![1.0, v]).collect();
        let multi = ols_multi(&Matrix::from_rows(&rows), &y).unwrap();
        assert!((multi.coefficients[0] - simple.intercept).abs() < 1e-10);
        assert!((multi.coefficients[1] - simple.slope).abs() < 1e-10);
        assert!((multi.rss - simple.rss).abs() < 1e-10);
    }

    #[test]
    fn ols_multi_detects_collinearity() {
        // Second column is exactly twice the first → singular normal equations.
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
        let y: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert_eq!(ols_multi(&Matrix::from_rows(&rows), &y), Err(StatsError::SingularMatrix));
    }

    #[test]
    fn ols_multi_rejects_underdetermined() {
        let rows = vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]];
        let y = vec![1.0, 2.0];
        assert!(matches!(
            ols_multi(&Matrix::from_rows(&rows), &y),
            Err(StatsError::InsufficientData { .. })
        ));
    }
}
