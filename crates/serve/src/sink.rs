//! Disk persistence for served streams: spill per-stream checkpoints (in
//! either checkpoint codec) and prequential metric snapshots, and load
//! them back for restart-from-disk.
//!
//! A [`SnapshotSink`] owns a directory. Two artifact kinds live in it:
//!
//! * `<stream>.checkpoint.bin` / `<stream>.checkpoint.json` — one
//!   self-contained [`StreamCheckpoint`] per stream (schema, effective
//!   spec, run config and complete pipeline state), overwritten on every
//!   spill. The format follows the sink's
//!   [`CheckpointCodec`]: the compact binary codec by default (sized for
//!   frequent background spills — see
//!   [`rbm_im_harness::checkpoint::codec`]), or JSON for debuggability.
//!   Loading sniffs the format from the file contents, so a restarted
//!   process reads spills from either codec regardless of its own
//!   configuration. A restarted process loads these with
//!   [`SnapshotSink::load_checkpoints`] and hands each to
//!   [`ServerHandle::restore_stream`](crate::server::ServerHandle::restore_stream)
//!   so the stream resumes bitwise-identically;
//! * `<stream>.metrics.jsonl` — appended [`PrequentialSnapshot`] lines
//!   (one JSON object per snapshot event), giving dashboards history
//!   across restarts. Feed the sink from a bus subscription via
//!   [`SnapshotSink::record_event`]. With a [`MetricRetention`] policy
//!   configured ([`SnapshotSink::with_retention`]), oversized or overaged
//!   live files rotate to numbered generations
//!   (`<stream>.metrics.1.jsonl` is the newest sealed generation) with a
//!   bounded keep count — the
//!   [`Supervisor`](crate::supervisor::Supervisor) enforces this off its
//!   spill schedule, and [`SnapshotSink::load_metrics`] reads the
//!   generations back oldest-first so history order survives rotation.
//!
//! Spills are atomic (temp file + rename), so a crash mid-spill leaves the
//! previous checkpoint intact, and a truncated or corrupt file is reported
//! as a clean [`io::Error`] at load — never silently skipped, never
//! garbage state.
//!
//! Stream ids are sanitized into file names (alphanumerics, `-`, `_`, `.`
//! kept; everything else mapped to `_` plus a hash suffix on collision
//! risk), so arbitrary ids cannot escape the sink directory.

use crate::event::{ServeEvent, ServeEventKind};
use crate::server::StreamCheckpoint;
use rbm_im_harness::checkpoint::codec::{self, CheckpointCodec};
use rbm_im_metrics::PrequentialSnapshot;
use rbm_im_obs::{Histogram, MetricsRegistry, TraceEvent};
use serde::Serialize as _;
use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Rotation policy for per-stream metric history files. The live
/// `<stream>.metrics.jsonl` rotates to `<stream>.metrics.1.jsonl` (older
/// generations shift up by one, the oldest beyond `keep_rotations` is
/// deleted) when it exceeds `max_bytes`, or — if `max_age` is set — when
/// it has lived longer than that.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricRetention {
    /// Rotate once the live file reaches this many bytes.
    pub max_bytes: u64,
    /// Sealed generations to keep (`0` = rotation simply truncates the
    /// history).
    pub keep_rotations: usize,
    /// Rotate a non-empty live file older than this regardless of size
    /// (age is measured from the file's creation time where the
    /// filesystem reports one, from its last modification otherwise).
    /// `None` = size-only rotation.
    pub max_age: Option<std::time::Duration>,
}

impl Default for MetricRetention {
    fn default() -> Self {
        MetricRetention { max_bytes: 1 << 20, keep_rotations: 2, max_age: None }
    }
}

/// Checkpoint-spill timing instruments
/// (`rbm_supervisor_spill_seconds{phase=encode|write}`), bound via
/// [`SnapshotSink::with_metrics`]. Spills are cold-path, so their timings
/// are recorded whenever instruments are bound, independent of `RBM_OBS`.
struct SpillObs {
    encode: Arc<Histogram>,
    write: Arc<Histogram>,
}

impl fmt::Debug for SpillObs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpillObs").finish()
    }
}

/// The sink's injectable filesystem seam: every checkpoint **write**,
/// the atomic **rename** publishing it, and every checkpoint **read**
/// route through this trait. Production uses the [`OsSpillIo`]
/// passthrough; the chaos plane substitutes
/// [`ChaosSpillIo`](crate::chaos::ChaosSpillIo) to inject ENOSPC,
/// short-write and corrupt-on-read faults deterministically
/// ([`SnapshotSink::with_io`]). Directory scans and metric/trace appends
/// stay on the raw filesystem — the fault surface under test is the
/// checkpoint durability path.
pub trait SpillIo: Send + Sync + fmt::Debug {
    /// Writes `bytes` to `path` (creating or truncating it).
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Atomically renames `from` over `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Reads the full contents of `path`.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
}

/// The default [`SpillIo`]: a plain passthrough to `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct OsSpillIo;

impl SpillIo for OsSpillIo {
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        fs::write(path, bytes)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }
}

/// Spill directory for checkpoints and metric history.
#[derive(Debug)]
pub struct SnapshotSink {
    dir: PathBuf,
    codec: CheckpointCodec,
    retention: Option<MetricRetention>,
    spill_obs: Option<SpillObs>,
    /// The filesystem seam checkpoint writes/renames/reads go through
    /// ([`OsSpillIo`] unless [`SnapshotSink::with_io`] swapped it).
    io: Arc<dyn SpillIo>,
    /// Persistent encode buffer reused across checkpoint spills: after the
    /// first spill its capacity covers the fleet's largest checkpoint, so
    /// steady-state background spilling stops allocating a fresh output
    /// vector per checkpoint (pinned by `tests/spill_alloc.rs`).
    encode_scratch: Mutex<Vec<u8>>,
}

impl SnapshotSink {
    /// Opens (creating if needed) a sink over `dir` with the default
    /// checkpoint codec ([`CheckpointCodec::Binary`]).
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<Self> {
        Self::with_codec(dir, CheckpointCodec::default())
    }

    /// Opens (creating if needed) a sink over `dir` spilling checkpoints
    /// with `codec`. Loading is codec-agnostic either way.
    ///
    /// Opening sweeps orphan `*.checkpoint.*.tmp` files out of the
    /// directory: a process that died between a spill's temp-file write
    /// and its rename leaves a partially written `.tmp` behind, and while
    /// the loaders never read those, letting them accumulate turns every
    /// crash into permanent disk debris. The sweep is safe by
    /// construction — a `.tmp` is only ever the *incomplete* side of an
    /// atomic publish, never the authoritative checkpoint.
    pub fn with_codec(dir: impl Into<PathBuf>, codec: CheckpointCodec) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        for entry in fs::read_dir(&dir)? {
            let path = entry?.path();
            let orphan = path.file_name().and_then(|n| n.to_str()).is_some_and(|name| {
                name.ends_with(".checkpoint.bin.tmp") || name.ends_with(".checkpoint.json.tmp")
            });
            if orphan {
                let _ = fs::remove_file(&path);
            }
        }
        Ok(SnapshotSink {
            dir,
            codec,
            retention: None,
            spill_obs: None,
            io: Arc::new(OsSpillIo),
            encode_scratch: Mutex::new(Vec::new()),
        })
    }

    /// Replaces the sink's filesystem seam ([`OsSpillIo`] by default):
    /// checkpoint writes, their atomic renames, and checkpoint reads all
    /// route through `io`. The chaos harness injects
    /// [`ChaosSpillIo`](crate::chaos::ChaosSpillIo) here.
    pub fn with_io(mut self, io: Arc<dyn SpillIo>) -> Self {
        self.io = io;
        self
    }

    /// Enables metric-history rotation under `retention`. Without this,
    /// live metric files grow unboundedly (the pre-rotation behavior) —
    /// though [`SnapshotSink::load_metrics`] always reads any sealed
    /// generations a retention-configured process left behind.
    pub fn with_retention(mut self, retention: MetricRetention) -> Self {
        self.retention = Some(retention);
        self
    }

    /// The metric retention policy, if one is configured.
    pub fn retention(&self) -> Option<MetricRetention> {
        self.retention
    }

    /// Binds spill-timing instruments from `metrics`: every subsequent
    /// checkpoint spill records its encode and write durations into
    /// `rbm_supervisor_spill_seconds{phase=encode|write}`. The
    /// [`Supervisor`](crate::supervisor::Supervisor) wires the server's
    /// registry in automatically, so supervised runs get spill timing
    /// without caller involvement.
    pub fn with_metrics(mut self, metrics: &MetricsRegistry) -> Self {
        self.spill_obs = Some(SpillObs {
            encode: metrics.histogram("rbm_supervisor_spill_seconds", &[("phase", "encode")]),
            write: metrics.histogram("rbm_supervisor_spill_seconds", &[("phase", "write")]),
        });
        self
    }

    /// The sink directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The codec new spills are written with.
    pub fn codec(&self) -> CheckpointCodec {
        self.codec
    }

    /// Writes (atomically, via a temp file + rename) one stream's
    /// checkpoint, overwriting any previous checkpoint of the same stream
    /// — in **either** codec, so switching codecs cannot leave a stale
    /// duplicate behind. Returns the file path.
    pub fn spill_checkpoint(&self, checkpoint: &StreamCheckpoint) -> io::Result<PathBuf> {
        let path = self.checkpoint_path(&checkpoint.stream, self.codec);
        // Encode into the sink's persistent scratch buffer: cleared (not
        // shrunk) per spill, so once it has grown to the fleet's largest
        // checkpoint no further output allocations happen. JSON spills
        // still build an intermediate string (the pretty-printer's
        // contract); the default binary codec encodes straight into the
        // scratch.
        let mut scratch = self.encode_scratch.lock().expect("encode scratch poisoned");
        scratch.clear();
        let encode_started = Instant::now();
        match self.codec {
            CheckpointCodec::Json => {
                let text = serde_json::to_string_pretty(checkpoint)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
                scratch.extend_from_slice(text.as_bytes());
            }
            CheckpointCodec::Binary => {
                codec::encode_into(CheckpointCodec::Binary, checkpoint, &mut scratch);
            }
        }
        if let Some(obs) = &self.spill_obs {
            obs.encode.record(encode_started.elapsed().as_nanos() as u64);
        }
        let write_started = Instant::now();
        let tmp = path.with_extension(format!("{}.tmp", self.codec.extension()));
        self.io.write(&tmp, scratch.as_slice())?;
        self.io.rename(&tmp, &path)?;
        if let Some(obs) = &self.spill_obs {
            obs.write.record(write_started.elapsed().as_nanos() as u64);
        }
        // Drop the other codec's spill of the same stream, if any — the
        // freshly written file is now the stream's sole checkpoint. Best
        // effort: the spill itself is already durable at this point, and a
        // crash window between the rename and this removal is tolerated by
        // the loaders (they deduplicate by stream id).
        let other = match self.codec {
            CheckpointCodec::Json => CheckpointCodec::Binary,
            CheckpointCodec::Binary => CheckpointCodec::Json,
        };
        let _ = fs::remove_file(self.checkpoint_path(&checkpoint.stream, other));
        Ok(path)
    }

    /// Spills a batch of checkpoints (e.g. the output of
    /// `ServerHandle::checkpoint_all`). Returns the written paths.
    pub fn spill_all(&self, checkpoints: &[StreamCheckpoint]) -> io::Result<Vec<PathBuf>> {
        checkpoints.iter().map(|c| self.spill_checkpoint(c)).collect()
    }

    /// Loads every `*.checkpoint.bin` / `*.checkpoint.json` in the sink
    /// directory, sorted by stream id — **one checkpoint per stream**: if
    /// a crash between a spill's rename and its stale-file cleanup left
    /// both codecs' files behind, the one capturing the *later* stream
    /// position wins (ties go to the binary file), so a restart never
    /// restores the same stream twice or from the staler of the two
    /// states — whichever direction the codec switch went. The codec of
    /// each file is sniffed from its contents. Files that fail to parse
    /// (truncated spill, corrupt bytes, a future codec version) are
    /// reported as errors naming the file, not skipped silently.
    pub fn load_checkpoints(&self) -> io::Result<Vec<StreamCheckpoint>> {
        let mut by_stream: std::collections::HashMap<String, (bool, StreamCheckpoint)> =
            std::collections::HashMap::new();
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
            let is_binary_file = name.ends_with(".checkpoint.bin");
            if !is_binary_file && !name.ends_with(".checkpoint.json") {
                continue;
            }
            let bytes = self.io.read(&path)?;
            let checkpoint: StreamCheckpoint = codec::decode(&bytes).map_err(|e| {
                io::Error::new(io::ErrorKind::InvalidData, format!("{}: {e}", path.display()))
            })?;
            let candidate = (is_binary_file, checkpoint);
            match by_stream.remove(&candidate.1.stream) {
                None => {
                    by_stream.insert(candidate.1.stream.clone(), candidate);
                }
                Some(existing) => {
                    let winner = fresher(existing, candidate);
                    by_stream.insert(winner.1.stream.clone(), winner);
                }
            }
        }
        let mut checkpoints: Vec<StreamCheckpoint> =
            by_stream.into_values().map(|(_, c)| c).collect();
        checkpoints.sort_by(|a, b| a.stream.cmp(&b.stream));
        Ok(checkpoints)
    }

    /// Loads one stream's checkpoint, whichever codec it was spilled with
    /// (duplicates from a crashed codec switch resolve exactly like
    /// [`SnapshotSink::load_checkpoints`]: later position wins, ties to
    /// binary). Returns `Ok(None)` if the stream has no spill.
    pub fn load_checkpoint(&self, stream: &str) -> io::Result<Option<StreamCheckpoint>> {
        let mut best: Option<(bool, StreamCheckpoint)> = None;
        for codec_kind in [CheckpointCodec::Binary, CheckpointCodec::Json] {
            let path = self.checkpoint_path(stream, codec_kind);
            if !path.exists() {
                continue;
            }
            let bytes = self.io.read(&path)?;
            let checkpoint: StreamCheckpoint = codec::decode(&bytes).map_err(|e| {
                io::Error::new(io::ErrorKind::InvalidData, format!("{}: {e}", path.display()))
            })?;
            let candidate = (codec_kind == CheckpointCodec::Binary, checkpoint);
            best = Some(match best.take() {
                None => candidate,
                Some(existing) => fresher(existing, candidate),
            });
        }
        Ok(best.map(|(_, c)| c))
    }

    /// Appends one prequential snapshot to the stream's metrics history
    /// (`<stream>.metrics.jsonl`, one JSON object per line).
    pub fn spill_snapshot(
        &self,
        stream: &str,
        position: u64,
        snapshot: &PrequentialSnapshot,
    ) -> io::Result<()> {
        let value = serde::Value::object(vec![
            ("stream", stream.serialize_value()),
            ("position", position.serialize_value()),
            ("snapshot", snapshot.serialize_value()),
        ]);
        let line = serde_json::to_string(&value)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let mut file =
            fs::OpenOptions::new().create(true).append(true).open(self.metrics_path(stream))?;
        writeln!(file, "{line}")
    }

    /// Routes one bus event into the sink: metric snapshots are appended
    /// to the stream's history, everything else is ignored. Wire a bus
    /// subscription loop straight through this.
    pub fn record_event(&self, event: &ServeEvent) -> io::Result<()> {
        match &event.kind {
            ServeEventKind::Snapshot { position, snapshot } => {
                self.spill_snapshot(&event.stream, *position, snapshot)
            }
            _ => Ok(()),
        }
    }

    /// Applies the configured [`MetricRetention`] to one stream's live
    /// metric file: if it is oversized (or overaged), sealed generations
    /// shift up one slot (dropping the one beyond `keep_rotations`) and
    /// the live file becomes `<stream>.metrics.1.jsonl`. Returns whether a
    /// rotation happened. A sink without a retention policy, a missing
    /// live file, and an empty live file are all no-ops.
    ///
    /// The [`Supervisor`](crate::supervisor::Supervisor) calls this after
    /// each successful background spill of the stream, so rotation rides
    /// the spill schedule and needs no clock of its own.
    pub fn enforce_metric_retention(&self, stream: &str) -> io::Result<bool> {
        let live = self.metrics_path(stream);
        self.enforce_rotation(&live, |generation| self.rotated_metrics_path(stream, generation))
    }

    /// The shared rotation engine behind metric-history and trace-log
    /// retention: applies the sink's [`MetricRetention`] to `live`, with
    /// `rotated(n)` naming the n-th sealed generation. Returns whether a
    /// rotation happened; no policy / missing file / empty file are no-ops.
    fn enforce_rotation(
        &self,
        live: &Path,
        rotated: impl Fn(usize) -> PathBuf,
    ) -> io::Result<bool> {
        let Some(retention) = self.retention else { return Ok(false) };
        let meta = match fs::metadata(live) {
            Ok(meta) => meta,
            Err(_) => return Ok(false),
        };
        if meta.len() == 0 {
            return Ok(false);
        }
        let oversized = meta.len() >= retention.max_bytes;
        let overaged = retention.max_age.is_some_and(|max_age| {
            meta.created()
                .or_else(|_| meta.modified())
                .ok()
                .and_then(|born| born.elapsed().ok())
                .is_some_and(|age| age >= max_age)
        });
        if !oversized && !overaged {
            return Ok(false);
        }
        if retention.keep_rotations == 0 {
            fs::remove_file(live)?;
            return Ok(true);
        }
        // Shift sealed generations newest-last so no rename overwrites a
        // file that has not moved yet; the generation falling off the end
        // is deleted (best effort — it may never have existed).
        let _ = fs::remove_file(rotated(retention.keep_rotations));
        for generation in (1..retention.keep_rotations).rev() {
            let from = rotated(generation);
            if from.exists() {
                fs::rename(&from, rotated(generation + 1))?;
            }
        }
        fs::rename(live, rotated(1))?;
        Ok(true)
    }

    /// Appends completed trace spans (one JSONL line each, see
    /// [`TraceEvent::to_jsonl`]) to the sink-wide `trace.jsonl`, then
    /// applies the sink's retention policy to it (sealed generations are
    /// `trace.1.jsonl`, …). The supervisor drains the server's
    /// [`Tracer`](rbm_im_obs::Tracer) through this every tick. Returns
    /// whether the append triggered a rotation.
    pub fn spill_trace(&self, events: &[TraceEvent]) -> io::Result<bool> {
        if events.is_empty() {
            return Ok(false);
        }
        let live = self.trace_path();
        let mut file = fs::OpenOptions::new().create(true).append(true).open(&live)?;
        for event in events {
            writeln!(file, "{}", event.to_jsonl())?;
        }
        drop(file);
        self.enforce_rotation(&live, |generation| self.rotated_trace_path(generation))
    }

    /// The live trace log path (`<dir>/trace.jsonl`).
    pub fn trace_path(&self) -> PathBuf {
        self.dir.join("trace.jsonl")
    }

    fn rotated_trace_path(&self, generation: usize) -> PathBuf {
        self.dir.join(format!("trace.{generation}.jsonl"))
    }

    /// Loads a stream's appended metric history (positions + snapshots),
    /// oldest first: sealed rotation generations from oldest to newest,
    /// then the live file — so history order is exactly append order, with
    /// or without rotation (and regardless of whether *this* sink has a
    /// retention policy).
    pub fn load_metrics(&self, stream: &str) -> io::Result<Vec<(u64, PrequentialSnapshot)>> {
        let mut generations = Vec::new();
        for generation in 1.. {
            let path = self.rotated_metrics_path(stream, generation);
            if !path.exists() {
                break;
            }
            generations.push(path);
        }
        let mut history = Vec::new();
        for path in generations.into_iter().rev() {
            self.read_metrics_file(&path, &mut history)?;
        }
        let live = self.metrics_path(stream);
        if live.exists() {
            self.read_metrics_file(&live, &mut history)?;
        }
        Ok(history)
    }

    /// Parses one metrics JSONL file into `history` (append order).
    fn read_metrics_file(
        &self,
        path: &Path,
        history: &mut Vec<(u64, PrequentialSnapshot)>,
    ) -> io::Result<()> {
        for (lineno, line) in fs::read_to_string(path)?.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let value = serde_json::parse_value(line).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}:{}: {e}", path.display(), lineno + 1),
                )
            })?;
            let read = || -> Result<(u64, PrequentialSnapshot), serde::Error> {
                let position: u64 = value.field("position")?;
                let snapshot = serde::Deserialize::deserialize_value(value.req("snapshot")?)?;
                Ok((position, snapshot))
            };
            history.push(read().map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}:{}: {e}", path.display(), lineno + 1),
                )
            })?);
        }
        Ok(())
    }

    fn checkpoint_path(&self, stream: &str, codec: CheckpointCodec) -> PathBuf {
        self.dir.join(format!("{}.checkpoint.{}", sanitize(stream), codec.extension()))
    }

    fn metrics_path(&self, stream: &str) -> PathBuf {
        self.dir.join(format!("{}.metrics.jsonl", sanitize(stream)))
    }

    fn rotated_metrics_path(&self, stream: &str, generation: usize) -> PathBuf {
        self.dir.join(format!("{}.metrics.{generation}.jsonl", sanitize(stream)))
    }
}

/// Of two spills for the same stream (possible only in the crash window
/// between a spill's rename and its stale-file cleanup), the fresher one
/// is the one capturing the later stream position — the direction of the
/// codec switch says nothing about recency. Ties go to the binary file.
fn fresher(a: (bool, StreamCheckpoint), b: (bool, StreamCheckpoint)) -> (bool, StreamCheckpoint) {
    let position_a = a.1.checkpoint.processed().unwrap_or(0);
    let position_b = b.1.checkpoint.processed().unwrap_or(0);
    if position_a > position_b || (position_a == position_b && a.0) {
        a
    } else {
        b
    }
}

/// Maps a stream id to a safe file stem: benign characters pass through,
/// everything else becomes `_`, and any id that needed mapping (or is
/// empty) gets a disambiguating hash suffix so distinct ids cannot collide
/// on the same file.
fn sanitize(stream: &str) -> String {
    let mapped: String = stream
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.') { c } else { '_' })
        .collect();
    if mapped == stream && !mapped.is_empty() {
        mapped
    } else {
        let hash = rbm_im_streams::source::derive_stream_seed(0x51ac_c0de, stream);
        format!("{mapped}-{hash:016x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_keeps_benign_ids_and_disambiguates_others() {
        assert_eq!(sanitize("feed-01"), "feed-01");
        assert_eq!(sanitize("a.b_c9"), "a.b_c9");
        let odd = sanitize("../escape");
        assert!(!odd.contains('/'), "{odd}");
        assert!(odd.ends_with(|c: char| c.is_ascii_hexdigit()), "{odd}: needs a hash suffix");
        assert_ne!(sanitize("a/b"), sanitize("a:b"), "mapped ids must stay distinct");
        assert!(!sanitize("").is_empty());
    }
}
