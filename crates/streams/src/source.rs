//! Stream-id'd, replayable stream sources.
//!
//! The serving layer and the experiment grid both need the same thing from
//! a stream: not one live iterator but a *named recipe* that can be opened
//! any number of times, each opening yielding the identical instance
//! sequence. [`StreamSource`] is that recipe — an id, a schema, and a
//! deterministic factory. Replayability is what makes end-to-end results
//! pinnable: a serving run and a sequential [`PipelineBuilder`] run over
//! fresh openings of the same source must agree bitwise.
//!
//! [`ReplayStream`] is the simplest source backing: a recorded instance
//! vector played back in order (tests record a live stream once, then
//! replay it into several systems under test). [`derive_stream_seed`] is
//! the canonical seed mix used to give every named stream of a fleet its
//! own decorrelated — but reproducible — RNG seed.
//!
//! [`PipelineBuilder`]: https://docs.rs/rbm-im-harness

use crate::instance::{Instance, StreamSchema};
use crate::stream::DataStream;
use std::fmt;
use std::sync::Arc;

/// Deterministic seed mix of a base seed and a stream id (FNV-1a over the
/// id, then SplitMix64-style finalization). Same base + same id ⇒ same
/// seed; different ids are decorrelated. This is the single definition the
/// whole workspace uses (the harness grid and the serving layer both
/// delegate here).
pub fn derive_stream_seed(base: u64, id: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in id.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut z = base ^ hash;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

type SourceBuilder = Box<dyn Fn() -> Box<dyn DataStream + Send> + Send + Sync>;

/// A named, repeatable stream recipe: every call to [`StreamSource::open`]
/// yields an identical stream (the factory must be deterministic).
pub struct StreamSource {
    id: String,
    schema: StreamSchema,
    builder: SourceBuilder,
}

impl StreamSource {
    /// Wraps a deterministic stream factory under a stream id. The schema
    /// is captured by opening the factory once.
    pub fn new(
        id: impl Into<String>,
        builder: impl Fn() -> Box<dyn DataStream + Send> + Send + Sync + 'static,
    ) -> Self {
        let schema = builder().schema().clone();
        StreamSource { id: id.into(), schema, builder: Box::new(builder) }
    }

    /// A source that replays a recorded instance sequence (see
    /// [`ReplayStream`]). The recording is shared, not cloned, across
    /// openings.
    pub fn from_recording(
        id: impl Into<String>,
        schema: StreamSchema,
        instances: Vec<Instance>,
    ) -> Self {
        let id = id.into();
        let recording: Arc<[Instance]> = instances.into();
        let replay_schema = schema.clone();
        StreamSource {
            id,
            schema,
            builder: Box::new(move || {
                Box::new(ReplayStream::shared(replay_schema.clone(), Arc::clone(&recording)))
            }),
        }
    }

    /// The stream id (routing key, event label, seed-derivation input).
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Schema shared by every opening.
    pub fn schema(&self) -> &StreamSchema {
        &self.schema
    }

    /// Opens a fresh copy of the stream.
    pub fn open(&self) -> Box<dyn DataStream + Send> {
        (self.builder)()
    }
}

impl fmt::Debug for StreamSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StreamSource").field("id", &self.id).field("schema", &self.schema).finish()
    }
}

/// A [`DataStream`] playing back a recorded instance sequence in order.
/// Restart rewinds to the beginning, so the stream is replayable in place.
pub struct ReplayStream {
    schema: StreamSchema,
    instances: Arc<[Instance]>,
    cursor: usize,
}

impl ReplayStream {
    /// Replays an owned recording.
    pub fn new(schema: StreamSchema, instances: Vec<Instance>) -> Self {
        ReplayStream { schema, instances: instances.into(), cursor: 0 }
    }

    /// Replays a shared recording (no copy per opening).
    pub fn shared(schema: StreamSchema, instances: Arc<[Instance]>) -> Self {
        ReplayStream { schema, instances, cursor: 0 }
    }

    /// Number of recorded instances.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// Whether the recording is empty.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }
}

impl DataStream for ReplayStream {
    fn next_instance(&mut self) -> Option<Instance> {
        let inst = self.instances.get(self.cursor)?.clone();
        self.cursor += 1;
        Some(inst)
    }

    fn schema(&self) -> &StreamSchema {
        &self.schema
    }

    fn restart(&mut self) {
        self.cursor = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::GaussianMixtureGenerator;
    use crate::StreamExt;

    #[test]
    fn derive_stream_seed_is_stable_and_id_sensitive() {
        assert_eq!(derive_stream_seed(42, "feed-00"), derive_stream_seed(42, "feed-00"));
        assert_ne!(derive_stream_seed(42, "feed-00"), derive_stream_seed(42, "feed-01"));
        assert_ne!(derive_stream_seed(42, "feed-00"), derive_stream_seed(43, "feed-00"));
    }

    #[test]
    fn source_openings_are_identical() {
        let source =
            StreamSource::new("mix", || Box::new(GaussianMixtureGenerator::balanced(4, 3, 1, 11)));
        assert_eq!(source.id(), "mix");
        assert_eq!(source.schema().num_features, 4);
        let a = source.open().take_instances(200);
        let b = source.open().take_instances(200);
        assert_eq!(a, b);
    }

    #[test]
    fn recording_source_replays_and_restarts() {
        let mut live = GaussianMixtureGenerator::balanced(3, 2, 1, 5);
        let recorded = live.take_instances(50);
        let source = StreamSource::from_recording("rec", live.schema().clone(), recorded.clone());
        let mut opened = source.open();
        assert_eq!(opened.take_instances(100), recorded);
        assert!(opened.next_instance().is_none());
        opened.restart();
        assert_eq!(opened.take_instances(100), recorded);
    }

    #[test]
    fn replay_stream_len_and_empty() {
        let schema = StreamSchema::new("r", 2, 2);
        let mut empty = ReplayStream::new(schema.clone(), vec![]);
        assert!(empty.is_empty());
        assert_eq!(empty.len(), 0);
        assert!(empty.next_instance().is_none());
        let mut one = ReplayStream::new(schema, vec![Instance::new(vec![1.0, 2.0], 1)]);
        assert_eq!(one.len(), 1);
        assert_eq!(one.next_instance().unwrap().class, 1);
    }
}
