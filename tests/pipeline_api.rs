//! Acceptance tests of the unified Pipeline API: batched-detector
//! equivalence across the whole registry, `DetectorSpec` serde round-trips,
//! classifier pluggability, and thread-count-independent grid results.

use rbm_im_classifiers::GaussianNaiveBayes;
use rbm_im_detectors::{DriftDetector, Observation};
use rbm_im_harness::pipeline::{run_grid, GridStream, PipelineBuilder, RunConfig, RunResult};
use rbm_im_harness::registry::{DetectorRegistry, DetectorSpec};
use rbm_im_streams::generators::RandomRbfGenerator;
use rbm_im_streams::scenarios::{scenario1, ScenarioConfig};
use rbm_im_streams::stream::BoundedStream;
use rbm_im_streams::{Instance, StreamExt};

/// A fixed drifting stream: concept A for 4000 instances, concept B after.
fn drifting_instances() -> Vec<Instance> {
    let mut gen = RandomRbfGenerator::new(8, 3, 2, 0.0, 1234);
    let mut data = gen.take_instances(4_000);
    gen.regenerate();
    data.extend(gen.take_instances(3_000));
    data
}

/// Every registry detector must report identical drift positions whether it
/// is fed observation-by-observation (`update`) or in arbitrary chunks
/// (`update_batch`) — the core contract of the batched trait v2.
#[test]
fn update_batch_matches_per_instance_for_every_registry_detector() {
    let registry = DetectorRegistry::with_defaults();
    let data = drifting_instances();
    // Predictions from a fixed deterministic rule so error-rate detectors
    // see a change at the concept switch too: the simulated classifier is
    // 90% accurate on concept A and 55% on concept B.
    let predictions: Vec<usize> = data
        .iter()
        .enumerate()
        .map(|(i, inst)| {
            let accuracy = if i < 4_000 { 0.9 } else { 0.55 };
            let hash = ((i as f64) * 0.754_877).fract();
            if hash < accuracy {
                inst.class
            } else {
                (inst.class + 1) % 3
            }
        })
        .collect();
    let observations: Vec<Observation<'_>> = data
        .iter()
        .zip(predictions.iter())
        .map(|(inst, &predicted)| Observation::new(&inst.features, inst.class, predicted))
        .collect();

    for name in registry.names() {
        let spec = DetectorSpec::new(&name);

        let mut sequential = registry.build(&spec, 8, 3).unwrap();
        let mut sequential_positions = Vec::new();
        for (i, obs) in observations.iter().enumerate() {
            if sequential.update(obs).is_drift() {
                sequential_positions.push(i);
            }
        }

        // A chunk size misaligned with every internal window/batch size.
        let chunk_size = 73;
        let mut batched = registry.build(&spec, 8, 3).unwrap();
        let mut batched_positions = Vec::new();
        let mut offsets = Vec::new();
        for (chunk_index, chunk) in observations.chunks(chunk_size).enumerate() {
            batched.update_batch(chunk, &mut offsets);
            batched_positions.extend(offsets.iter().map(|o| chunk_index * chunk_size + o));
        }

        assert_eq!(
            sequential_positions, batched_positions,
            "{name}: batched drift positions must match per-instance updates"
        );
    }
}

#[test]
fn detector_spec_serde_round_trip_preserves_tuned_variants() {
    let specs = vec![
        DetectorSpec::new("rbm-im"),
        DetectorSpec::parse("adwin(delta=0.01)").unwrap(),
        DetectorSpec::new("fhddm").with_param("window_size", 25.0).with_param("delta", 1e-4),
    ];
    let json = serde_json::to_string_pretty(&specs).unwrap();
    let back: Vec<DetectorSpec> = serde_json::from_str(&json).unwrap();
    assert_eq!(specs, back);
    // The tuned variants must still resolve after the round trip.
    let registry = DetectorRegistry::with_defaults();
    for spec in &back {
        registry.build(spec, 6, 3).unwrap();
    }
}

#[test]
fn run_config_serde_round_trip() {
    let config = RunConfig {
        metric_window: 500,
        max_instances: Some(2_000),
        reset_on_drift: false,
        detector_batch: 50,
        snapshot_every: Some(250),
    };
    let json = serde_json::to_string(&config).unwrap();
    let back: RunConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(config, back);
}

#[test]
fn pipeline_accepts_a_non_default_classifier() {
    let config = ScenarioConfig {
        length: 6_000,
        num_features: 8,
        num_classes: 3,
        imbalance_ratio: 10.0,
        n_drifts: 1,
        ..Default::default()
    };
    let scenario = scenario1(&config);
    let result = PipelineBuilder::new()
        .boxed_stream(scenario.stream)
        .classifier_with(|schema| GaussianNaiveBayes::new(schema.num_features, schema.num_classes))
        .detector_spec(DetectorSpec::new("ddm-oci"))
        .config(RunConfig { metric_window: 500, ..Default::default() })
        .run()
        .unwrap();
    assert_eq!(result.instances, 6_000);
    assert!(result.pm_auc > 0.0 && result.pm_auc <= 100.0);
    assert_eq!(result.detector, "ddm-oci");
}

fn strip_timing_results(runs: &[RunResult]) -> Vec<RunResult> {
    runs.iter()
        .map(|r| RunResult {
            detector_update_seconds: 0.0,
            test_seconds: 0.0,
            train_seconds: 0.0,
            ..r.clone()
        })
        .collect()
}

/// The acceptance criterion of the parallel grid: results are byte-identical
/// whatever the rayon worker count, because every cell derives its own seed
/// and builds its own stream.
#[test]
fn run_grid_is_deterministic_across_thread_counts() {
    let detectors =
        vec![DetectorSpec::new("fhddm"), DetectorSpec::new("adwin"), DetectorSpec::new("rbm-im")];
    let make_streams = || -> Vec<GridStream> {
        [11u64, 29]
            .iter()
            .map(|&seed| {
                GridStream::new(format!("rbf-{seed}"), move || {
                    Box::new(BoundedStream::new(RandomRbfGenerator::new(6, 3, 2, 0.0, seed), 2_000))
                })
            })
            .collect()
    };
    let config = RunConfig { metric_window: 400, ..Default::default() };

    let run_with_threads = |threads: usize| -> Vec<RunResult> {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap()
            .install(|| run_grid(&detectors, &make_streams(), &config).unwrap())
    };
    let single = run_with_threads(1);
    let four = run_with_threads(4);
    let seven = run_with_threads(7);

    assert_eq!(single.len(), 6);
    // Wall-clock timing aside, every field — including the serialized JSON
    // artifact — must be byte-identical across worker counts.
    assert_eq!(strip_timing_results(&single), strip_timing_results(&four));
    assert_eq!(strip_timing_results(&single), strip_timing_results(&seven));
    let json_single = serde_json::to_string(&strip_timing_results(&single)).unwrap();
    let json_four = serde_json::to_string(&strip_timing_results(&four)).unwrap();
    assert_eq!(json_single, json_four);
}

/// A detector registered from *outside* the harness crate drives the full
/// pipeline — the "open" part of the open registry.
#[test]
fn externally_registered_detector_runs_through_the_pipeline() {
    use rbm_im_detectors::DetectorState;

    /// Fires a drift every `period` observations.
    struct Metronome {
        period: usize,
        seen: usize,
        state: DetectorState,
    }
    impl DriftDetector for Metronome {
        fn update(&mut self, _observation: &Observation<'_>) -> DetectorState {
            self.seen += 1;
            self.state = if self.seen.is_multiple_of(self.period) {
                DetectorState::Drift
            } else {
                DetectorState::Stable
            };
            self.state
        }
        fn state(&self) -> DetectorState {
            self.state
        }
        fn reset(&mut self) {
            self.seen = 0;
            self.state = DetectorState::Stable;
        }
        fn name(&self) -> &'static str {
            "Metronome"
        }
    }

    let mut registry = DetectorRegistry::with_defaults();
    registry.register("metronome", &["period"], |p, _, _| {
        Ok(Box::new(Metronome {
            period: p.get_usize_or("period", 500)?,
            seen: 0,
            state: DetectorState::Stable,
        }))
    });

    let result = PipelineBuilder::new()
        .registry(&registry)
        .stream(BoundedStream::new(RandomRbfGenerator::new(5, 3, 2, 0.0, 2), 2_000))
        .detector_spec(DetectorSpec::parse("metronome(period=400)").unwrap())
        .config(RunConfig { metric_window: 300, ..Default::default() })
        .run()
        .unwrap();
    assert_eq!(result.detections.len(), 5, "2000 instances / drift every 400");
    assert_eq!(result.detector, "metronome(period=400)");
}
