//! Property tests of the workspace-wide checkpoint contract:
//! snapshot → serialize (JSON) → restore → continue must be **bitwise**
//! equal to an uninterrupted run for *every* registry detector and every
//! classifier, at arbitrary cut points — including cuts misaligned with
//! RBM-IM mini-batches, cuts at zero, and cuts beyond the drift.

use proptest::prelude::*;
use rbm_im_classifiers::{
    CostSensitivePerceptron, CostSensitivePerceptronTree, GaussianNaiveBayes, OnlineClassifier,
};
use rbm_im_detectors::{DriftDetector, DriftDetectorExt, Observation};
use rbm_im_harness::registry::{DetectorRegistry, DetectorSpec};
use rbm_im_streams::generators::RandomRbfGenerator;
use rbm_im_streams::{Instance, StreamExt};
use std::sync::OnceLock;

const FEATURES: usize = 8;
const CLASSES: usize = 4;
const LENGTH: usize = 5_000;

/// A fixed drifting stream shared by every case: RBF concept A for 3000
/// instances, then a regenerated concept (sudden global drift). Predictions
/// are simulated with an error rate that jumps at the drift so
/// error-monitoring detectors see a change too.
fn fixture() -> &'static Vec<(Instance, usize)> {
    static FIXTURE: OnceLock<Vec<(Instance, usize)>> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mut gen = RandomRbfGenerator::new(FEATURES, CLASSES, 2, 0.0, 99);
        let mut instances = gen.take_instances(3_000);
        gen.regenerate();
        instances.extend(gen.take_instances(LENGTH - 3_000));
        instances
            .into_iter()
            .enumerate()
            .map(|(i, inst)| {
                let p = if i < 3_000 { 10 } else { 3 };
                let predicted = if i % p == 0 { (inst.class + 1) % CLASSES } else { inst.class };
                (inst, predicted)
            })
            .collect()
    })
}

fn observation(pair: &(Instance, usize)) -> Observation<'_> {
    Observation {
        features: &pair.0.features,
        true_class: pair.0.class,
        predicted_class: pair.1,
        correct: pair.0.class == pair.1,
    }
}

/// Registry specs covering every registered detector name (quickened RBM
/// hyper-parameters so mini-batches and warm-up complete well inside the
/// fixture).
fn all_specs() -> Vec<DetectorSpec> {
    let registry = DetectorRegistry::global();
    registry
        .names()
        .into_iter()
        .map(|name| {
            if registry.accepts_param(&name, "mini_batch") {
                DetectorSpec::parse(&format!(
                    "{name}(mini_batch=25, warmup=4, persistence=1, seed=7)"
                ))
                .unwrap()
            } else {
                DetectorSpec::new(name)
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Every registry detector, arbitrary cut: the resumed detector must
    /// report identical states, drift positions and attributions over the
    /// tail, and end in bitwise-identical internal state.
    #[test]
    fn every_registry_detector_roundtrips_at_arbitrary_cuts(cut in 0usize..LENGTH) {
        let registry = DetectorRegistry::global();
        let data = fixture();
        for spec in all_specs() {
            let mut uninterrupted = registry.build(&spec, FEATURES, CLASSES).unwrap();
            let mut head = registry.build(&spec, FEATURES, CLASSES).unwrap();
            for pair in &data[..cut] {
                uninterrupted.update(&observation(pair));
                head.update(&observation(pair));
            }
            let snapshot = head.snapshot_state().unwrap_or_else(|| {
                panic!("{}: every shipped detector must support checkpointing", spec.label())
            });
            let json = serde_json::to_string(&snapshot).unwrap();
            let mut resumed = registry.build(&spec, FEATURES, CLASSES).unwrap();
            resumed
                .restore_state(&serde_json::parse_value(&json).unwrap())
                .unwrap_or_else(|e| panic!("{}: restore failed: {e}", spec.label()));
            prop_assert_eq!(resumed.state(), uninterrupted.state());

            for (offset, pair) in data[cut..].iter().enumerate() {
                let expected = uninterrupted.update(&observation(pair));
                let got = resumed.update(&observation(pair));
                prop_assert_eq!(
                    expected, got,
                    "{} @ cut {}, offset {}", spec.label(), cut, offset
                );
                if expected.is_drift() {
                    prop_assert_eq!(
                        uninterrupted.drifted_classes(),
                        resumed.drifted_classes(),
                        "{} @ cut {}: attribution", spec.label(), cut
                    );
                }
            }
            // The strongest check: after the tail, the two detectors'
            // complete serialized states are bitwise-identical.
            prop_assert_eq!(
                serde_json::to_string(&uninterrupted.snapshot_state().unwrap()).unwrap(),
                serde_json::to_string(&resumed.snapshot_state().unwrap()).unwrap(),
                "{} @ cut {}: final state", spec.label(), cut
            );
        }
    }

    /// Every classifier, arbitrary cut: resumed predictions and the final
    /// serialized model state must match the uninterrupted model bitwise.
    #[test]
    fn every_classifier_roundtrips_at_arbitrary_cuts(cut in 0usize..LENGTH) {
        type Factory = fn() -> Box<dyn OnlineClassifier>;
        let factories: [(&str, Factory); 3] = [
            ("cspt", || Box::new(CostSensitivePerceptronTree::new(FEATURES, CLASSES))),
            ("perceptron", || Box::new(CostSensitivePerceptron::new(FEATURES, CLASSES, 0.05))),
            ("naive-bayes", || Box::new(GaussianNaiveBayes::new(FEATURES, CLASSES))),
        ];
        let data = fixture();
        for (name, make) in factories {
            let mut uninterrupted = make();
            let mut head = make();
            for (inst, _) in &data[..cut] {
                uninterrupted.learn(inst);
                head.learn(inst);
            }
            let json = serde_json::to_string(&head.snapshot_state().unwrap()).unwrap();
            let mut resumed = make();
            resumed
                .restore_state(&serde_json::parse_value(&json).unwrap())
                .unwrap_or_else(|e| panic!("{name}: restore failed: {e}"));
            for (offset, (inst, _)) in data[cut..].iter().enumerate() {
                prop_assert_eq!(
                    uninterrupted.predict_scores(&inst.features),
                    resumed.predict_scores(&inst.features),
                    "{} @ cut {}, offset {}", name, cut, offset
                );
                uninterrupted.learn(inst);
                resumed.learn(inst);
            }
            prop_assert_eq!(
                serde_json::to_string(&uninterrupted.snapshot_state().unwrap()).unwrap(),
                serde_json::to_string(&resumed.snapshot_state().unwrap()).unwrap(),
                "{} @ cut {}: final state", name, cut
            );
        }
    }
}
