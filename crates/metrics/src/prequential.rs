//! The prequential (test-then-train) evaluator.
//!
//! Every instance is first used to *test* the current classifier (its
//! prediction and per-class scores are recorded) and only then to train it.
//! Metrics are computed over a sliding window of `window_size` recent
//! predictions (the paper uses `W = 1000`), and the quantities reported in
//! Table III are the averages of those windowed metrics sampled once per
//! window over the whole stream.

use crate::auc::WindowedMultiClassAuc;
use crate::confusion::StreamingConfusionMatrix;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A point-in-time snapshot of the windowed metrics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrequentialSnapshot {
    /// Stream position at which the snapshot was taken.
    pub position: u64,
    /// Windowed multi-class AUC (pmAUC), in `[0, 1]`.
    pub pm_auc: f64,
    /// Windowed multi-class G-mean (pmGM), in `[0, 1]`.
    pub pm_gmean: f64,
    /// Windowed accuracy.
    pub accuracy: f64,
    /// Windowed Cohen's kappa.
    pub kappa: f64,
}

/// Sliding-window prequential evaluator combining pmAUC and pmGM.
#[derive(Debug, Clone)]
pub struct PrequentialEvaluator {
    num_classes: usize,
    window_size: usize,
    auc: WindowedMultiClassAuc,
    window_confusion: StreamingConfusionMatrix,
    /// Recent (true, predicted) pairs backing the windowed confusion matrix.
    recent: VecDeque<(usize, usize)>,
    /// Snapshots taken every `window_size` instances.
    snapshots: Vec<PrequentialSnapshot>,
    /// Total instances processed.
    count: u64,
    /// Running sums for stream-average metrics (computed from snapshots at
    /// the end, but also accumulated per instance for robustness on short
    /// streams).
    sum_auc: f64,
    sum_gmean: f64,
    samples: u64,
}

impl PrequentialEvaluator {
    /// Creates an evaluator with the given class count and window size.
    pub fn new(num_classes: usize, window_size: usize) -> Self {
        assert!(window_size > 0, "window size must be > 0");
        PrequentialEvaluator {
            num_classes,
            window_size,
            auc: WindowedMultiClassAuc::new(num_classes, window_size),
            window_confusion: StreamingConfusionMatrix::new(num_classes),
            recent: VecDeque::with_capacity(window_size),
            snapshots: Vec::new(),
            count: 0,
            sum_auc: 0.0,
            sum_gmean: 0.0,
            samples: 0,
        }
    }

    /// Records one tested instance: the true class, the predicted class and
    /// the per-class scores used for AUC.
    pub fn record(&mut self, true_class: usize, predicted_class: usize, scores: &[f64]) {
        self.auc.record(scores, true_class);
        if self.recent.len() == self.window_size {
            let (t, p) = self.recent.pop_front().expect("window non-empty");
            self.window_confusion.unrecord(t, p);
        }
        self.recent.push_back((true_class, predicted_class));
        self.window_confusion.record(true_class, predicted_class);
        self.count += 1;
        // Sample the windowed metrics once per full window (and once the
        // first window has filled), mirroring MOA's evaluation cadence.
        if self.count.is_multiple_of(self.window_size as u64) {
            let snap = self.snapshot();
            self.sum_auc += snap.pm_auc;
            self.sum_gmean += snap.pm_gmean;
            self.samples += 1;
            self.snapshots.push(snap);
        }
    }

    /// Current windowed metrics.
    pub fn snapshot(&self) -> PrequentialSnapshot {
        PrequentialSnapshot {
            position: self.count,
            pm_auc: self.auc.auc(),
            pm_gmean: self.window_confusion.g_mean(),
            accuracy: self.window_confusion.accuracy(),
            kappa: self.window_confusion.kappa(),
        }
    }

    /// All periodic snapshots collected so far (one per full window).
    pub fn snapshots(&self) -> &[PrequentialSnapshot] {
        &self.snapshots
    }

    /// Stream-averaged pmAUC: the mean of the periodic windowed snapshots
    /// (falling back to the current window if the stream was shorter than
    /// one window).
    pub fn average_pm_auc(&self) -> f64 {
        if self.samples == 0 {
            self.auc.auc()
        } else {
            self.sum_auc / self.samples as f64
        }
    }

    /// Stream-averaged pmGM.
    pub fn average_pm_gmean(&self) -> f64 {
        if self.samples == 0 {
            self.window_confusion.g_mean()
        } else {
            self.sum_gmean / self.samples as f64
        }
    }

    /// Total number of instances processed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of classes being evaluated.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Window size.
    pub fn window_size(&self) -> usize {
        self.window_size
    }

    /// Captures the evaluator's complete mutable state — the AUC window,
    /// the windowed confusion matrix, the periodic-snapshot history and the
    /// running stream averages — as a serde value. Restored with
    /// [`PrequentialEvaluator::restore_state`] onto an evaluator built with
    /// the same class count and window size, the evaluator continues
    /// bitwise-identically to one that was never checkpointed.
    pub fn snapshot_state(&self) -> serde::Value {
        serde::Value::object(vec![
            ("num_classes", self.num_classes.serialize_value()),
            ("window_size", self.window_size.serialize_value()),
            ("auc", self.auc.snapshot_state()),
            ("window_confusion", self.window_confusion.serialize_value()),
            ("recent", self.recent.serialize_value()),
            ("snapshots", self.snapshots.serialize_value()),
            ("count", self.count.serialize_value()),
            ("sum_auc", self.sum_auc.serialize_value()),
            ("sum_gmean", self.sum_gmean.serialize_value()),
            ("samples", self.samples.serialize_value()),
        ])
    }

    /// Restores state captured by [`PrequentialEvaluator::snapshot_state`].
    /// Fails if the snapshot was taken with a different class count or
    /// window size.
    pub fn restore_state(&mut self, state: &serde::Value) -> Result<(), serde::Error> {
        let num_classes: usize = state.field("num_classes")?;
        let window_size: usize = state.field("window_size")?;
        if num_classes != self.num_classes || window_size != self.window_size {
            return Err(serde::Error::msg(format!(
                "evaluator shape mismatch: snapshot is {num_classes} classes / window \
                 {window_size}, evaluator is {} / {}",
                self.num_classes, self.window_size
            )));
        }
        self.auc.restore_state(state.req("auc")?)?;
        self.window_confusion =
            StreamingConfusionMatrix::deserialize_value(state.req("window_confusion")?)?;
        if self.window_confusion.num_classes() != self.num_classes {
            return Err(serde::Error::msg("confusion matrix class count mismatch"));
        }
        self.recent = state.field("recent")?;
        self.snapshots = state.field("snapshots")?;
        self.count = state.field("count")?;
        self.sum_auc = state.field("sum_auc")?;
        self.sum_gmean = state.field("sum_gmean")?;
        self.samples = state.field("samples")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_hot(n: usize, class: usize) -> Vec<f64> {
        (0..n).map(|c| if c == class { 0.9 } else { 0.1 / (n as f64 - 1.0) }).collect()
    }

    #[test]
    fn perfect_predictions_max_out_metrics() {
        let mut ev = PrequentialEvaluator::new(3, 100);
        for i in 0..1000u64 {
            let c = (i % 3) as usize;
            ev.record(c, c, &one_hot(3, c));
        }
        assert_eq!(ev.count(), 1000);
        assert!((ev.average_pm_auc() - 1.0).abs() < 1e-9);
        assert!((ev.average_pm_gmean() - 1.0).abs() < 1e-9);
        let snap = ev.snapshot();
        assert!((snap.accuracy - 1.0).abs() < 1e-12);
        assert!((snap.kappa - 1.0).abs() < 1e-12);
        assert_eq!(ev.snapshots().len(), 10);
    }

    #[test]
    fn majority_guessing_scores_poorly_on_skew_aware_metrics() {
        // 95:5 imbalance, classifier always predicts the majority class with
        // a constant score: accuracy is high but pmAUC ≈ 0.5 and pmGM = 0.
        let mut ev = PrequentialEvaluator::new(2, 200);
        for i in 0..2000u64 {
            let true_class = if i % 20 == 0 { 1 } else { 0 };
            ev.record(true_class, 0, &[0.7, 0.3]);
        }
        let snap = ev.snapshot();
        assert!(snap.accuracy > 0.9);
        assert!((ev.average_pm_auc() - 0.5).abs() < 0.01, "pmAUC = {}", ev.average_pm_auc());
        assert_eq!(ev.average_pm_gmean(), 0.0);
        assert!(snap.kappa.abs() < 0.05);
    }

    #[test]
    fn windowed_metric_recovers_after_a_bad_phase() {
        let mut ev = PrequentialEvaluator::new(2, 100);
        // 500 bad predictions then 500 perfect ones: the final window view
        // must be perfect even though the average remembers the bad phase.
        for i in 0..500u64 {
            let c = (i % 2) as usize;
            ev.record(c, 1 - c, &one_hot(2, 1 - c));
        }
        for i in 0..500u64 {
            let c = (i % 2) as usize;
            ev.record(c, c, &one_hot(2, c));
        }
        let snap = ev.snapshot();
        assert!((snap.pm_auc - 1.0).abs() < 1e-9);
        assert!((snap.pm_gmean - 1.0).abs() < 1e-9);
        let avg = ev.average_pm_auc();
        assert!(avg > 0.4 && avg < 0.8, "average must blend both phases, got {avg}");
    }

    #[test]
    fn short_stream_falls_back_to_current_window() {
        let mut ev = PrequentialEvaluator::new(2, 1000);
        for i in 0..50u64 {
            let c = (i % 2) as usize;
            ev.record(c, c, &one_hot(2, c));
        }
        // No full window yet — averages come from the live window.
        assert!(ev.snapshots().is_empty());
        assert!((ev.average_pm_auc() - 1.0).abs() < 1e-9);
        assert!((ev.average_pm_gmean() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn snapshot_positions_are_window_aligned() {
        let mut ev = PrequentialEvaluator::new(2, 50);
        for i in 0..175u64 {
            let c = (i % 2) as usize;
            ev.record(c, c, &one_hot(2, c));
        }
        let positions: Vec<u64> = ev.snapshots().iter().map(|s| s.position).collect();
        assert_eq!(positions, vec![50, 100, 150]);
        assert_eq!(ev.window_size(), 50);
        assert_eq!(ev.num_classes(), 2);
    }

    #[test]
    #[should_panic]
    fn zero_window_rejected() {
        PrequentialEvaluator::new(2, 0);
    }

    /// Checkpoint at an awkward mid-window cut, serialize to JSON, restore
    /// into a fresh evaluator, continue: every metric must match the
    /// uninterrupted evaluator bitwise.
    #[test]
    fn checkpoint_roundtrip_is_bitwise_identical() {
        let mut uninterrupted = PrequentialEvaluator::new(3, 100);
        let mut head = PrequentialEvaluator::new(3, 100);
        let score = |i: u64, c: usize| {
            let mut s = one_hot(3, c);
            // Slightly noisy scores so AUC state is non-trivial.
            s[(i % 3) as usize] += 0.01 * ((i % 7) as f64);
            s
        };
        for i in 0..537u64 {
            let true_class = (i % 3) as usize;
            let predicted = if i % 5 == 0 { (true_class + 1) % 3 } else { true_class };
            uninterrupted.record(true_class, predicted, &score(i, true_class));
            head.record(true_class, predicted, &score(i, true_class));
        }
        let json = serde_json::to_string(&head.snapshot_state()).unwrap();
        let mut resumed = PrequentialEvaluator::new(3, 100);
        resumed.restore_state(&serde_json::parse_value(&json).unwrap()).unwrap();
        for i in 537..1_483u64 {
            let true_class = (i % 3) as usize;
            let predicted = if i % 4 == 0 { (true_class + 2) % 3 } else { true_class };
            uninterrupted.record(true_class, predicted, &score(i, true_class));
            resumed.record(true_class, predicted, &score(i, true_class));
        }
        assert_eq!(resumed.snapshot(), uninterrupted.snapshot());
        assert_eq!(resumed.average_pm_auc(), uninterrupted.average_pm_auc());
        assert_eq!(resumed.average_pm_gmean(), uninterrupted.average_pm_gmean());
        assert_eq!(resumed.snapshots(), uninterrupted.snapshots());
        assert_eq!(resumed.count(), uninterrupted.count());

        // Shape mismatches are rejected, not silently accepted.
        let mut wrong = PrequentialEvaluator::new(4, 100);
        assert!(wrong.restore_state(&serde_json::parse_value(&json).unwrap()).is_err());
    }
}
