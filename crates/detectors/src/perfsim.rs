//! PerfSim — Performance Similarity drift detector for imbalanced streams
//! (Antwi, Viktor & Japkowicz, ICDM Workshops 2012).
//!
//! PerfSim monitors **the entire confusion matrix** rather than a single
//! aggregate error rate. The stream is processed in consecutive batches; the
//! confusion matrix of each batch is flattened into a vector and compared to
//! the previous batch's vector with the cosine similarity. A drop of the
//! similarity below a threshold (equivalently, a differentiation weight λ)
//! signals a concept drift — changes in *any* cell of the matrix, including
//! those of minority classes, contribute to the decision, which is what
//! makes PerfSim skew-aware.

use crate::{DetectorState, DriftDetector, Observation};

/// Configuration of [`PerfSim`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfSimConfig {
    /// Number of classes of the monitored problem.
    pub num_classes: usize,
    /// Batch size over which confusion matrices are accumulated.
    pub batch_size: usize,
    /// Differentiation weight λ: a drift is signalled when the cosine
    /// similarity between consecutive batch matrices falls below `1 − λ`.
    pub lambda: f64,
    /// Warning margin added on top of the drift threshold.
    pub warning_margin: f64,
}

impl PerfSimConfig {
    /// Default configuration for a problem with `num_classes` classes
    /// (λ = 0.2, batch = 500).
    pub fn for_classes(num_classes: usize) -> Self {
        PerfSimConfig { num_classes, batch_size: 500, lambda: 0.2, warning_margin: 0.05 }
    }
}

/// The PerfSim detector.
#[derive(Debug, Clone)]
pub struct PerfSim {
    config: PerfSimConfig,
    current: Vec<f64>,
    previous: Option<Vec<f64>>,
    in_batch: usize,
    state: DetectorState,
    last_similarity: f64,
}

impl PerfSim {
    /// Creates a PerfSim detector.
    pub fn new(config: PerfSimConfig) -> Self {
        assert!(config.num_classes >= 2);
        assert!(config.batch_size >= 10);
        assert!(config.lambda > 0.0 && config.lambda < 1.0);
        PerfSim {
            current: vec![0.0; config.num_classes * config.num_classes],
            previous: None,
            in_batch: 0,
            state: DetectorState::Stable,
            last_similarity: 1.0,
            config,
        }
    }

    /// Cosine similarity between two flattened confusion matrices.
    fn cosine(a: &[f64], b: &[f64]) -> f64 {
        let dot: f64 = a.iter().zip(b.iter()).map(|(x, y)| x * y).sum();
        let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
        let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
        if na == 0.0 || nb == 0.0 {
            1.0
        } else {
            dot / (na * nb)
        }
    }

    /// Similarity measured at the end of the most recent completed batch.
    pub fn last_similarity(&self) -> f64 {
        self.last_similarity
    }
}

impl DriftDetector for PerfSim {
    fn update(&mut self, observation: &Observation<'_>) -> DetectorState {
        let k = self.config.num_classes;
        let t = observation.true_class.min(k - 1);
        let p = observation.predicted_class.min(k - 1);
        self.current[t * k + p] += 1.0;
        self.in_batch += 1;
        if self.in_batch < self.config.batch_size {
            if self.state == DetectorState::Drift {
                self.state = DetectorState::Stable;
            }
            return self.state;
        }
        // Batch complete: compare with the previous batch. The matrix is
        // row-normalized (each true-class row becomes that class's
        // prediction distribution) so every class — however rare — carries
        // equal weight in the similarity, which is the property that makes
        // PerfSim skew-aware.
        self.in_batch = 0;
        let mut finished = std::mem::replace(&mut self.current, vec![0.0; k * k]);
        for row in 0..k {
            let total: f64 = finished[row * k..(row + 1) * k].iter().sum();
            if total > 0.0 {
                for cell in finished[row * k..(row + 1) * k].iter_mut() {
                    *cell /= total;
                }
            }
        }
        self.state = match &self.previous {
            Some(prev) => {
                let similarity = Self::cosine(prev, &finished);
                self.last_similarity = similarity;
                let drift_threshold = 1.0 - self.config.lambda;
                let warning_threshold = drift_threshold + self.config.warning_margin;
                if similarity < drift_threshold {
                    self.previous = None;
                    DetectorState::Drift
                } else if similarity < warning_threshold {
                    self.previous = Some(finished);
                    DetectorState::Warning
                } else {
                    self.previous = Some(finished);
                    DetectorState::Stable
                }
            }
            None => {
                self.previous = Some(finished);
                DetectorState::Stable
            }
        };
        self.state
    }

    fn state(&self) -> DetectorState {
        self.state
    }

    fn reset(&mut self) {
        *self = PerfSim::new(self.config);
    }

    fn name(&self) -> &'static str {
        "PerfSim"
    }

    fn snapshot_state(&self) -> Option<serde::Value> {
        use serde::{Serialize, Value};
        Some(Value::object(vec![
            ("current", self.current.serialize_value()),
            ("previous", self.previous.serialize_value()),
            ("in_batch", self.in_batch.serialize_value()),
            ("state", self.state.serialize_value()),
            ("last_similarity", self.last_similarity.serialize_value()),
        ]))
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), serde::Error> {
        self.current = state.field("current")?;
        self.previous = state.field("previous")?;
        self.in_batch = state.field("in_batch")?;
        self.state = state.field("state")?;
        self.last_similarity = state.field("last_similarity")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Feeds PerfSim a stream where the per-class recall pattern changes at
    /// `change_point`; returns detection positions.
    fn run_class_stream(
        detector: &mut PerfSim,
        change_point: usize,
        length: usize,
        num_classes: usize,
        minority_only: bool,
    ) -> Vec<usize> {
        let features = [0.0];
        let mut detections = Vec::new();
        for i in 0..length {
            // Class 0 is the majority (appears 90% of the time with 3 classes).
            let true_class =
                if i % 10 < 8 { 0 } else { 1 + (i % (num_classes - 1)).min(num_classes - 2) };
            let drifted = i >= change_point;
            // Before the drift every class is predicted correctly; after it
            // either everything degrades or only the minority classes do.
            let predicted = if !drifted {
                true_class
            } else if minority_only {
                // Minority classes start being absorbed by the majority:
                // every prediction collapses to class 0.
                0
            } else {
                (true_class + 1) % num_classes
            };
            let obs = Observation {
                features: &features,
                true_class,
                predicted_class: predicted,
                correct: true_class == predicted,
            };
            if detector.update(&obs).is_drift() {
                detections.push(i);
            }
        }
        detections
    }

    #[test]
    fn detects_global_performance_change() {
        let mut d = PerfSim::new(PerfSimConfig::for_classes(3));
        let detections = run_class_stream(&mut d, 5000, 10_000, 3, false);
        assert!(
            detections.iter().any(|&p| (5000..=6500).contains(&p)),
            "PerfSim should detect a global confusion-matrix change: {detections:?}"
        );
        let false_alarms = detections.iter().filter(|&&p| p < 5000).count();
        assert_eq!(false_alarms, 0);
    }

    #[test]
    fn detects_minority_class_degradation() {
        // Only the 20% minority portion of the stream changes behaviour; an
        // aggregate error-rate detector would see a small error increase, but
        // PerfSim sees whole matrix cells moving.
        let mut d = PerfSim::new(PerfSimConfig { lambda: 0.05, ..PerfSimConfig::for_classes(3) });
        let detections = run_class_stream(&mut d, 5000, 10_000, 3, true);
        assert!(
            detections.iter().any(|&p| p >= 5000),
            "PerfSim should notice minority-class degradation: {detections:?}"
        );
    }

    #[test]
    fn stable_stream_is_quiet() {
        let mut d = PerfSim::new(PerfSimConfig::for_classes(4));
        let detections = run_class_stream(&mut d, usize::MAX, 12_000, 4, false);
        assert!(detections.is_empty(), "no drift injected, got {detections:?}");
    }

    #[test]
    fn cosine_similarity_bounds() {
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let b = vec![0.0, 1.0, 1.0, 0.0];
        assert!((PerfSim::cosine(&a, &a) - 1.0).abs() < 1e-12);
        assert_eq!(PerfSim::cosine(&a, &b), 0.0);
        assert_eq!(PerfSim::cosine(&a, &[0.0, 0.0, 0.0, 0.0]), 1.0);
    }

    #[test]
    fn last_similarity_is_exposed() {
        let mut d = PerfSim::new(PerfSimConfig { batch_size: 50, ..PerfSimConfig::for_classes(2) });
        let features = [0.0];
        for i in 0..200 {
            let obs = Observation {
                features: &features,
                true_class: i % 2,
                predicted_class: i % 2,
                correct: true,
            };
            d.update(&obs);
        }
        assert!((d.last_similarity() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut d = PerfSim::new(PerfSimConfig::for_classes(3));
        run_class_stream(&mut d, 100, 2000, 3, false);
        d.reset();
        assert_eq!(d.state(), DetectorState::Stable);
        assert_eq!(d.name(), "PerfSim");
    }

    #[test]
    #[should_panic]
    fn invalid_lambda_rejected() {
        PerfSim::new(PerfSimConfig { lambda: 0.0, ..PerfSimConfig::for_classes(3) });
    }
}
