//! Scenario 2/3 walk-through: dynamic imbalance ratio with class-role
//! switching (the "fraud patterns change and yesterday's rare fraud becomes
//! today's dominant fraud" situation from the paper's taxonomy).
//!
//! The example builds Scenario 2 and Scenario 3 streams from the taxonomy
//! builders, runs the paper's six detectors on each, and prints a compact
//! comparison — a miniature version of Experiments 2 and 3.
//!
//! Run with: `cargo run -p rbm-im-harness --release --example evolving_minority_fraud`

use rbm_im_harness::detectors::DetectorKind;
use rbm_im_harness::pipeline::{run_grid, GridStream, RunConfig};
use rbm_im_streams::drift::DriftKind;
use rbm_im_streams::scenarios::{scenario2, scenario3, ScenarioConfig};

fn main() {
    let config = ScenarioConfig {
        num_features: 15,
        num_classes: 5,
        length: 25_000,
        imbalance_ratio: 100.0,
        n_drifts: 2,
        drift_kind: DriftKind::Sudden,
        seed: 99,
    };
    let run_config = RunConfig { metric_window: 1000, ..Default::default() };
    let detectors: Vec<_> = DetectorKind::paper_detectors().iter().map(|d| d.spec()).collect();

    // Both scenario streams in one parallel grid: 6 detectors x 2 streams.
    let scenario2_config = config.clone();
    let scenario3_config = config.clone();
    let streams = vec![
        GridStream::new("scenario2", move || scenario2(&scenario2_config).stream),
        GridStream::new("scenario3", move || scenario3(&scenario3_config, 1).stream),
    ];
    let results = run_grid(&detectors, &streams, &run_config).expect("grid resolves");
    let (scenario2_runs, scenario3_runs) = results.split_at(detectors.len());

    println!("Scenario 2: global drift + dynamic IR + class-role switching");
    println!("{:<10} {:>8} {:>8} {:>8}", "detector", "pmAUC", "pmGM", "signals");
    for result in scenario2_runs {
        println!(
            "{:<10} {:>8.2} {:>8.2} {:>8}",
            result.detector,
            result.pm_auc,
            result.pm_gmean,
            result.drift_count()
        );
    }

    println!(
        "\nScenario 3: the same difficulties, but the drift is LOCAL to the single smallest class"
    );
    println!("{:<10} {:>8} {:>8} {:>8}", "detector", "pmAUC", "pmGM", "signals");
    for result in scenario3_runs {
        println!(
            "{:<10} {:>8.2} {:>8.2} {:>8}",
            result.detector,
            result.pm_auc,
            result.pm_gmean,
            result.drift_count()
        );
    }
    println!(
        "\nIn Scenario 3 the standard detectors rarely fire (the global error barely\n\
         moves when only the smallest class drifts), so their classifier never adapts;\n\
         RBM-IM monitors each class's reconstruction error and keeps reacting."
    );
}
