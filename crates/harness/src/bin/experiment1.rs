//! Regenerates Table III (pmAUC / pmGM / timing for the six detectors over
//! the 24 benchmarks) together with the Friedman / Bonferroni–Dunn ranking
//! (Figs. 4–5) and the Bayesian signed pairwise comparisons (Figs. 6–7).
//!
//! Usage:
//! ```text
//! cargo run -p rbm-im-harness --release --bin experiment1 -- \
//!     [--scale N] [--seed S] [--benchmarks name1,name2] [--max-instances N] \
//!     [--threads T] [--json out.json]
//! ```
//! `--scale 1` reproduces paper-length streams (slow); the default of 20
//! finishes in minutes. The grid runs on all cores by default; `--threads`
//! pins the rayon worker count (results are identical either way).

use rbm_im_harness::detectors::DetectorKind;
use rbm_im_harness::experiment1::{run_experiment1, Experiment1Config};
use rbm_im_harness::report::{format_ranking, format_table3, to_json};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut config = Experiment1Config::default();
    let mut json_path: Option<String> = None;
    let mut threads: Option<usize> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                config.build.scale_divisor = args[i + 1].parse().expect("--scale needs an integer");
                i += 2;
            }
            "--threads" => {
                threads = Some(args[i + 1].parse().expect("--threads needs an integer"));
                i += 2;
            }
            "--seed" => {
                config.build.seed = args[i + 1].parse().expect("--seed needs an integer");
                i += 2;
            }
            "--benchmarks" => {
                config.benchmarks = args[i + 1].split(',').map(|s| s.trim().to_string()).collect();
                i += 2;
            }
            "--max-instances" => {
                config.run.max_instances =
                    Some(args[i + 1].parse().expect("--max-instances needs an integer"));
                i += 2;
            }
            "--json" => {
                json_path = Some(args[i + 1].clone());
                i += 2;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    eprintln!(
        "Experiment 1: {} detectors x {} benchmarks (scale 1/{})",
        config.detectors.len(),
        if config.benchmarks.is_empty() { 24 } else { config.benchmarks.len() },
        config.build.scale_divisor
    );
    let run = |config: &Experiment1Config| {
        run_experiment1(config, |r| {
            eprintln!(
                "  {:<14} {:<10} pmAUC {:6.2}  pmGM {:6.2}  drifts {:4}  ({} instances)",
                r.stream,
                r.detector,
                r.pm_auc,
                r.pm_gmean,
                r.drift_count(),
                r.instances
            );
        })
    };
    let result = match threads {
        Some(t) => rayon::ThreadPoolBuilder::new()
            .num_threads(t)
            .build()
            .expect("thread pool")
            .install(|| run(&config)),
        None => run(&config),
    };

    println!("{}", format_table3(&result, "pmAUC"));
    println!("{}", format_table3(&result, "pmGM"));
    println!("{}", format_ranking(&result, "pmAUC", 0.05));
    println!("{}", format_ranking(&result, "pmGM", 0.05));
    for opponent in [DetectorKind::PerfSim, DetectorKind::DdmOci] {
        match result.bayesian_vs(opponent, 1.0, 20_000, 42) {
            Ok(outcome) => println!(
                "Bayesian signed test RBM-IM vs {}: p(RBM-IM better) = {:.3}, p(rope) = {:.3}, p({} better) = {:.3}",
                opponent.name(),
                outcome.p_left,
                outcome.p_rope,
                opponent.name(),
                outcome.p_right
            ),
            Err(e) => println!("Bayesian signed test vs {} unavailable: {e}", opponent.name()),
        }
    }
    if let Some(path) = json_path {
        std::fs::write(&path, to_json(&result.runs)).expect("failed to write JSON results");
        eprintln!("wrote raw results to {path}");
    }
}
