//! Shard worker threads: each shard exclusively owns the pipeline state of
//! the streams routed to it.
//!
//! A shard is a plain loop over its bounded ingest channel. All state —
//! classifier, detector, prequential evaluator, and the pooled RBM scratch
//! [`Workspace`](rbm_im::Workspace)s — lives on the worker thread;
//! correctness needs no locks because nothing is shared. Per-stream
//! instance order is the channel order, so results are independent of how
//! streams interleave: every stream steps through exactly the code a
//! sequential [`PipelineBuilder`](rbm_im_harness::pipeline::PipelineBuilder)
//! run executes ([`PipelineStepper`]).
//!
//! On top of ingest, workers speak the **migration protocol** that powers
//! elastic resharding (`ServerHandle::resize_shards`) and
//! restart-from-disk:
//!
//! * `Park` marks stream ids whose ingest should be *buffered* instead of
//!   processed — on a migration source this freezes the stream's state
//!   while keeping every instance; on a migration target it catches
//!   instances that arrive before the stream's state does;
//! * `Extract` removes a parked stream and hands back a
//!   [`MigrationBundle`]: its checkpoint (schema + effective spec + run
//!   config + the stepper's complete state, partially filled detector
//!   micro-batch included) plus everything parked so far;
//! * `Unpark` closes a park entry — returning the buffered instances if
//!   the stream is gone (migration stragglers, replayed on the target), or
//!   replaying them in place if the stream is still attached (abort path);
//! * `Restore` rebuilds a stream from a bundle, replays the carried
//!   instances and then the target's own park buffer — in exactly arrival
//!   order, so a migrated stream loses nothing and reorders nothing.

use crate::event::{EventBus, ServeEvent, ServeEventKind};
use crate::server::{ServeError, StreamCheckpoint, StreamSummary};
use rbm_im::pool::WorkspacePool;
use rbm_im::RbmIm;
use rbm_im_detectors::DriftDetector;
use rbm_im_harness::checkpoint::PipelineCheckpoint;
use rbm_im_harness::pipeline::{RunConfig, RunResult};
use rbm_im_harness::registry::{DetectorRegistry, DetectorSpec};
use rbm_im_harness::stepper::PipelineStepper;
use rbm_im_obs::{Counter, Histogram, MetricsRegistry};
use rbm_im_streams::{Instance, StreamSchema};
use std::collections::HashMap;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::time::Instant;

/// Lock-free per-shard load counters, shared between the ingest senders
/// (which count enqueues) and the worker thread (which counts completions).
/// `enqueued − processed` is the shard's live queue depth — the signal the
/// supervisor's [`ResizePolicy`](crate::supervisor::ResizePolicy) watches.
/// Counters are monotone, so reads need no coordination with the hot path.
///
/// The counters live in the server's
/// [`MetricsRegistry`] (`rbm_serve_*_total{shard}` families), so the
/// resize policy, `ServerHandle::shard_loads`, and the exposition paths
/// all read the **same** instruments — there is no private duplicate.
/// Registry handles are monotone across resizes: a re-grown shard slot
/// reattaches to its counters, which keeps `enqueued − processed`
/// consistent because both sides survive together.
#[derive(Clone)]
pub(crate) struct ShardGauge {
    /// Ingest messages successfully enqueued to this shard.
    pub enqueued_messages: Arc<Counter>,
    /// Ingest messages the worker has fully processed.
    pub processed_messages: Arc<Counter>,
    /// Instances inside the enqueued messages.
    pub enqueued_instances: Arc<Counter>,
    /// Instances inside the processed messages.
    pub processed_instances: Arc<Counter>,
}

impl ShardGauge {
    /// Binds (or rebinds) the gauge counters of shard slot `index` in the
    /// server's metrics registry.
    pub fn for_shard(metrics: &MetricsRegistry, index: usize) -> Self {
        let shard = index.to_string();
        let labels: &[(&str, &str)] = &[("shard", shard.as_str())];
        ShardGauge {
            enqueued_messages: metrics.counter("rbm_serve_enqueued_messages_total", labels),
            processed_messages: metrics.counter("rbm_serve_processed_messages_total", labels),
            enqueued_instances: metrics.counter("rbm_serve_enqueued_instances_total", labels),
            processed_instances: metrics.counter("rbm_serve_processed_instances_total", labels),
        }
    }

    /// Records one enqueued ingest message of `instances` instances.
    pub fn record_enqueue(&self, instances: u64) {
        self.enqueued_messages.inc();
        self.enqueued_instances.add(instances);
    }

    /// Records one fully processed ingest message of `instances` instances.
    pub fn record_processed(&self, instances: u64) {
        self.processed_messages.inc();
        self.processed_instances.add(instances);
    }
}

/// One or many instances carried by an ingest message. Client-side
/// micro-batches (`try_ingest_batch`) amortize channel traffic; either way
/// the pipeline's `detector_batch` micro-batching governs how observations
/// reach the detector kernels.
#[derive(Debug)]
pub(crate) enum Payload {
    /// A single instance.
    One(Instance),
    /// A client-side micro-batch, in per-stream arrival order.
    Many(Vec<Instance>),
}

impl Payload {
    pub(crate) fn into_instances(self) -> Vec<Instance> {
        match self {
            Payload::One(instance) => vec![instance],
            Payload::Many(instances) => instances,
        }
    }

    pub(crate) fn len(&self) -> u64 {
        match self {
            Payload::One(_) => 1,
            Payload::Many(instances) => instances.len() as u64,
        }
    }
}

/// Everything needed to move a stream to another shard: its self-contained
/// checkpoint plus the instances parked at the source while the migration
/// was in flight.
#[derive(Debug)]
pub(crate) struct MigrationBundle {
    pub checkpoint: PipelineCheckpoint,
    pub parked: Vec<Instance>,
}

/// Why a stream is being rebuilt from a bundle — governs the bus event the
/// restore publishes.
#[derive(Debug, Clone, Copy)]
pub(crate) enum RestoreKind {
    /// Live migration from another shard (`Migrated` event).
    Migration { from_shard: usize },
    /// Restart-from-disk via `ServerHandle::restore_stream` (`Attached`
    /// event — subscribers see every serving stream).
    FromDisk,
    /// Reinstatement on its original shard after an aborted migration (no
    /// event: subscribers already saw this stream attach).
    Reinstate,
}

/// A failed restore, carrying the bundle back (boxed — this is a cold
/// path and the bundle is large) so the caller can salvage the stream's
/// state, e.g. reinstate it on its source shard after a failed migration
/// instead of dropping learned state.
#[derive(Debug)]
pub(crate) struct RestoreFailure {
    pub error: ServeError,
    pub bundle: Option<Box<MigrationBundle>>,
}

/// Control/data messages of a shard's ingest channel. FIFO channel order
/// doubles as the consistency mechanism: a `Drain` marker reaching the
/// worker proves every earlier ingest has been fully processed, and an
/// `Extract` reaching the worker proves every instance ingested before the
/// migration started is either in the stream's state or in its park
/// buffer.
pub(crate) enum ShardMsg {
    /// Create pipeline state for a stream.
    Attach {
        id: Arc<str>,
        schema: StreamSchema,
        spec: DetectorSpec,
        run: RunConfig,
        reply: Sender<Result<(), ServeError>>,
    },
    /// Close a stream's pipeline and report its final summary.
    Detach { id: Arc<str>, reply: Sender<Result<RunResult, ServeError>> },
    /// Instances for one stream.
    Ingest { id: Arc<str>, payload: Payload },
    /// Barrier: replied to once every earlier message is processed.
    Drain { reply: Sender<()> },
    /// List the stream ids attached to this shard (resize planning).
    Inventory { reply: Sender<Vec<Arc<str>>> },
    /// Start buffering ingest for these ids instead of processing it.
    Park { ids: Vec<Arc<str>>, reply: Sender<()> },
    /// Remove a (parked) stream and hand its state + park buffer over.
    Extract { id: Arc<str>, reply: Sender<Result<MigrationBundle, ServeError>> },
    /// Close a park entry: replay it in place if the stream is still
    /// attached (abort path), else return the buffered stragglers.
    Unpark { id: Arc<str>, reply: Sender<Vec<Instance>> },
    /// Rebuild a stream from a bundle (migration target, restart-from-
    /// disk, or migration-abort reinstatement), replaying carried +
    /// locally parked instances in order.
    Restore {
        id: Arc<str>,
        bundle: MigrationBundle,
        kind: RestoreKind,
        reply: Sender<Result<(), RestoreFailure>>,
    },
    /// Non-destructive checkpoint of one stream.
    Checkpoint { id: Arc<str>, reply: Sender<Result<StreamCheckpoint, ServeError>> },
    /// Non-destructive checkpoint of every stream on this shard.
    CheckpointAll { reply: Sender<Result<Vec<StreamCheckpoint>, ServeError>> },
    /// Graceful stop: the worker finalizes every attached stream (flushing
    /// trailing detector micro-batches) and exits with its report.
    Shutdown,
}

/// Per-stream pipeline state owned by a shard.
struct StreamState {
    stepper: PipelineStepper,
    /// The stream's schema / effective spec / run config, retained so the
    /// stream can be inventoried, checkpointed and migrated.
    schema: StreamSchema,
    spec: DetectorSpec,
    run: RunConfig,
    /// Whether the detector adopted a pooled workspace at attach (and must
    /// return it at close).
    pooled_workspace: bool,
    /// Per-stream step-timing histogram
    /// (`rbm_serve_stream_step_seconds{stream}`), bound at attach/restore
    /// so the hot path records through the handle without any lookup.
    /// Timing is at ingest-message granularity (one clock pair per
    /// micro-batch, see [`ShardWorker::ingest`]) and only taken while
    /// [`rbm_im_obs::enabled`] is on.
    step_latency: Arc<Histogram>,
}

/// What a shard hands back when it stops.
pub(crate) struct ShardReport {
    pub summaries: Vec<StreamSummary>,
    pub dropped_unknown: u64,
    pub workspace_reuse_hits: u64,
    pub workspace_reuse_misses: u64,
}

/// The worker owning one shard's streams.
pub(crate) struct ShardWorker {
    index: usize,
    registry: Arc<DetectorRegistry>,
    bus: Arc<EventBus>,
    /// Load counters shared with the ingest senders.
    gauge: Arc<ShardGauge>,
    streams: HashMap<Arc<str>, StreamState>,
    /// Ingest buffers of parked stream ids (migration in flight).
    parked: HashMap<Arc<str>, Vec<Instance>>,
    /// RBM scratch workspaces pooled across this shard's streams: attach
    /// checks one out, detach returns it, so successive streams inherit
    /// grown buffer capacity instead of re-allocating (`rbm_im::pool`).
    pool: WorkspacePool,
    /// Instances ingested for ids with no attached pipeline (dropped).
    dropped_unknown: u64,
    /// The server's metrics registry (per-stream histograms register here
    /// at attach/restore).
    metrics: Arc<MetricsRegistry>,
    /// This shard's ingest latency histogram
    /// (`rbm_serve_ingest_latency_seconds{shard}`).
    ingest_latency: Arc<Histogram>,
    /// Queue-depth distribution sampled after each processed ingest
    /// message (`rbm_serve_queue_depth{shard}`).
    queue_depth: Arc<Histogram>,
}

impl ShardWorker {
    pub(crate) fn new(
        index: usize,
        registry: Arc<DetectorRegistry>,
        bus: Arc<EventBus>,
        gauge: Arc<ShardGauge>,
        metrics: Arc<MetricsRegistry>,
    ) -> Self {
        let shard = index.to_string();
        let labels: &[(&str, &str)] = &[("shard", shard.as_str())];
        let ingest_latency = metrics.histogram("rbm_serve_ingest_latency_seconds", labels);
        let queue_depth = metrics.histogram("rbm_serve_queue_depth", labels);
        ShardWorker {
            index,
            registry,
            bus,
            gauge,
            streams: HashMap::new(),
            parked: HashMap::new(),
            pool: WorkspacePool::new(),
            dropped_unknown: 0,
            metrics,
            ingest_latency,
            queue_depth,
        }
    }

    /// The per-stream step-timing histogram handle for `id`.
    fn stream_step_histogram(&self, id: &str) -> Arc<Histogram> {
        self.metrics.histogram("rbm_serve_stream_step_seconds", &[("stream", id)])
    }

    /// The worker loop: runs until `Shutdown` (or every sender hung up),
    /// then finalizes all remaining streams.
    pub(crate) fn run(mut self, inbox: Receiver<ShardMsg>) -> ShardReport {
        while let Ok(msg) = inbox.recv() {
            match msg {
                ShardMsg::Attach { id, schema, spec, run, reply } => {
                    let result = self.attach(Arc::clone(&id), schema, spec, run);
                    let _ = reply.send(result);
                }
                ShardMsg::Ingest { id, payload } => {
                    let instances = payload.len();
                    self.ingest(&id, payload);
                    // Counted after the step so `enqueued − processed`
                    // includes the message currently being worked on.
                    self.gauge.record_processed(instances);
                    if rbm_im_obs::enabled() {
                        // The backlog left *after* this message: monotone
                        // counter difference, no cross-thread coordination.
                        let depth = self
                            .gauge
                            .enqueued_messages
                            .get()
                            .saturating_sub(self.gauge.processed_messages.get());
                        self.queue_depth.record(depth);
                    }
                }
                ShardMsg::Detach { id, reply } => {
                    let result = match self.streams.remove(&id) {
                        Some(state) => Ok(self.close_stream(&id, state)),
                        None => Err(ServeError::UnknownStream(id.to_string())),
                    };
                    let _ = reply.send(result);
                }
                ShardMsg::Drain { reply } => {
                    let _ = reply.send(());
                }
                ShardMsg::Inventory { reply } => {
                    let mut inventory: Vec<Arc<str>> = self.streams.keys().cloned().collect();
                    inventory.sort();
                    let _ = reply.send(inventory);
                }
                ShardMsg::Park { ids, reply } => {
                    for id in ids {
                        self.parked.entry(id).or_default();
                    }
                    let _ = reply.send(());
                }
                ShardMsg::Extract { id, reply } => {
                    let result = self.extract(&id);
                    let _ = reply.send(result);
                }
                ShardMsg::Unpark { id, reply } => {
                    let _ = reply.send(self.unpark(&id));
                }
                ShardMsg::Restore { id, bundle, kind, reply } => {
                    let result = self.restore(Arc::clone(&id), bundle, kind);
                    let _ = reply.send(result);
                }
                ShardMsg::Checkpoint { id, reply } => {
                    let result = match self.streams.get(&id) {
                        Some(state) => checkpoint_stream(&id, state),
                        None => Err(ServeError::UnknownStream(id.to_string())),
                    };
                    let _ = reply.send(result);
                }
                ShardMsg::CheckpointAll { reply } => {
                    let mut ids: Vec<Arc<str>> = self.streams.keys().cloned().collect();
                    ids.sort();
                    let result = ids
                        .iter()
                        .map(|id| checkpoint_stream(id, &self.streams[id]))
                        .collect::<Result<Vec<_>, _>>();
                    let _ = reply.send(result);
                }
                ShardMsg::Shutdown => break,
            }
        }
        // Finalize every stream still attached, in id order so reports are
        // deterministic.
        let mut ids: Vec<Arc<str>> = self.streams.keys().cloned().collect();
        ids.sort();
        let mut summaries = Vec::with_capacity(ids.len());
        for id in ids {
            let state = self.streams.remove(&id).expect("stream present");
            let result = self.close_stream(&id, state);
            summaries.push(StreamSummary { stream: id.to_string(), shard: self.index, result });
        }
        ShardReport {
            summaries,
            dropped_unknown: self.dropped_unknown,
            workspace_reuse_hits: self.pool.reuse_hits(),
            workspace_reuse_misses: self.pool.reuse_misses(),
        }
    }

    /// Builds a stream's pipeline state (shared by `Attach` and `Restore`):
    /// stepper from the spec, pooled RBM workspace adopted when the
    /// detector is RBM-family.
    fn build_stream(
        &mut self,
        schema: &StreamSchema,
        spec: &DetectorSpec,
        run: RunConfig,
    ) -> Result<(PipelineStepper, bool), ServeError> {
        let mut stepper = PipelineStepper::from_spec(&self.registry, spec, schema, run)
            .map_err(ServeError::from)?;
        // RBM-family detectors adopt a pooled scratch workspace so a new
        // stream inherits the buffer capacity grown by its predecessors.
        let pooled_workspace = match stepper.detector_mut().as_any_mut() {
            Some(any) => match any.downcast_mut::<RbmIm>() {
                Some(rbm) => {
                    // The replaced workspace is the detector's pristine
                    // (capacity-free) one; nothing worth pooling.
                    let _ = rbm.adopt_workspace(self.pool.checkout());
                    true
                }
                None => false,
            },
            None => false,
        };
        Ok((stepper, pooled_workspace))
    }

    fn attach(
        &mut self,
        id: Arc<str>,
        schema: StreamSchema,
        spec: DetectorSpec,
        run: RunConfig,
    ) -> Result<(), ServeError> {
        if self.streams.contains_key(&id) {
            return Err(ServeError::AlreadyAttached(id.to_string()));
        }
        let (stepper, pooled_workspace) = self.build_stream(&schema, &spec, run)?;
        self.bus.publish(ServeEvent {
            stream: Arc::clone(&id),
            shard: self.index,
            kind: ServeEventKind::Attached,
        });
        let step_latency = self.stream_step_histogram(&id);
        self.streams
            .insert(id, StreamState { stepper, schema, spec, run, pooled_workspace, step_latency });
        Ok(())
    }

    fn ingest(&mut self, id: &Arc<str>, payload: Payload) {
        // Parked ids buffer instead of processing — the stream is mid-
        // migration (or expected to arrive); nothing is lost, nothing is
        // reordered.
        if let Some(buffer) = self.parked.get_mut(id) {
            buffer.extend(payload.into_instances());
            return;
        }
        let Some(state) = self.streams.get_mut(id) else {
            self.dropped_unknown += payload.len();
            return;
        };
        let bus = &self.bus;
        let shard = self.index;
        let mut on_event = |event: &rbm_im_harness::pipeline::PipelineEvent<'_>| {
            bus.publish(ServeEvent {
                stream: Arc::clone(id),
                shard,
                kind: ServeEventKind::from_pipeline(event),
            });
        };
        // One clock pair per ingest message (not per instance) keeps the
        // metrics-on overhead bounded: client micro-batches amortize the
        // reads, and the recording itself is two wait-free `fetch_add`s.
        // Timing never influences stepping, so results are bitwise
        // identical with observability on or off.
        let started = if rbm_im_obs::enabled() { Some(Instant::now()) } else { None };
        match payload {
            Payload::One(instance) => state.stepper.step(instance, &mut on_event),
            Payload::Many(instances) => {
                for instance in instances {
                    state.stepper.step(instance, &mut on_event);
                }
            }
        }
        if let Some(started) = started {
            let elapsed_ns = started.elapsed().as_nanos() as u64;
            self.ingest_latency.record(elapsed_ns);
            state.step_latency.record(elapsed_ns);
        }
    }

    /// Removes a stream and packages it for migration. The park entry is
    /// kept (emptied) so ingest that arrives between the extract and the
    /// topology swap keeps buffering; `Unpark` later collects those
    /// stragglers. The stream's pooled workspace stays in *this* shard's
    /// pool — scratch carries no state and the target adopts its own.
    fn extract(&mut self, id: &Arc<str>) -> Result<MigrationBundle, ServeError> {
        let Some(mut state) = self.streams.remove(id) else {
            return Err(ServeError::UnknownStream(id.to_string()));
        };
        let snapshot = match state.stepper.state_snapshot() {
            Ok(snapshot) => snapshot,
            Err(e) => {
                // Abort: the stream stays attached on this shard.
                let result = Err(ServeError::Checkpoint(e.to_string()));
                self.streams.insert(Arc::clone(id), state);
                return result;
            }
        };
        let checkpoint = PipelineCheckpoint {
            schema: state.schema.clone(),
            spec: state.spec.clone(),
            run: state.run,
            state: snapshot,
        };
        let parked = self.parked.get_mut(id).map(std::mem::take).unwrap_or_default();
        if state.pooled_workspace {
            if let Some(rbm) =
                state.stepper.detector_mut().as_any_mut().and_then(|a| a.downcast_mut::<RbmIm>())
            {
                self.pool.restore(rbm.take_workspace());
            }
        }
        Ok(MigrationBundle { checkpoint, parked })
    }

    /// Closes a park entry. Still-attached stream (migration abort):
    /// replay the buffer through the stepper in place and return nothing.
    /// Gone stream (migration completed): return the stragglers for replay
    /// on the target.
    fn unpark(&mut self, id: &Arc<str>) -> Vec<Instance> {
        let buffered = self.parked.remove(id).unwrap_or_default();
        if self.streams.contains_key(id) {
            for instance in buffered {
                self.ingest(id, Payload::One(instance));
            }
            Vec::new()
        } else {
            buffered
        }
    }

    /// Rebuilds a stream from a migration bundle (or a disk checkpoint):
    /// fresh stepper from the recorded spec, state restored, then the
    /// carried instances and this shard's own park buffer replayed in
    /// arrival order.
    fn restore(
        &mut self,
        id: Arc<str>,
        bundle: MigrationBundle,
        kind: RestoreKind,
    ) -> Result<(), RestoreFailure> {
        if self.streams.contains_key(&id) {
            return Err(RestoreFailure {
                error: ServeError::AlreadyAttached(id.to_string()),
                bundle: Some(Box::new(bundle)),
            });
        }
        let MigrationBundle { checkpoint, parked } = bundle;
        let (mut stepper, pooled_workspace) =
            match self.build_stream(&checkpoint.schema, &checkpoint.spec, checkpoint.run) {
                Ok(built) => built,
                Err(error) => {
                    return Err(RestoreFailure {
                        error,
                        bundle: Some(Box::new(MigrationBundle { checkpoint, parked })),
                    });
                }
            };
        if let Err(e) = stepper.restore_state(&checkpoint.state) {
            // Reclaim the pooled workspace before the stepper is dropped —
            // a rejected snapshot must not leak pool capacity.
            if pooled_workspace {
                if let Some(rbm) =
                    stepper.detector_mut().as_any_mut().and_then(|a| a.downcast_mut::<RbmIm>())
                {
                    self.pool.restore(rbm.take_workspace());
                }
            }
            return Err(RestoreFailure {
                error: ServeError::Checkpoint(e.to_string()),
                bundle: Some(Box::new(MigrationBundle { checkpoint, parked })),
            });
        }
        let step_latency = self.stream_step_histogram(&id);
        self.streams.insert(
            Arc::clone(&id),
            StreamState {
                stepper,
                schema: checkpoint.schema,
                spec: checkpoint.spec,
                run: checkpoint.run,
                pooled_workspace,
                step_latency,
            },
        );
        // A live migration announces where the stream came from; a restore
        // from disk announces the stream like any fresh attach, so bus
        // subscribers see every serving stream either way. A reinstatement
        // after an aborted migration is silent — subscribers already saw
        // this stream attach.
        let event = match kind {
            RestoreKind::Migration { from_shard } => Some(ServeEventKind::Migrated { from_shard }),
            RestoreKind::FromDisk => Some(ServeEventKind::Attached),
            RestoreKind::Reinstate => None,
        };
        if let Some(kind) = event {
            self.bus.publish(ServeEvent { stream: Arc::clone(&id), shard: self.index, kind });
        }
        // Replay in arrival order: instances parked at the source first,
        // then whatever this shard parked while waiting for the state. The
        // park entry must be closed *before* replaying — `ingest` buffers
        // anything parked, so replaying through an open entry would cycle
        // the carried instances back into the buffer behind the local ones.
        let mut replay = parked;
        replay.extend(self.parked.remove(&id).unwrap_or_default());
        for instance in replay {
            self.ingest(&id, Payload::One(instance));
        }
        Ok(())
    }

    /// Flushes the stream's trailing detector micro-batch (emitting its
    /// events), reclaims a pooled workspace, publishes the `Detached`
    /// event and returns the final summary.
    fn close_stream(&mut self, id: &Arc<str>, state: StreamState) -> RunResult {
        let bus = &self.bus;
        let shard = self.index;
        let mut on_event = |event: &rbm_im_harness::pipeline::PipelineEvent<'_>| {
            bus.publish(ServeEvent {
                stream: Arc::clone(id),
                shard,
                kind: ServeEventKind::from_pipeline(event),
            });
        };
        let (result, mut detector) = state.stepper.finish(id.to_string(), &mut on_event);
        if state.pooled_workspace {
            if let Some(rbm) = detector.as_any_mut().and_then(|any| any.downcast_mut::<RbmIm>()) {
                self.pool.restore(rbm.take_workspace());
            }
        }
        self.bus.publish(ServeEvent {
            stream: Arc::clone(id),
            shard: self.index,
            kind: ServeEventKind::Detached { result: result.clone() },
        });
        result
    }
}

/// Non-destructive checkpoint of one attached stream.
fn checkpoint_stream(id: &Arc<str>, state: &StreamState) -> Result<StreamCheckpoint, ServeError> {
    let snapshot =
        state.stepper.state_snapshot().map_err(|e| ServeError::Checkpoint(e.to_string()))?;
    Ok(StreamCheckpoint {
        stream: id.to_string(),
        checkpoint: PipelineCheckpoint {
            schema: state.schema.clone(),
            spec: state.spec.clone(),
            run: state.run,
            state: snapshot,
        },
    })
}
