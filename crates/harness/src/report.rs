//! Result formatting: plain-text tables matching the layout of the paper's
//! tables/figures, plus JSON serialization of every experiment artifact.

use crate::detectors::DetectorKind;
use crate::experiment1::Experiment1Result;
use crate::experiment2::Experiment2Result;
use crate::experiment3::Experiment3Result;
use serde::Serialize;

/// Formats the Table III analogue: one row per benchmark, one column per
/// detector, for the chosen metric (`"pmAUC"` or `"pmGM"`).
pub fn format_table3(result: &Experiment1Result, metric: &str) -> String {
    let matrix = match metric {
        "pmGM" => result.pm_gmean_matrix(),
        _ => result.pm_auc_matrix(),
    };
    let mut out = String::new();
    out.push_str(&format!("{:<16}", format!("Dataset ({metric})")));
    for d in &result.detectors {
        out.push_str(&format!("{:>10}", d.name()));
    }
    out.push('\n');
    for (j, bench) in result.benchmarks.iter().enumerate() {
        out.push_str(&format!("{:<16}", truncate(bench, 15)));
        for row in &matrix {
            out.push_str(&format!("{:>10.2}", row[j]));
        }
        out.push('\n');
    }
    // Rank row (Friedman average ranks), as in the paper's last row.
    if let Ok(friedman) =
        if metric == "pmGM" { result.friedman_pm_gmean() } else { result.friedman_pm_auc() }
    {
        out.push_str(&format!("{:<16}", "avg rank"));
        for r in &friedman.average_ranks {
            out.push_str(&format!("{:>10.2}", r));
        }
        out.push('\n');
    }
    // Timing rows.
    out.push_str(&format!("{:<16}", "upd time [s]"));
    for (_, t) in result.average_update_seconds() {
        out.push_str(&format!("{:>10.3}", t));
    }
    out.push('\n');
    out
}

/// Formats the Bonferroni–Dunn summary used for Figs. 4 and 5.
pub fn format_ranking(result: &Experiment1Result, metric: &str, alpha: f64) -> String {
    let friedman = match if metric == "pmGM" {
        result.friedman_pm_gmean()
    } else {
        result.friedman_pm_auc()
    } {
        Ok(f) => f,
        Err(e) => return format!("ranking unavailable: {e}"),
    };
    let cd = result.critical_difference(alpha).unwrap_or(f64::NAN);
    let mut out = String::new();
    out.push_str(&format!(
        "Friedman ({metric}): chi2 = {:.3}, p = {:.2e}; Bonferroni-Dunn CD (alpha={alpha}) = {:.3}\n",
        friedman.chi_squared, friedman.p_value, cd
    ));
    let mut ranked: Vec<(&DetectorKind, f64)> =
        result.detectors.iter().zip(friedman.average_ranks.iter().copied()).collect();
    ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("ranks are not NaN"));
    for (d, r) in ranked {
        out.push_str(&format!("  {:<10} rank {:.2}\n", d.name(), r));
    }
    out
}

/// Formats a Fig. 8 / Fig. 9 style series table: rows are sweep points,
/// columns are detectors.
pub fn format_series_table(
    header: &str,
    xs: &[String],
    detectors: &[DetectorKind],
    series: &[Vec<f64>],
) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<24}", header));
    for d in detectors {
        out.push_str(&format!("{:>10}", d.name()));
    }
    out.push('\n');
    for (i, x) in xs.iter().enumerate() {
        out.push_str(&format!("{:<24}", truncate(x, 23)));
        for s in series {
            out.push_str(&format!("{:>10.2}", s.get(i).copied().unwrap_or(f64::NAN)));
        }
        out.push('\n');
    }
    out
}

/// Fig. 8 table from an Experiment 2 result.
pub fn format_fig8(result: &Experiment2Result) -> String {
    let xs: Vec<String> =
        result.points.iter().map(|p| format!("{} classes drift", p.classes_with_drift)).collect();
    let series: Vec<Vec<f64>> = result.detectors.iter().map(|d| result.series(*d)).collect();
    format_series_table("pmAUC vs drifting classes", &xs, &result.detectors, &series)
}

/// Fig. 9 table from an Experiment 3 result.
pub fn format_fig9(result: &Experiment3Result) -> String {
    let xs: Vec<String> =
        result.points.iter().map(|p| format!("IR = {}", p.imbalance_ratio)).collect();
    let series: Vec<Vec<f64>> = result.detectors.iter().map(|d| result.series(*d)).collect();
    format_series_table("pmAUC vs imbalance ratio", &xs, &result.detectors, &series)
}

/// Serializes any experiment artifact to pretty JSON.
pub fn to_json<T: Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).unwrap_or_else(|e| format!("{{\"error\": \"{e}\"}}"))
}

fn truncate(s: &str, max: usize) -> String {
    if s.len() <= max {
        s.to_string()
    } else {
        s[..max].to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment1::{run_experiment1, BuildConfigSerde, Experiment1Config};
    use crate::runner::RunConfig;

    fn tiny_result() -> Experiment1Result {
        let config = Experiment1Config {
            detectors: vec![DetectorKind::Fhddm, DetectorKind::RbmIm],
            build: BuildConfigSerde {
                seed: 1,
                scale_divisor: 500,
                n_drifts: 1,
                dynamic_imbalance: false,
            },
            run: RunConfig { metric_window: 400, max_instances: Some(1_500), ..Default::default() },
            benchmarks: vec!["RBF5".into(), "RandomTree5".into()],
        };
        run_experiment1(&config, |_| {})
    }

    #[test]
    fn table3_contains_all_rows_and_columns() {
        let result = tiny_result();
        let table = format_table3(&result, "pmAUC");
        assert!(table.contains("RBF5"));
        assert!(table.contains("RandomTree5"));
        assert!(table.contains("FHDDM"));
        assert!(table.contains("RBM-IM"));
        assert!(table.contains("avg rank"));
        assert!(table.contains("upd time"));
        let gm = format_table3(&result, "pmGM");
        assert!(gm.contains("pmGM"));
    }

    #[test]
    fn ranking_report_mentions_cd() {
        let result = tiny_result();
        let report = format_ranking(&result, "pmAUC", 0.05);
        assert!(report.contains("Bonferroni-Dunn CD"));
        assert!(report.contains("RBM-IM"));
    }

    #[test]
    fn series_table_and_json_are_well_formed() {
        let xs = vec!["IR = 50".to_string(), "IR = 100".to_string()];
        let detectors = vec![DetectorKind::Ddm, DetectorKind::RbmIm];
        let series = vec![vec![60.0, 55.0], vec![80.0, 78.0]];
        let table = format_series_table("pmAUC vs IR", &xs, &detectors, &series);
        assert!(table.contains("IR = 50"));
        assert!(table.contains("80.00"));
        let json = to_json(&detectors);
        assert!(json.contains("RbmIm"));
    }

    #[test]
    fn truncate_cuts_long_names() {
        assert_eq!(truncate("short", 10), "short");
        assert_eq!(truncate("averylongbenchmarkname", 5), "avery");
    }
}
