//! Statistical quality of the consistent-hash ring router.
//!
//! Two properties matter for elastic serving: placement must be close to
//! uniform (no shard becomes a hotspot just because of how ids hash), and
//! resizing must move only `≈ K/N` of `K` streams — the consistent-hashing
//! bound — instead of the near-total reshuffle a modulo router causes.

use rbm_im_serve::StreamRouter;
use rbm_im_stats::distributions::{ChiSquared, ContinuousDistribution};
use rbm_im_streams::source::derive_stream_seed;

fn ids(count: usize) -> Vec<String> {
    (0..count).map(|i| format!("user-stream-{i:06}")).collect()
}

/// Chi-square goodness-of-fit of ring placement: 1k stream ids over 8
/// shards × 64 virtual nodes must be statistically compatible with the
/// uniform distribution (and stay so at other shard counts).
#[test]
fn ring_placement_is_chi_square_uniform() {
    let ids = ids(1_000);
    for num_shards in [4usize, 8, 16] {
        let router = StreamRouter::with_virtual_nodes(num_shards, 64);
        let mut counts = vec![0usize; num_shards];
        for id in &ids {
            counts[router.shard_of(id)] += 1;
        }
        let expected = ids.len() as f64 / num_shards as f64;
        let statistic: f64 = counts.iter().map(|&c| (c as f64 - expected).powi(2) / expected).sum();
        let p = ChiSquared::new((num_shards - 1) as f64).sf(statistic);
        // A fair router fails a 0.1% test only 1 in 1000 times; the ids and
        // ring are deterministic, so this is a fixed, reproducible check.
        assert!(
            p > 0.001,
            "{num_shards} shards: chi²={statistic:.2}, p={p:.6}, counts={counts:?} — placement \
             is measurably non-uniform"
        );
    }
}

/// The consistent-hashing movement bound: growing N→N+1 moves about K/(N+1)
/// streams — and never more than twice that — while the modulo router
/// moves nearly everything.
#[test]
fn resize_moves_at_most_a_ring_fraction_of_streams() {
    let ids = ids(1_000);
    let k = ids.len() as f64;

    for (from, to) in [(8usize, 9usize), (4, 8), (8, 4)] {
        let before = StreamRouter::new(from);
        let after = StreamRouter::new(to);
        let ring_moved = ids.iter().filter(|id| before.shard_of(id) != after.shard_of(id)).count();
        // Expected fraction: the share of ring points that changed hands —
        // |removed ∪ added| / max(from, to) of the id space.
        let expected_fraction = (from as f64 - to as f64).abs() / (from.max(to) as f64);
        let bound = (2.0 * expected_fraction * k).ceil() as usize;
        assert!(
            ring_moved <= bound,
            "{from}→{to}: ring moved {ring_moved}/{} streams, bound {bound}",
            ids.len()
        );
        assert!(ring_moved > 0, "{from}→{to}: a resize must move something");

        // The modulo router reassigns nearly everything on a non-divisor
        // resize (N→N+1 is the canonical case; power-of-two doublings are
        // modulo's one benign special case, so the contrast is asserted
        // where it is meaningful).
        if from % to != 0 && to % from != 0 {
            let salt = 0x5eed_0000_1207_a11bu64;
            let modulo_moved = ids
                .iter()
                .filter(|id| {
                    let h = derive_stream_seed(salt, id);
                    h % from as u64 != h % to as u64
                })
                .count();
            assert!(
                ring_moved * 3 < modulo_moved,
                "{from}→{to}: ring ({ring_moved}) must move far fewer streams than modulo \
                 ({modulo_moved})"
            );
        }
    }
}

/// Movement under a grow goes exclusively *to* the added shards, and under
/// a shrink exclusively *from* the removed shards — the property that lets
/// `resize_shards` migrate only ring-reassigned streams.
#[test]
fn moves_are_confined_to_added_or_removed_shards() {
    let ids = ids(2_000);
    let before = StreamRouter::new(6);
    let grown = StreamRouter::new(9);
    for id in &ids {
        let (old, new) = (before.shard_of(id), grown.shard_of(id));
        assert!(old == new || new >= 6, "{id}: grow moved {old}→{new} between survivors");
    }
    let shrunk = StreamRouter::new(3);
    for id in &ids {
        let (old, new) = (before.shard_of(id), shrunk.shard_of(id));
        assert!(old == new || old >= 3, "{id}: shrink moved a surviving shard's stream");
        assert!(new < 3);
    }
}
