//! `obs_overhead`: what the telemetry plane costs the ingest hot path.
//!
//! The same 32-stream serving workload is pumped to completion twice: with
//! the metrics plane disabled (the default — every `record()` call site is
//! behind a single relaxed atomic load) and with it force-enabled (as
//! `RBM_OBS=on` would), so per-shard ingest latency histograms, queue-depth
//! gauges, per-stream step timers, and throughput counters all take real
//! writes on every message. The contract pinned in `BENCH_obs.json` is that
//! the enabled arm stays within ~3% of the disabled arm's ingest
//! throughput — telemetry is allocation-free and wait-free on the hot path,
//! so the delta is a handful of atomic ops per instance batch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rbm_im_harness::registry::DetectorSpec;
use rbm_im_serve::{ServeConfig, ServerHandle};
use rbm_im_streams::generators::RandomRbfGenerator;
use rbm_im_streams::{DataStream, Instance, StreamExt, StreamSchema};

const STREAMS: usize = 32;
const INSTANCES_PER_STREAM: usize = 400;
const SHARDS: usize = 2;

/// Pre-recorded drifting feeds so iterations measure serving, not
/// generation.
fn record_feeds() -> Vec<(String, StreamSchema, Vec<Instance>)> {
    (0..STREAMS)
        .map(|i| {
            let mut gen = RandomRbfGenerator::new(10, 4, 2, 0.0, 2_600 + i as u64);
            let schema = gen.schema().clone();
            let mut instances = gen.take_instances(INSTANCES_PER_STREAM / 2);
            gen.regenerate();
            instances.extend(gen.take_instances(INSTANCES_PER_STREAM / 2));
            (format!("feed-{i:02}"), schema, instances)
        })
        .collect()
}

fn bench_obs_overhead(c: &mut Criterion) {
    rbm_im_bench::print_runner_metadata();
    let feeds = record_feeds();
    let spec = DetectorSpec::parse("rbm(minibatch=25, warmup=4)").unwrap();
    let total = (STREAMS * INSTANCES_PER_STREAM) as u64;

    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(10);
    group.throughput(Throughput::Elements(total));
    for arm in ["metrics-off", "metrics-on"] {
        group.bench_with_input(BenchmarkId::new("32streams", arm), &(), |b, _| {
            rbm_im_obs::force_enabled(arm == "metrics-on");
            b.iter(|| {
                let server = ServerHandle::start(ServeConfig {
                    num_shards: SHARDS,
                    queue_capacity: 256,
                    ..Default::default()
                });
                let clients: Vec<_> = feeds
                    .iter()
                    .map(|(id, schema, _)| server.attach(id, schema.clone(), &spec).unwrap())
                    .collect();
                for chunk_start in (0..INSTANCES_PER_STREAM).step_by(50) {
                    for ((_, _, instances), client) in feeds.iter().zip(&clients) {
                        let end = (chunk_start + 50).min(instances.len());
                        client.ingest_batch(instances[chunk_start..end].to_vec()).unwrap();
                    }
                }
                server.drain();
                server.shutdown()
            });
            rbm_im_obs::force_enabled(false);
        });
    }
    group.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
