//! CUSUM — cumulative sum change detector.
//!
//! The one-sided CUSUM over the error indicator: the statistic
//! `g_t = max(0, g_{t-1} + (x_t − μ̂ − δ))` accumulates evidence of an error
//! increase; `g_t > λ` signals a change. A close sibling of
//! [`crate::page_hinkley::PageHinkley`], included because it is a standard
//! baseline in the drift-detection literature surveyed by the paper.

use crate::{DetectorState, DriftDetector, Observation};

/// Configuration of [`Cusum`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CusumConfig {
    /// Minimum number of instances before the test activates.
    pub min_instances: u64,
    /// Slack value δ subtracted from each deviation.
    pub delta: f64,
    /// Detection threshold λ.
    pub lambda: f64,
}

impl Default for CusumConfig {
    fn default() -> Self {
        CusumConfig { min_instances: 30, delta: 0.05, lambda: 20.0 }
    }
}

/// The one-sided CUSUM detector.
#[derive(Debug, Clone)]
pub struct Cusum {
    config: CusumConfig,
    n: u64,
    mean: f64,
    g: f64,
    state: DetectorState,
}

impl Cusum {
    /// Creates a CUSUM detector with the default configuration.
    pub fn new() -> Self {
        Self::with_config(CusumConfig::default())
    }

    /// Creates a CUSUM detector with an explicit configuration.
    pub fn with_config(config: CusumConfig) -> Self {
        assert!(config.lambda > 0.0);
        Cusum { config, n: 0, mean: 0.0, g: 0.0, state: DetectorState::Stable }
    }

    /// Current value of the CUSUM statistic.
    pub fn statistic(&self) -> f64 {
        self.g
    }
}

impl Default for Cusum {
    fn default() -> Self {
        Self::new()
    }
}

impl DriftDetector for Cusum {
    fn update(&mut self, observation: &Observation<'_>) -> DetectorState {
        let x = if observation.correct { 0.0 } else { 1.0 };
        self.n += 1;
        self.mean += (x - self.mean) / self.n as f64;
        self.g = (self.g + x - self.mean - self.config.delta).max(0.0);
        self.state = if self.n >= self.config.min_instances && self.g > self.config.lambda {
            let c = self.config;
            *self = Cusum::with_config(c);
            DetectorState::Drift
        } else {
            DetectorState::Stable
        };
        self.state
    }

    fn state(&self) -> DetectorState {
        self.state
    }

    fn reset(&mut self) {
        *self = Cusum::with_config(self.config);
    }

    fn name(&self) -> &'static str {
        "CUSUM"
    }

    fn snapshot_state(&self) -> Option<serde::Value> {
        use serde::{Serialize, Value};
        Some(Value::object(vec![
            ("n", self.n.serialize_value()),
            ("mean", self.mean.serialize_value()),
            ("g", self.g.serialize_value()),
            ("state", self.state.serialize_value()),
        ]))
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), serde::Error> {
        self.n = state.field("n")?;
        self.mean = state.field("mean")?;
        self.g = state.field("g")?;
        self.state = state.field("state")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{
        assert_detects_abrupt_change, assert_quiet_on_stationary, run_error_stream,
    };

    #[test]
    fn detects_abrupt_error_increase() {
        assert_detects_abrupt_change(&mut Cusum::new(), 500, 2);
    }

    #[test]
    fn quiet_on_stationary_stream() {
        assert_quiet_on_stationary(&mut Cusum::new(), 2);
    }

    #[test]
    fn statistic_stays_near_zero_when_stable() {
        let mut cusum = Cusum::new();
        run_error_stream(&mut cusum, 0.2, 0.2, usize::MAX, 3000, 4);
        assert!(
            cusum.statistic() < 5.0,
            "statistic should hover near zero, got {}",
            cusum.statistic()
        );
    }

    #[test]
    fn improvement_does_not_trigger() {
        assert!(run_error_stream(&mut Cusum::new(), 0.5, 0.05, 3000, 6000, 6).is_empty());
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut cusum = Cusum::new();
        run_error_stream(&mut cusum, 0.1, 0.7, 500, 2000, 2);
        cusum.reset();
        assert_eq!(cusum.state(), DetectorState::Stable);
        assert_eq!(cusum.statistic(), 0.0);
        assert_eq!(cusum.name(), "CUSUM");
    }

    #[test]
    #[should_panic]
    fn invalid_lambda_rejected() {
        Cusum::with_config(CusumConfig { lambda: 0.0, ..Default::default() });
    }
}
