//! Offline stand-in for `rayon`.
//!
//! Implements the small slice of the rayon API this workspace uses —
//! `par_iter` / `into_par_iter` followed by `map` / `for_each` / `collect`,
//! plus `ThreadPoolBuilder::install` for pinning the worker count — on top
//! of `std::thread::scope`. Work is split into contiguous chunks, one per
//! worker, and results are stitched back **in input order**, so `collect`
//! output is independent of the number of threads (the property the
//! harness's `run_grid` determinism test relies on).

use std::cell::Cell;
use std::fmt;
use std::num::NonZeroUsize;

thread_local! {
    static INSTALLED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads parallel operations will use on this thread.
pub fn current_num_threads() -> usize {
    INSTALLED_THREADS.with(|n| {
        n.get().unwrap_or_else(|| {
            std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
        })
    })
}

/// Error type of [`ThreadPoolBuilder::build`] (infallible here, kept for API
/// compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a scoped "thread pool" (really: a worker-count override).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default worker count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of worker threads (0 = default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool { num_threads: self.num_threads })
    }
}

/// A handle that pins the worker count for closures run via
/// [`ThreadPool::install`].
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: Option<usize>,
}

impl ThreadPool {
    /// Runs `op` with this pool's worker count active on the current thread.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        INSTALLED_THREADS.with(|n| {
            let previous = n.get();
            n.set(self.num_threads);
            let result = op();
            n.set(previous);
            result
        })
    }

    /// The worker count parallel operations under this pool will use.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads.unwrap_or_else(|| {
            std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
        })
    }
}

/// Order-preserving parallel map: applies `f` to every item, splitting the
/// input into one contiguous chunk per worker thread.
fn parallel_map_indexed<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = current_num_threads().max(1);
    if workers == 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let total = items.len();
    let chunk_size = total.div_ceil(workers);
    let mut chunks: Vec<Vec<T>> = Vec::new();
    let mut items = items;
    // Split back-to-front so each drain is O(chunk).
    while !items.is_empty() {
        let at = items.len().saturating_sub(chunk_size);
        chunks.push(items.split_off(at));
    }
    chunks.reverse();
    let f = &f;
    let mut results: Vec<Vec<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles.into_iter().map(|h| h.join().expect("rayon stub worker panicked")).collect()
    });
    let mut out = Vec::with_capacity(total);
    for part in results.iter_mut() {
        out.append(part);
    }
    out
}

/// A to-be-executed parallel iterator (eagerly materialized item list plus a
/// deferred mapping).
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Maps every item (deferred until a consumer runs). The bounds are
    /// stated here (not only on the consumers) so closure parameter types
    /// infer at the call site, like real rayon.
    pub fn map<R, F>(self, f: F) -> MappedParIter<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        MappedParIter { items: self.items, f }
    }

    /// Runs `f` on every item in parallel.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        parallel_map_indexed(self.items, f);
    }

    /// Collects the items (identity pipeline).
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// A mapped parallel iterator.
pub struct MappedParIter<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> MappedParIter<T, F> {
    /// Executes the map in parallel and collects in input order.
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn(T) -> R + Sync,
        C: FromIterator<R>,
    {
        parallel_map_indexed(self.items, self.f).into_iter().collect()
    }

    /// Executes the map and discards results.
    pub fn for_each<R, G>(self, g: G)
    where
        R: Send,
        F: Fn(T) -> R + Sync,
        G: Fn(R) + Sync,
    {
        let f = self.f;
        parallel_map_indexed(self.items, move |item| g(f(item)));
    }
}

/// Conversion into a parallel iterator over owned items.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter { items: self.collect() }
    }
}

/// Borrowing parallel iteration (`par_iter`).
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed item type.
    type Item: Send + 'a;
    /// Parallel iterator over references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

/// The usual rayon prelude.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn output_is_identical_across_thread_counts() {
        let work = |n: usize| -> Vec<usize> {
            (0..97usize).collect::<Vec<_>>().into_par_iter().map(move |x| x * n).collect()
        };
        let single = ThreadPoolBuilder::new().num_threads(1).build().unwrap().install(|| work(3));
        let many = ThreadPoolBuilder::new().num_threads(7).build().unwrap().install(|| work(3));
        assert_eq!(single, many);
    }

    #[test]
    fn install_restores_previous_count() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let outside = current_num_threads();
        pool.install(|| assert_eq!(current_num_threads(), 2));
        assert_eq!(current_num_threads(), outside);
    }

    #[test]
    fn for_each_visits_everything() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let sum = AtomicUsize::new(0);
        (0..100usize).into_par_iter().for_each(|x| {
            sum.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }
}
