//! The unified evaluation `Pipeline`: stream × classifier × detector ×
//! metrics, composed through [`PipelineBuilder`] and scaled out through the
//! rayon-parallel [`run_grid`].
//!
//! This replaces the old `run_detector_on_stream` free function, which
//! hard-coded the classifier, allocated fresh vectors in the hot loop and
//! forced every caller through the closed `DetectorKind` enum. The pipeline
//!
//! * is generic over the [`OnlineClassifier`] driving the detector (the
//!   paper's CSPT by default),
//! * resolves detectors through the open [`DetectorRegistry`] (or accepts any
//!   pre-built `DriftDetector`),
//! * reuses one scores buffer and one drift-attribution buffer across the
//!   whole stream (`predict_scores_into` / `drifted_classes_into`) and can
//!   feed the detector in mini-batches (`update_batch`, RBM-IM's natural
//!   mode),
//! * emits drift / warning / snapshot events to caller-supplied sinks, and
//! * runs whole detector × stream grids in parallel with deterministic
//!   per-cell seeding, so Table III regenerates on all cores with output
//!   byte-identical to a single-threaded run.
//!
//! ```
//! use rbm_im_harness::pipeline::{PipelineBuilder, RunConfig};
//! use rbm_im_harness::registry::DetectorSpec;
//! use rbm_im_streams::registry::{benchmark_by_name, BuildConfig};
//!
//! let build = BuildConfig { scale_divisor: 2_000, ..Default::default() };
//! let stream = benchmark_by_name("RBF5").unwrap().build(&build);
//! let result = PipelineBuilder::new()
//!     .stream(stream)
//!     .detector_spec(DetectorSpec::parse("adwin(delta=0.01)").unwrap())
//!     .config(RunConfig { metric_window: 200, max_instances: Some(500), ..Default::default() })
//!     .run()
//!     .unwrap();
//! assert_eq!(result.instances, 500);
//! ```

use crate::registry::{DetectorRegistry, DetectorSpec, RegistryError};
use crate::stepper::PipelineStepper;
use rayon::prelude::*;
use rbm_im_classifiers::{CostSensitivePerceptronTree, OnlineClassifier};
use rbm_im_detectors::DriftDetector;
use rbm_im_metrics::PrequentialSnapshot;
use rbm_im_streams::registry::{BenchmarkSpec, BuildConfig};
use rbm_im_streams::source::StreamSource;
use rbm_im_streams::{DataStream, StreamSchema};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Configuration of a single prequential run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunConfig {
    /// Window size of the prequential metrics (the paper uses 1000).
    pub metric_window: usize,
    /// Maximum number of instances to process (`None` = until exhaustion).
    pub max_instances: Option<u64>,
    /// Whether the classifier is reset when the detector fires.
    pub reset_on_drift: bool,
    /// How many observations are buffered before the detector sees them
    /// (`1` = classic per-instance test-then-train; larger values trade
    /// reaction latency for `update_batch` throughput — RBM-IM's natural
    /// mode). Drift positions always refer to the observation that
    /// triggered the signal, whatever the batch size.
    pub detector_batch: usize,
    /// Emit a [`PipelineEvent::Snapshot`] every this many instances
    /// (`None` = no snapshot events).
    pub snapshot_every: Option<u64>,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            metric_window: 1000,
            max_instances: None,
            reset_on_drift: true,
            detector_batch: 1,
            snapshot_every: None,
        }
    }
}

/// Outcome of one prequential run (one cell of Table III plus diagnostics).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Label of the detector evaluated: the detector's display name, or the
    /// spec label (`"adwin(delta=0.01)"`) for tuned registry variants.
    pub detector: String,
    /// Stream name.
    pub stream: String,
    /// Stream-averaged prequential multi-class AUC, in percent.
    pub pm_auc: f64,
    /// Stream-averaged prequential multi-class G-mean, in percent.
    pub pm_gmean: f64,
    /// Final windowed accuracy, in percent.
    pub accuracy: f64,
    /// Final windowed Cohen's kappa.
    pub kappa: f64,
    /// Number of instances processed.
    pub instances: u64,
    /// Positions at which the detector signalled drift.
    pub detections: Vec<u64>,
    /// Total seconds spent in detector update calls.
    pub detector_update_seconds: f64,
    /// Total seconds spent testing (classifier prediction + metric update).
    pub test_seconds: f64,
    /// Total seconds spent training the classifier.
    pub train_seconds: f64,
}

impl RunResult {
    /// Number of drift signals raised.
    pub fn drift_count(&self) -> usize {
        self.detections.len()
    }
}

/// Events emitted to [`PipelineBuilder::on_event`] sinks during a run.
#[derive(Debug)]
pub enum PipelineEvent<'a> {
    /// The detector entered the warning zone at `position`.
    Warning {
        /// Stream index of the triggering observation. For
        /// `detector_batch > 1` warnings are flush-granular: the position
        /// is the last instance of the flush that ended in the warning
        /// state, and warning episodes fully contained inside one flush
        /// are not observable.
        position: u64,
    },
    /// The detector signalled a drift.
    Drift {
        /// Stream index of the triggering observation.
        position: u64,
        /// Classes implicated by per-class detectors (empty for global
        /// detectors; for `detector_batch > 1` only the last drift of a
        /// flush carries attribution).
        classes: &'a [usize],
    },
    /// Periodic metric snapshot (cadence = `RunConfig::snapshot_every`).
    Snapshot {
        /// Stream index at which the snapshot was taken.
        position: u64,
        /// Windowed metric values.
        snapshot: PrequentialSnapshot,
    },
}

/// Errors raised when assembling or running a pipeline.
#[derive(Debug)]
pub enum PipelineError {
    /// No stream was supplied to the builder.
    MissingStream,
    /// Detector resolution through the registry failed.
    Registry(RegistryError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::MissingStream => write!(f, "pipeline has no stream; call .stream(…)"),
            PipelineError::Registry(e) => write!(f, "pipeline detector resolution failed: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<RegistryError> for PipelineError {
    fn from(e: RegistryError) -> Self {
        PipelineError::Registry(e)
    }
}

enum DetectorSource {
    Built { detector: Box<dyn DriftDetector + Send>, label: String },
    Spec(DetectorSpec),
}

type ClassifierFactory<'a, C> = Box<dyn FnOnce(&StreamSchema) -> C + 'a>;
type EventSink<'a> = Box<dyn FnMut(&PipelineEvent<'_>) + 'a>;

/// Builder assembling one prequential evaluation run.
///
/// Generic over the classifier type `C`; [`PipelineBuilder::new`] starts
/// with the paper's base classifier (CSPT) and [`PipelineBuilder::classifier`]
/// swaps in any other [`OnlineClassifier`]. The detector defaults to RBM-IM
/// (the paper's contribution) resolved from the default registry.
pub struct PipelineBuilder<'a, C: OnlineClassifier = CostSensitivePerceptronTree> {
    stream: Option<Box<dyn DataStream + Send + 'a>>,
    detector: Option<DetectorSource>,
    registry: Option<&'a DetectorRegistry>,
    classifier_factory: ClassifierFactory<'a, C>,
    config: RunConfig,
    sinks: Vec<EventSink<'a>>,
    stream_label: Option<String>,
}

impl<'a> PipelineBuilder<'a, CostSensitivePerceptronTree> {
    /// A builder with the paper's defaults: CSPT classifier, RBM-IM
    /// detector, `RunConfig::default()`.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        PipelineBuilder {
            stream: None,
            detector: None,
            registry: None,
            classifier_factory: Box::new(|schema: &StreamSchema| {
                CostSensitivePerceptronTree::new(schema.num_features, schema.num_classes)
            }),
            config: RunConfig::default(),
            sinks: Vec::new(),
            stream_label: None,
        }
    }
}

impl<'a, C: OnlineClassifier> PipelineBuilder<'a, C> {
    /// Sets the stream to evaluate on. The stream may borrow local state
    /// (anything alive for the builder's lifetime), so both owned
    /// generators and `&mut`-wrapped streams work.
    pub fn stream(mut self, stream: impl DataStream + Send + 'a) -> Self {
        self.stream = Some(Box::new(stream));
        self
    }

    /// Sets an already-boxed stream (registry / scenario builders hand
    /// streams out this way).
    pub fn boxed_stream(mut self, stream: Box<dyn DataStream + Send>) -> Self {
        self.stream = Some(stream);
        self
    }

    /// Overrides the stream name recorded in the result (wrapped streams
    /// often rename themselves; experiments want the benchmark name).
    pub fn stream_label(mut self, label: impl Into<String>) -> Self {
        self.stream_label = Some(label.into());
        self
    }

    /// Sets a pre-built detector instance.
    pub fn detector(mut self, detector: impl DriftDetector + Send + 'static) -> Self {
        let label = detector.name().to_string();
        self.detector = Some(DetectorSource::Built { detector: Box::new(detector), label });
        self
    }

    /// Sets an already-boxed detector.
    pub fn boxed_detector(mut self, detector: Box<dyn DriftDetector + Send>) -> Self {
        let label = detector.name().to_string();
        self.detector = Some(DetectorSource::Built { detector, label });
        self
    }

    /// Sets the detector by registry spec, resolved against the builder's
    /// registry (default: [`DetectorRegistry::global`]) when the run starts
    /// and the stream schema is known.
    pub fn detector_spec(mut self, spec: DetectorSpec) -> Self {
        self.detector = Some(DetectorSource::Spec(spec));
        self
    }

    /// Uses a non-default detector registry for spec resolution.
    pub fn registry(mut self, registry: &'a DetectorRegistry) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Replaces the classifier driving the detector. Changes the builder's
    /// classifier type parameter.
    pub fn classifier<D: OnlineClassifier + 'a>(self, classifier: D) -> PipelineBuilder<'a, D> {
        self.classifier_with(move |_schema| classifier)
    }

    /// Replaces the classifier with one built from the stream schema at run
    /// time (useful when the schema is not known at call site).
    pub fn classifier_with<D: OnlineClassifier>(
        self,
        factory: impl FnOnce(&StreamSchema) -> D + 'a,
    ) -> PipelineBuilder<'a, D> {
        PipelineBuilder {
            stream: self.stream,
            detector: self.detector,
            registry: self.registry,
            classifier_factory: Box::new(factory),
            config: self.config,
            sinks: self.sinks,
            stream_label: self.stream_label,
        }
    }

    /// Sets the run configuration.
    pub fn config(mut self, config: RunConfig) -> Self {
        self.config = config;
        self
    }

    /// Registers an event sink receiving drift / warning / snapshot events.
    /// Multiple sinks are invoked in registration order.
    pub fn on_event(mut self, sink: impl FnMut(&PipelineEvent<'_>) + 'a) -> Self {
        self.sinks.push(Box::new(sink));
        self
    }

    /// Runs the pipeline to stream exhaustion (or `max_instances`).
    ///
    /// The loop body lives in [`PipelineStepper`] — the serving layer's
    /// shards drive the identical code per instance, which is what pins
    /// sharded serving to the sequential run bit for bit.
    pub fn run(self) -> Result<RunResult, PipelineError> {
        let mut stream = self.stream.ok_or(PipelineError::MissingStream)?;
        let schema = stream.schema().clone();
        let registry = match self.registry {
            Some(registry) => registry,
            None => DetectorRegistry::global(),
        };
        let (detector, detector_label) = match self.detector {
            Some(DetectorSource::Built { detector, label }) => (detector, label),
            Some(DetectorSource::Spec(spec)) => {
                let detector = registry.build(&spec, schema.num_features, schema.num_classes)?;
                (detector, spec.label())
            }
            None => {
                let spec = DetectorSpec::new("rbm-im");
                let detector = registry.build(&spec, schema.num_features, schema.num_classes)?;
                let label = detector.name().to_string();
                (detector, label)
            }
        };
        let classifier = (self.classifier_factory)(&schema);
        let mut sinks = self.sinks;
        let config = self.config;
        let mut stepper =
            PipelineStepper::new(classifier, detector, detector_label, schema.num_classes, config);
        let mut emit = move |event: &PipelineEvent<'_>| {
            for sink in sinks.iter_mut() {
                sink(event);
            }
        };

        while let Some(instance) = stream.next_instance() {
            if let Some(limit) = config.max_instances {
                if stepper.instances() >= limit {
                    break;
                }
            }
            stepper.step(instance, &mut emit);
        }
        // `finish` flushes the trailing partial detector batch.
        let (result, _detector) =
            stepper.finish(self.stream_label.unwrap_or(schema.name), &mut emit);
        Ok(result)
    }
}

/// A named, repeatable stream source for [`run_grid`]: every call to
/// [`GridStream::build`] must yield an identical stream, so grid cells can
/// be evaluated in any order (and on any thread) with identical results.
pub struct GridStream {
    /// Name recorded in the results (benchmark name / sweep label).
    pub name: String,
    builder: Box<dyn Fn() -> Box<dyn DataStream + Send> + Send + Sync>,
}

impl GridStream {
    /// Wraps an arbitrary deterministic stream factory.
    pub fn new(
        name: impl Into<String>,
        builder: impl Fn() -> Box<dyn DataStream + Send> + Send + Sync + 'static,
    ) -> Self {
        GridStream { name: name.into(), builder: Box::new(builder) }
    }

    /// Grid stream for a registry benchmark, with the cell seed derived
    /// deterministically from the base seed and the benchmark name (all
    /// detectors on a benchmark see the *same* stream — the fairness
    /// requirement of the Friedman ranking — while different benchmarks are
    /// decorrelated).
    pub fn from_benchmark(spec: BenchmarkSpec, build: BuildConfig) -> Self {
        let cell_build = BuildConfig { seed: derive_seed(build.seed, &spec.name), ..build };
        let name = spec.name.clone();
        GridStream::new(name, move || spec.build(&cell_build))
    }

    /// Grid stream wrapping a stream-id'd replayable [`StreamSource`]
    /// (the serving
    /// layer's stream recipe type): the source id becomes the grid name and
    /// every cell opens a fresh, identical copy.
    pub fn from_source(source: StreamSource) -> Self {
        GridStream { name: source.id().to_string(), builder: Box::new(move || source.open()) }
    }

    /// Builds a fresh copy of the stream.
    pub fn build(&self) -> Box<dyn DataStream + Send> {
        (self.builder)()
    }
}

impl fmt::Debug for GridStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GridStream").field("name", &self.name).finish()
    }
}

/// Deterministic seed mix of a base seed and a stream name. The canonical
/// definition lives in the streams crate
/// ([`rbm_im_streams::source::derive_stream_seed`], shared with the serving
/// layer's per-stream seeding); this re-export keeps the grid's historic
/// entry point.
pub fn derive_seed(base: u64, name: &str) -> u64 {
    rbm_im_streams::source::derive_stream_seed(base, name)
}

/// Runs every detector × stream cell of the grid in parallel (rayon) against
/// the default registry. Results come back in row-major order (stream-major,
/// detector-minor) and are byte-identical whatever the worker thread count,
/// because each cell builds its own deterministically seeded stream and
/// detector.
pub fn run_grid(
    detectors: &[DetectorSpec],
    streams: &[GridStream],
    config: &RunConfig,
) -> Result<Vec<RunResult>, PipelineError> {
    run_grid_with(DetectorRegistry::global(), detectors, streams, config)
}

/// [`run_grid`] against an explicit registry.
pub fn run_grid_with(
    registry: &DetectorRegistry,
    detectors: &[DetectorSpec],
    streams: &[GridStream],
    config: &RunConfig,
) -> Result<Vec<RunResult>, PipelineError> {
    run_grid_observed(registry, detectors, streams, config, |_| {})
}

/// [`run_grid_with`] plus a streaming progress callback: `on_cell` fires on
/// a worker thread as each cell *completes* (completion order, not grid
/// order — long-running grids get live progress instead of silence). The
/// returned `Vec` is still in deterministic row-major grid order.
pub fn run_grid_observed(
    registry: &DetectorRegistry,
    detectors: &[DetectorSpec],
    streams: &[GridStream],
    config: &RunConfig,
    on_cell: impl Fn(&RunResult) + Sync,
) -> Result<Vec<RunResult>, PipelineError> {
    let cells: Vec<(usize, usize)> =
        (0..streams.len()).flat_map(|s| (0..detectors.len()).map(move |d| (s, d))).collect();
    let results: Vec<Result<RunResult, PipelineError>> = cells
        .par_iter()
        .map(|&(stream_index, detector_index)| {
            let grid_stream = &streams[stream_index];
            let spec = &detectors[detector_index];
            let result = PipelineBuilder::new()
                .registry(registry)
                .boxed_stream(grid_stream.build())
                .stream_label(grid_stream.name.clone())
                .detector_spec(spec.clone())
                .config(*config)
                .run();
            if let Ok(run) = &result {
                on_cell(run);
            }
            result
        })
        .collect();
    results.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detectors::DetectorKind;
    use rbm_im_classifiers::GaussianNaiveBayes;
    use rbm_im_streams::generators::RandomRbfGenerator;
    use rbm_im_streams::scenarios::{scenario1, ScenarioConfig};
    use rbm_im_streams::stream::BoundedStream;
    use std::cell::RefCell;

    fn small_scenario() -> ScenarioConfig {
        ScenarioConfig {
            length: 8_000,
            num_features: 8,
            num_classes: 3,
            imbalance_ratio: 10.0,
            n_drifts: 1,
            ..Default::default()
        }
    }

    #[test]
    fn pipeline_produces_sane_metrics() {
        let scenario = scenario1(&small_scenario());
        let result = PipelineBuilder::new()
            .boxed_stream(scenario.stream)
            .detector_spec(DetectorKind::RbmIm.spec())
            .config(RunConfig { metric_window: 500, ..Default::default() })
            .run()
            .unwrap();
        assert_eq!(result.instances, 8_000);
        assert!(result.pm_auc > 0.0 && result.pm_auc <= 100.0);
        assert!(result.pm_gmean >= 0.0 && result.pm_gmean <= 100.0);
        assert!(result.accuracy > 0.0 && result.accuracy <= 100.0);
        assert!(result.detector_update_seconds >= 0.0);
        assert_eq!(result.detector, "RBM-IM");
        assert_eq!(result.drift_count(), result.detections.len());
    }

    #[test]
    fn missing_stream_is_an_error() {
        let err = PipelineBuilder::new().run().unwrap_err();
        assert!(matches!(err, PipelineError::MissingStream));
    }

    #[test]
    fn unknown_detector_spec_is_an_error() {
        let scenario = scenario1(&small_scenario());
        let err = PipelineBuilder::new()
            .boxed_stream(scenario.stream)
            .detector_spec(DetectorSpec::new("nope"))
            .run()
            .unwrap_err();
        assert!(matches!(err, PipelineError::Registry(_)));
    }

    #[test]
    fn bounded_stream_and_max_instances_terminate_the_run() {
        let gen = RandomRbfGenerator::new(5, 3, 2, 0.0, 3);
        let result = PipelineBuilder::new()
            .stream(BoundedStream::new(gen, 2_000))
            .detector_spec(DetectorKind::Fhddm.spec())
            .config(RunConfig { metric_window: 500, ..Default::default() })
            .run()
            .unwrap();
        assert_eq!(result.instances, 2_000);

        let scenario = scenario1(&small_scenario());
        let result = PipelineBuilder::new()
            .boxed_stream(scenario.stream)
            .detector_spec(DetectorKind::Ddm.spec())
            .config(RunConfig {
                metric_window: 200,
                max_instances: Some(1_000),
                ..Default::default()
            })
            .run()
            .unwrap();
        assert_eq!(result.instances, 1_000);
    }

    #[test]
    fn event_sinks_observe_drifts_and_snapshots() {
        let scenario = scenario1(&small_scenario());
        let drifts = RefCell::new(Vec::new());
        let snapshots = RefCell::new(0usize);
        let result = PipelineBuilder::new()
            .boxed_stream(scenario.stream)
            .detector_spec(DetectorKind::Adwin.spec())
            .config(RunConfig {
                metric_window: 500,
                snapshot_every: Some(1_000),
                ..Default::default()
            })
            .on_event(|event| match event {
                PipelineEvent::Drift { position, .. } => drifts.borrow_mut().push(*position),
                PipelineEvent::Snapshot { .. } => *snapshots.borrow_mut() += 1,
                PipelineEvent::Warning { .. } => {}
            })
            .run()
            .unwrap();
        assert_eq!(*drifts.borrow(), result.detections);
        assert_eq!(*snapshots.borrow(), 8, "8k instances / snapshot every 1k");
    }

    #[test]
    fn custom_classifier_drives_the_pipeline() {
        let scenario = scenario1(&small_scenario());
        let result = PipelineBuilder::new()
            .boxed_stream(scenario.stream)
            .classifier_with(|schema| {
                GaussianNaiveBayes::new(schema.num_features, schema.num_classes)
            })
            .detector_spec(DetectorKind::DdmOci.spec())
            .config(RunConfig { metric_window: 500, ..Default::default() })
            .run()
            .unwrap();
        assert_eq!(result.instances, 8_000);
        assert!(result.pm_auc.is_finite());
    }

    #[test]
    fn batched_detector_mode_runs_and_detects() {
        let scenario = scenario1(&small_scenario());
        let batched = PipelineBuilder::new()
            .boxed_stream(scenario.stream)
            .detector_spec(DetectorKind::RbmIm.spec())
            .config(RunConfig { metric_window: 500, detector_batch: 50, ..Default::default() })
            .run()
            .unwrap();
        assert_eq!(batched.instances, 8_000);
        assert!(batched.pm_auc.is_finite());
    }

    #[test]
    fn grid_results_are_row_major_and_labelled() {
        let detectors = vec![DetectorKind::Fhddm.spec(), DetectorKind::RbmIm.spec()];
        let streams: Vec<GridStream> = ["alpha", "beta"]
            .iter()
            .map(|name| {
                GridStream::new(*name, || {
                    Box::new(BoundedStream::new(RandomRbfGenerator::new(6, 3, 2, 0.0, 7), 1_500))
                })
            })
            .collect();
        let config = RunConfig { metric_window: 300, ..Default::default() };
        let results = run_grid(&detectors, &streams, &config).unwrap();
        assert_eq!(results.len(), 4);
        assert_eq!(results[0].stream, "alpha");
        assert_eq!(results[0].detector, "FHDDM");
        assert_eq!(results[1].detector, "RBM-IM");
        assert_eq!(results[2].stream, "beta");
    }

    #[test]
    fn derive_seed_is_stable_and_name_sensitive() {
        assert_eq!(derive_seed(42, "RBF5"), derive_seed(42, "RBF5"));
        assert_ne!(derive_seed(42, "RBF5"), derive_seed(42, "RBF10"));
        assert_ne!(derive_seed(42, "RBF5"), derive_seed(43, "RBF5"));
    }
}
