//! Disk persistence for served streams: spill per-stream checkpoints and
//! prequential metric snapshots to JSON, and load them back for
//! restart-from-disk.
//!
//! A [`SnapshotSink`] owns a directory. Two artifact kinds live in it:
//!
//! * `<stream>.checkpoint.json` — one self-contained
//!   [`StreamCheckpoint`] per stream (schema, effective spec, run config
//!   and complete pipeline state), overwritten on every spill. A restarted
//!   process loads these with [`SnapshotSink::load_checkpoints`] and hands
//!   each to [`ServerHandle::restore_stream`](crate::server::ServerHandle::restore_stream)
//!   so the stream resumes bitwise-identically;
//! * `<stream>.metrics.jsonl` — appended [`PrequentialSnapshot`] lines
//!   (one JSON object per snapshot event), giving dashboards history
//!   across restarts. Feed the sink from a bus subscription via
//!   [`SnapshotSink::record_event`].
//!
//! Stream ids are sanitized into file names (alphanumerics, `-`, `_`, `.`
//! kept; everything else mapped to `_` plus a hash suffix on collision
//! risk), so arbitrary ids cannot escape the sink directory.

use crate::event::{ServeEvent, ServeEventKind};
use crate::server::StreamCheckpoint;
use rbm_im_metrics::PrequentialSnapshot;
use serde::Serialize as _;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// JSON spill directory for checkpoints and metric history.
#[derive(Debug)]
pub struct SnapshotSink {
    dir: PathBuf,
}

impl SnapshotSink {
    /// Opens (creating if needed) a sink over `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(SnapshotSink { dir })
    }

    /// The sink directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Writes (atomically, via a temp file + rename) one stream's
    /// checkpoint, overwriting any previous checkpoint of the same stream.
    /// Returns the file path.
    pub fn spill_checkpoint(&self, checkpoint: &StreamCheckpoint) -> io::Result<PathBuf> {
        let path = self.checkpoint_path(&checkpoint.stream);
        let json = serde_json::to_string_pretty(checkpoint)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let tmp = path.with_extension("json.tmp");
        fs::write(&tmp, json)?;
        fs::rename(&tmp, &path)?;
        Ok(path)
    }

    /// Spills a batch of checkpoints (e.g. the output of
    /// `ServerHandle::checkpoint_all`). Returns the written paths.
    pub fn spill_all(&self, checkpoints: &[StreamCheckpoint]) -> io::Result<Vec<PathBuf>> {
        checkpoints.iter().map(|c| self.spill_checkpoint(c)).collect()
    }

    /// Loads every `*.checkpoint.json` in the sink directory, sorted by
    /// stream id. Files that fail to parse are reported as errors, not
    /// skipped silently.
    pub fn load_checkpoints(&self) -> io::Result<Vec<StreamCheckpoint>> {
        let mut checkpoints = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
            if !name.ends_with(".checkpoint.json") {
                continue;
            }
            let json = fs::read_to_string(&path)?;
            let checkpoint: StreamCheckpoint = serde_json::from_str(&json).map_err(|e| {
                io::Error::new(io::ErrorKind::InvalidData, format!("{}: {e}", path.display()))
            })?;
            checkpoints.push(checkpoint);
        }
        checkpoints.sort_by(|a, b| a.stream.cmp(&b.stream));
        Ok(checkpoints)
    }

    /// Appends one prequential snapshot to the stream's metrics history
    /// (`<stream>.metrics.jsonl`, one JSON object per line).
    pub fn spill_snapshot(
        &self,
        stream: &str,
        position: u64,
        snapshot: &PrequentialSnapshot,
    ) -> io::Result<()> {
        let value = serde::Value::object(vec![
            ("stream", stream.serialize_value()),
            ("position", position.serialize_value()),
            ("snapshot", snapshot.serialize_value()),
        ]);
        let line = serde_json::to_string(&value)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let mut file =
            fs::OpenOptions::new().create(true).append(true).open(self.metrics_path(stream))?;
        writeln!(file, "{line}")
    }

    /// Routes one bus event into the sink: metric snapshots are appended
    /// to the stream's history, everything else is ignored. Wire a bus
    /// subscription loop straight through this.
    pub fn record_event(&self, event: &ServeEvent) -> io::Result<()> {
        match &event.kind {
            ServeEventKind::Snapshot { position, snapshot } => {
                self.spill_snapshot(&event.stream, *position, snapshot)
            }
            _ => Ok(()),
        }
    }

    /// Loads a stream's appended metric history (positions + snapshots).
    pub fn load_metrics(&self, stream: &str) -> io::Result<Vec<(u64, PrequentialSnapshot)>> {
        let path = self.metrics_path(stream);
        if !path.exists() {
            return Ok(Vec::new());
        }
        let mut history = Vec::new();
        for (lineno, line) in fs::read_to_string(&path)?.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let value = serde_json::parse_value(line).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}:{}: {e}", path.display(), lineno + 1),
                )
            })?;
            let read = || -> Result<(u64, PrequentialSnapshot), serde::Error> {
                let position: u64 = value.field("position")?;
                let snapshot = serde::Deserialize::deserialize_value(value.req("snapshot")?)?;
                Ok((position, snapshot))
            };
            history.push(read().map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}:{}: {e}", path.display(), lineno + 1),
                )
            })?);
        }
        Ok(history)
    }

    fn checkpoint_path(&self, stream: &str) -> PathBuf {
        self.dir.join(format!("{}.checkpoint.json", sanitize(stream)))
    }

    fn metrics_path(&self, stream: &str) -> PathBuf {
        self.dir.join(format!("{}.metrics.jsonl", sanitize(stream)))
    }
}

/// Maps a stream id to a safe file stem: benign characters pass through,
/// everything else becomes `_`, and any id that needed mapping (or is
/// empty) gets a disambiguating hash suffix so distinct ids cannot collide
/// on the same file.
fn sanitize(stream: &str) -> String {
    let mapped: String = stream
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.') { c } else { '_' })
        .collect();
    if mapped == stream && !mapped.is_empty() {
        mapped
    } else {
        let hash = rbm_im_streams::source::derive_stream_seed(0x51ac_c0de, stream);
        format!("{mapped}-{hash:016x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_keeps_benign_ids_and_disambiguates_others() {
        assert_eq!(sanitize("feed-01"), "feed-01");
        assert_eq!(sanitize("a.b_c9"), "a.b_c9");
        let odd = sanitize("../escape");
        assert!(!odd.contains('/'), "{odd}");
        assert!(odd.ends_with(|c: char| c.is_ascii_hexdigit()), "{odd}: needs a hash suffix");
        assert_ne!(sanitize("a/b"), sanitize("a:b"), "mapped ids must stay distinct");
        assert!(!sanitize("").is_empty());
    }
}
