//! Synthetic substitutes for the 12 real-world benchmark streams of
//! Table I (top half).
//!
//! The original datasets (Activity-Raw, Connect4, Covertype, Crimes, DJ30,
//! EEG, Electricity, Gas, Olympic, Poker, IntelSensors, Tags) are not
//! redistributable with this repository and are unavailable offline. Each is
//! substituted with a seeded synthetic stream that matches the *published
//! metadata* that drives detector behaviour:
//!
//! * the number of features and classes,
//! * the maximum multi-class imbalance ratio,
//! * whether the stream contains concept drift ("yes" / "unknown" in
//!   Table I — "unknown" streams receive a mild drift so the detectors have
//!   something to find, mirroring the common assumption that real streams
//!   are rarely perfectly stationary),
//! * the instance count, scaled down by a configurable factor (default 10×)
//!   so the full Table III regenerates on a laptop.
//!
//! The substitute is a Gaussian-mixture concept sequence wrapped in an
//! imbalance operator, which exercises exactly the code paths the real
//! streams would (multi-class skew, drift of unknown type, high
//! dimensionality where applicable). Absolute metric values differ from the
//! paper; the detector *ordering* — the paper's actual claim — is preserved
//! because it is driven by imbalance and drift structure rather than by the
//! raw feature values. See DESIGN.md §5.

use crate::drift::{ConceptSequenceStream, DriftEvent, DriftKind, DriftSchedule};
use crate::generators::GaussianMixtureGenerator;
use crate::imbalance::{ImbalanceProfile, ImbalancedStream};
use crate::instance::StreamSchema;
use crate::stream::{BoundedStream, DataStream};

/// Metadata of one real-world benchmark as published in Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct RealWorldSpec {
    /// Benchmark name as used in the paper.
    pub name: &'static str,
    /// Original instance count reported in Table I.
    pub instances: u64,
    /// Number of features.
    pub features: usize,
    /// Number of classes.
    pub classes: usize,
    /// Maximum imbalance ratio between the largest and smallest class.
    pub ir: f64,
    /// Whether Table I marks the stream as containing drift (`true` = "yes",
    /// `false` = "unknown").
    pub known_drift: bool,
}

/// The 12 real-world benchmarks of Table I.
pub const REAL_WORLD_SPECS: [RealWorldSpec; 12] = [
    RealWorldSpec {
        name: "Activity-Raw",
        instances: 1_048_570,
        features: 3,
        classes: 6,
        ir: 128.93,
        known_drift: true,
    },
    RealWorldSpec {
        name: "Connect4",
        instances: 67_557,
        features: 42,
        classes: 3,
        ir: 45.81,
        known_drift: false,
    },
    RealWorldSpec {
        name: "Covertype",
        instances: 581_012,
        features: 54,
        classes: 7,
        ir: 96.14,
        known_drift: false,
    },
    RealWorldSpec {
        name: "Crimes",
        instances: 878_049,
        features: 3,
        classes: 39,
        ir: 106.72,
        known_drift: false,
    },
    RealWorldSpec {
        name: "DJ30",
        instances: 138_166,
        features: 8,
        classes: 30,
        ir: 204.66,
        known_drift: true,
    },
    RealWorldSpec {
        name: "EEG",
        instances: 14_980,
        features: 14,
        classes: 2,
        ir: 29.88,
        known_drift: true,
    },
    RealWorldSpec {
        name: "Electricity",
        instances: 45_312,
        features: 8,
        classes: 2,
        ir: 17.54,
        known_drift: true,
    },
    RealWorldSpec {
        name: "Gas",
        instances: 13_910,
        features: 128,
        classes: 6,
        ir: 138.03,
        known_drift: true,
    },
    RealWorldSpec {
        name: "Olympic",
        instances: 271_116,
        features: 7,
        classes: 4,
        ir: 66.82,
        known_drift: false,
    },
    RealWorldSpec {
        name: "Poker",
        instances: 829_201,
        features: 10,
        classes: 10,
        ir: 144.00,
        known_drift: true,
    },
    RealWorldSpec {
        name: "IntelSensors",
        instances: 2_219_804,
        features: 5,
        classes: 57,
        ir: 348.26,
        known_drift: true,
    },
    RealWorldSpec {
        name: "Tags",
        instances: 164_860,
        features: 4,
        classes: 11,
        ir: 194.28,
        known_drift: false,
    },
];

impl RealWorldSpec {
    /// Looks a spec up by (case-insensitive) name.
    pub fn by_name(name: &str) -> Option<&'static RealWorldSpec> {
        REAL_WORLD_SPECS.iter().find(|s| s.name.eq_ignore_ascii_case(name))
    }

    /// Number of instances the substitute emits when scaled down by
    /// `scale_divisor` (at least 2 000 so every stream still spans several
    /// evaluation windows).
    pub fn scaled_instances(&self, scale_divisor: u64) -> u64 {
        (self.instances / scale_divisor.max(1)).max(2_000)
    }

    /// Builds the synthetic substitute stream.
    ///
    /// * `seed` — reproducibility seed;
    /// * `scale_divisor` — how much to shrink the instance count relative to
    ///   the original dataset (10 reproduces the default harness setting,
    ///   1 regenerates at full published length).
    pub fn build(
        &self,
        seed: u64,
        scale_divisor: u64,
    ) -> BoundedStream<ImbalancedStream<ConceptSequenceStream>> {
        let length = self.scaled_instances(scale_divisor);
        // Drifting substitutes get three concepts (two drifts); "unknown"
        // ones a single mild drift halfway through.
        let (n_concepts, kind) =
            if self.known_drift { (3, DriftKind::Sudden) } else { (2, DriftKind::Gradual) };
        let clusters = if self.features >= 40 { 1 } else { 2 };
        let concepts: Vec<Box<dyn DataStream + Send>> = (0..n_concepts)
            .map(|i| {
                Box::new(GaussianMixtureGenerator::balanced(
                    self.features,
                    self.classes,
                    clusters,
                    seed.wrapping_add(i as u64 * 7919),
                )) as Box<dyn DataStream + Send>
            })
            .collect();
        let width = (length / 10).max(1);
        let schedule = DriftSchedule {
            events: (1..n_concepts as u64)
                .map(|k| DriftEvent { position: length * k / n_concepts as u64, width, kind })
                .collect(),
        };
        let drifting = ConceptSequenceStream::new(concepts, schedule, seed ^ 0xDEAD_BEEF);
        let profile = ImbalanceProfile::geometric(self.classes.max(2), self.ir);
        let imbalanced = ImbalancedStream::new(drifting, profile, seed ^ 0x1234_5678);
        BoundedStream::new(imbalanced, length)
    }

    /// Schema the substitute will expose (without building it).
    pub fn schema(&self) -> StreamSchema {
        StreamSchema::new(self.name, self.features, self.classes.max(2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::StreamExt;

    #[test]
    fn all_specs_match_table_one_counts() {
        assert_eq!(REAL_WORLD_SPECS.len(), 12);
        let names: Vec<&str> = REAL_WORLD_SPECS.iter().map(|s| s.name).collect();
        assert!(names.contains(&"Covertype"));
        assert!(names.contains(&"IntelSensors"));
        // Spot-check a few published values.
        let cover = RealWorldSpec::by_name("covertype").unwrap();
        assert_eq!(cover.features, 54);
        assert_eq!(cover.classes, 7);
        assert!((cover.ir - 96.14).abs() < 1e-9);
        let intel = RealWorldSpec::by_name("IntelSensors").unwrap();
        assert_eq!(intel.classes, 57);
        assert!(intel.known_drift);
    }

    #[test]
    fn by_name_is_case_insensitive_and_total() {
        assert!(RealWorldSpec::by_name("poker").is_some());
        assert!(RealWorldSpec::by_name("POKER").is_some());
        assert!(RealWorldSpec::by_name("nonexistent").is_none());
    }

    #[test]
    fn scaled_instances_has_floor() {
        let eeg = RealWorldSpec::by_name("EEG").unwrap();
        assert_eq!(eeg.scaled_instances(10), 2_000); // 1498 < 2000 floor
        let poker = RealWorldSpec::by_name("Poker").unwrap();
        assert_eq!(poker.scaled_instances(10), 82_920);
        assert_eq!(poker.scaled_instances(0), poker.instances);
    }

    #[test]
    fn substitute_matches_declared_shape() {
        let spec = RealWorldSpec::by_name("Electricity").unwrap();
        let mut stream = spec.build(42, 10);
        let sample = stream.take_instances(3000);
        assert!(!sample.is_empty());
        for inst in &sample {
            assert_eq!(inst.num_features(), spec.features);
            assert!(inst.class < spec.classes);
        }
    }

    #[test]
    fn substitute_is_imbalanced_roughly_as_declared() {
        let spec = RealWorldSpec::by_name("Activity-Raw").unwrap();
        let mut stream = spec.build(7, 10);
        let sample = stream.take_instances(30_000);
        let mut counts = vec![0usize; spec.classes];
        for inst in &sample {
            counts[inst.class] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().filter(|&&c| c > 0).min().unwrap() as f64;
        // Sampling noise on the smallest class is large; just verify a high
        // skew materialized (more than a quarter of the nominal IR).
        assert!(
            max / min > spec.ir / 4.0,
            "observed IR {} too small vs declared {}",
            max / min,
            spec.ir
        );
    }

    #[test]
    fn substitute_is_bounded_and_deterministic() {
        let spec = RealWorldSpec::by_name("EEG").unwrap();
        let mut stream = spec.build(3, 10);
        let all = stream.take_instances(1_000_000);
        assert_eq!(all.len() as u64, spec.scaled_instances(10));
        stream.restart();
        let again = stream.take_instances(100);
        assert_eq!(&all[..100], &again[..]);
    }

    #[test]
    fn high_class_count_streams_build() {
        // Crimes (39 classes) and IntelSensors (57 classes) are the hardest
        // substitutes; make sure they construct and emit many classes.
        for name in ["Crimes", "IntelSensors"] {
            let spec = RealWorldSpec::by_name(name).unwrap();
            let mut stream = spec.build(1, 100);
            let sample = stream.take_instances(5_000);
            let distinct: std::collections::HashSet<usize> =
                sample.iter().map(|i| i.class).collect();
            assert!(
                distinct.len() > spec.classes / 3,
                "{name}: only {} distinct classes",
                distinct.len()
            );
        }
    }
}
