//! Stream-id → shard routing on a consistent-hash ring.
//!
//! The original router was `shard_of = hash(id) % N`, which reassigns
//! almost every stream when the shard count changes — disqualifying for
//! elastic resharding, where a resize must move only the streams whose
//! ownership genuinely changed. The ring fixes that: every shard projects
//! [`StreamRouter::DEFAULT_VIRTUAL_NODES`] pseudo-random points onto the
//! `u64` circle, and a stream id is owned by the shard whose point is the
//! id's clockwise successor. A shard's points depend only on its own index,
//! so growing N→M leaves all existing points in place and adding/removing a
//! shard moves only the ids whose successor changed — in expectation `K/M`
//! of `K` streams per added shard, against `K·(1−1/M)` for the modulo
//! router (`crates/serve/tests/router_quality.rs` pins both the uniformity
//! of placement and this movement bound).

use rbm_im_streams::source::derive_stream_seed;

/// Fixed routing salt: `shard_of` must be a pure function of the stream id
/// and the shard count (attach and ingest may be called from different
/// threads and must agree without coordination), so the hash base is a
/// constant rather than the server's configurable seed.
const ROUTER_SALT: u64 = 0x5eed_0000_1207_a11b;

/// Hashes stream ids onto shards via a consistent-hash ring with virtual
/// nodes. Deterministic: the same id always lands on the same shard for a
/// given shard count, with no shared table and no locking on the ingest
/// path. Cheap to clone (the ring is a sorted point vector).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamRouter {
    num_shards: usize,
    virtual_nodes: usize,
    /// Ring points sorted by position: `(point, shard)`.
    ring: Vec<(u64, usize)>,
}

impl StreamRouter {
    /// Virtual nodes per shard: enough that the largest/smallest shard load
    /// stays within a few percent of uniform at realistic shard counts.
    pub const DEFAULT_VIRTUAL_NODES: usize = 64;

    /// A router over `num_shards` shards (must be ≥ 1) with the default
    /// virtual-node count.
    pub fn new(num_shards: usize) -> Self {
        Self::with_virtual_nodes(num_shards, Self::DEFAULT_VIRTUAL_NODES)
    }

    /// A router with an explicit virtual-node count (tests and tuning).
    pub fn with_virtual_nodes(num_shards: usize, virtual_nodes: usize) -> Self {
        assert!(num_shards >= 1, "a server needs at least one shard");
        assert!(virtual_nodes >= 1, "a shard needs at least one ring point");
        let mut ring = Vec::with_capacity(num_shards * virtual_nodes);
        for shard in 0..num_shards {
            for vnode in 0..virtual_nodes {
                ring.push((vnode_point(shard, vnode), shard));
            }
        }
        // Sorting by (point, shard) makes collisions (astronomically rare
        // on a u64 circle) deterministic.
        ring.sort_unstable();
        StreamRouter { num_shards, virtual_nodes, ring }
    }

    /// Number of shards routed over.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// Virtual nodes per shard.
    pub fn virtual_nodes(&self) -> usize {
        self.virtual_nodes
    }

    /// The shard owning `stream_id`: the id hashes to a point on the `u64`
    /// circle and is owned by the clockwise-next ring point's shard.
    pub fn shard_of(&self, stream_id: &str) -> usize {
        let point = derive_stream_seed(ROUTER_SALT, stream_id);
        // Successor lookup: first ring point strictly above the id's point,
        // wrapping to the first point of the circle.
        let idx = self.ring.partition_point(|&(p, _)| p <= point);
        let idx = if idx == self.ring.len() { 0 } else { idx };
        self.ring[idx].1
    }
}

/// Ring position of one virtual node: a SplitMix64-style mix of the shard
/// and vnode indices. Depends only on `(shard, vnode)` — never on the total
/// shard count — which is what makes the ring consistent under resizes.
fn vnode_point(shard: usize, vnode: usize) -> u64 {
    let mut z = (shard as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((vnode as u64).wrapping_mul(0xD1B5_4A32_D192_ED03))
        ^ ROUTER_SALT;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_stable_and_in_range() {
        let router = StreamRouter::new(8);
        for i in 0..256 {
            let id = format!("feed-{i:03}");
            let shard = router.shard_of(&id);
            assert!(shard < 8);
            assert_eq!(shard, router.shard_of(&id));
        }
    }

    #[test]
    fn single_shard_takes_everything() {
        let router = StreamRouter::new(1);
        assert_eq!(router.shard_of("anything"), 0);
        assert_eq!(router.shard_of(""), 0);
    }

    #[test]
    fn many_streams_spread_over_shards() {
        let router = StreamRouter::new(8);
        let mut counts = [0usize; 8];
        for i in 0..512 {
            counts[router.shard_of(&format!("feed-{i:04}"))] += 1;
        }
        // No shard should be starved or hold the bulk of 512 uniform ids.
        for (shard, &count) in counts.iter().enumerate() {
            assert!(
                count > 20 && count < 160,
                "shard {shard} got a pathological share: {count}/512"
            );
        }
    }

    #[test]
    fn growing_the_ring_only_reassigns_to_new_shards() {
        // Consistency: an id that moves under a grow must move *to* one of
        // the added shards — never between surviving shards.
        let before = StreamRouter::new(6);
        let after = StreamRouter::new(8);
        for i in 0..1_000 {
            let id = format!("stream-{i:05}");
            let old = before.shard_of(&id);
            let new = after.shard_of(&id);
            assert!(new == old || new >= 6, "{id}: moved {old} → {new}, not to an added shard");
        }
    }

    #[test]
    fn shrinking_the_ring_only_moves_streams_of_removed_shards() {
        let before = StreamRouter::new(8);
        let after = StreamRouter::new(5);
        for i in 0..1_000 {
            let id = format!("stream-{i:05}");
            let old = before.shard_of(&id);
            let new = after.shard_of(&id);
            if old < 5 {
                assert_eq!(new, old, "{id}: surviving shard's stream must not move");
            } else {
                assert!(new < 5);
            }
        }
    }

    #[test]
    #[should_panic]
    fn zero_shards_rejected() {
        StreamRouter::new(0);
    }
}
