//! Friedman ranking test with the Bonferroni–Dunn post-hoc procedure.
//!
//! The paper compares 6 drift detectors over 24 benchmark streams (Tab. III)
//! and reports average ranks plus Bonferroni–Dunn critical-difference
//! diagrams (Figs. 4 and 5). This module reproduces that machinery:
//!
//! * the Friedman chi-squared statistic and Iman–Davenport F variant,
//! * average ranks per algorithm (with midrank tie handling),
//! * the Bonferroni–Dunn critical difference at a significance level α.

use crate::descriptive::rank_with_ties;
use crate::distributions::{ChiSquared, ContinuousDistribution, FisherF, Normal};
use crate::{Result, StatsError};

/// Result of the Friedman test over `k` algorithms and `n` datasets.
#[derive(Debug, Clone, PartialEq)]
pub struct FriedmanResult {
    /// Average rank of each algorithm (lower is better; same order as the
    /// rows passed to [`friedman_test`]).
    pub average_ranks: Vec<f64>,
    /// Friedman chi-squared statistic.
    pub chi_squared: f64,
    /// p-value of the chi-squared statistic.
    pub p_value: f64,
    /// Iman–Davenport F statistic (less conservative variant).
    pub iman_davenport_f: f64,
    /// p-value of the Iman–Davenport statistic.
    pub iman_davenport_p: f64,
    /// Number of algorithms `k`.
    pub n_algorithms: usize,
    /// Number of datasets `n`.
    pub n_datasets: usize,
}

/// Runs the Friedman test.
///
/// `scores[i][j]` is the performance of algorithm `i` on dataset `j`.
/// `higher_is_better` controls the ranking direction (pmAUC and pmGM are
/// both "higher is better"). At least 2 algorithms and 2 datasets are
/// required; every algorithm must have a score for every dataset.
pub fn friedman_test(scores: &[Vec<f64>], higher_is_better: bool) -> Result<FriedmanResult> {
    let k = scores.len();
    if k < 2 {
        return Err(StatsError::InsufficientData { needed: 2, got: k });
    }
    let n = scores[0].len();
    if n < 2 {
        return Err(StatsError::InsufficientData { needed: 2, got: n });
    }
    if scores.iter().any(|row| row.len() != n) {
        return Err(StatsError::InvalidParameter(
            "all algorithms need scores on all datasets".into(),
        ));
    }

    // Rank algorithms within each dataset.
    let mut rank_sums = vec![0.0; k];
    for j in 0..n {
        let column: Vec<f64> =
            scores.iter().map(|row| if higher_is_better { -row[j] } else { row[j] }).collect();
        let ranks = rank_with_ties(&column);
        for i in 0..k {
            rank_sums[i] += ranks[i];
        }
    }
    let average_ranks: Vec<f64> = rank_sums.iter().map(|s| s / n as f64).collect();

    let nf = n as f64;
    let kf = k as f64;
    let sum_r2: f64 = average_ranks.iter().map(|r| r * r).sum();
    let chi_squared = 12.0 * nf / (kf * (kf + 1.0)) * (sum_r2 - kf * (kf + 1.0) * (kf + 1.0) / 4.0);
    let chi_dist = ChiSquared::new(kf - 1.0);
    let p_value = chi_dist.sf(chi_squared);

    // Iman–Davenport correction: F = (n-1) χ² / (n(k-1) − χ²), ~ F(k−1, (k−1)(n−1)).
    let denom = nf * (kf - 1.0) - chi_squared;
    let (iman_davenport_f, iman_davenport_p) = if denom <= 0.0 {
        (f64::INFINITY, 0.0)
    } else {
        let f = (nf - 1.0) * chi_squared / denom;
        let fd = FisherF::new(kf - 1.0, (kf - 1.0) * (nf - 1.0));
        (f, fd.sf(f))
    };

    Ok(FriedmanResult {
        average_ranks,
        chi_squared,
        p_value,
        iman_davenport_f,
        iman_davenport_p,
        n_algorithms: k,
        n_datasets: n,
    })
}

/// Bonferroni–Dunn critical difference for comparing `k` algorithms over `n`
/// datasets against a control at significance level `alpha`:
///
/// `CD = q_α · sqrt(k (k + 1) / (6 n))`
///
/// where `q_α = z_{α / (2(k−1))}` is the Bonferroni-corrected two-sided
/// normal critical value (Demšar 2006).
pub fn bonferroni_dunn_critical_difference(k: usize, n: usize, alpha: f64) -> Result<f64> {
    if k < 2 || n < 2 {
        return Err(StatsError::InsufficientData { needed: 2, got: k.min(n) });
    }
    if !(alpha > 0.0 && alpha < 1.0) {
        return Err(StatsError::InvalidParameter(format!("alpha must be in (0,1), got {alpha}")));
    }
    let kf = k as f64;
    let nf = n as f64;
    let adjusted = alpha / (2.0 * (kf - 1.0));
    let q = Normal::standard().quantile(1.0 - adjusted);
    Ok(q * (kf * (kf + 1.0) / (6.0 * nf)).sqrt())
}

/// Identifies, for a control algorithm, which competitors are significantly
/// worse according to the Bonferroni–Dunn procedure: returns a vector of
/// booleans aligned with `average_ranks` where `true` means "significantly
/// different from the control".
pub fn bonferroni_dunn_significant(
    average_ranks: &[f64],
    control_index: usize,
    n_datasets: usize,
    alpha: f64,
) -> Result<Vec<bool>> {
    if control_index >= average_ranks.len() {
        return Err(StatsError::InvalidParameter(format!(
            "control index {control_index} out of range for {} algorithms",
            average_ranks.len()
        )));
    }
    let cd = bonferroni_dunn_critical_difference(average_ranks.len(), n_datasets, alpha)?;
    let control = average_ranks[control_index];
    Ok(average_ranks.iter().map(|r| (r - control).abs() > cd).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clearly_dominant_algorithm_detected() {
        // Algorithm 0 always best, algorithm 2 always worst, on 10 datasets.
        let scores = vec![
            (0..10).map(|j| 0.9 + 0.001 * j as f64).collect::<Vec<_>>(),
            (0..10).map(|j| 0.7 + 0.001 * j as f64).collect::<Vec<_>>(),
            (0..10).map(|j| 0.5 + 0.001 * j as f64).collect::<Vec<_>>(),
        ];
        let res = friedman_test(&scores, true).unwrap();
        assert!(res.average_ranks[0] < res.average_ranks[1]);
        assert!(res.average_ranks[1] < res.average_ranks[2]);
        assert_eq!(res.average_ranks[0], 1.0);
        assert_eq!(res.average_ranks[2], 3.0);
        assert!(res.p_value < 0.001, "p = {}", res.p_value);
        assert!(res.iman_davenport_p <= res.p_value + 1e-12);
    }

    #[test]
    fn rank_direction_respected() {
        let scores = vec![vec![0.9, 0.8, 0.95], vec![0.1, 0.2, 0.15]];
        let high = friedman_test(&scores, true).unwrap();
        assert!(high.average_ranks[0] < high.average_ranks[1]);
        // If lower is better (e.g. error rates), ranking flips.
        let low = friedman_test(&scores, false).unwrap();
        assert!(low.average_ranks[0] > low.average_ranks[1]);
    }

    #[test]
    fn indistinguishable_algorithms_not_significant() {
        // Alternating winners — ranks average out.
        let a: Vec<f64> = (0..20).map(|j| if j % 2 == 0 { 0.8 } else { 0.7 }).collect();
        let b: Vec<f64> = (0..20).map(|j| if j % 2 == 0 { 0.7 } else { 0.8 }).collect();
        let res = friedman_test([a, b].as_ref(), true).unwrap();
        assert!((res.average_ranks[0] - res.average_ranks[1]).abs() < 1e-12);
        assert!(res.p_value > 0.5);
    }

    #[test]
    fn ties_within_dataset_get_midranks() {
        let scores = vec![vec![0.5, 0.6], vec![0.5, 0.6], vec![0.4, 0.2]];
        let res = friedman_test(&scores, true).unwrap();
        assert_eq!(res.average_ranks[0], 1.5);
        assert_eq!(res.average_ranks[1], 1.5);
        assert_eq!(res.average_ranks[2], 3.0);
    }

    #[test]
    fn average_ranks_sum_is_invariant() {
        // Σ average ranks = k(k+1)/2 regardless of the data.
        let scores = vec![
            vec![0.3, 0.9, 0.4, 0.6],
            vec![0.8, 0.1, 0.45, 0.61],
            vec![0.2, 0.5, 0.9, 0.3],
            vec![0.6, 0.6, 0.2, 0.8],
        ];
        let res = friedman_test(&scores, true).unwrap();
        let sum: f64 = res.average_ranks.iter().sum();
        assert!((sum - 10.0).abs() < 1e-12);
    }

    #[test]
    fn critical_difference_matches_published_value() {
        // Demšar (2006): for k = 5, n = 30 and α = 0.05 the Bonferroni–Dunn
        // CD is about 1.02 (q ≈ 2.498).
        let cd = bonferroni_dunn_critical_difference(5, 30, 0.05).unwrap();
        assert!((cd - 1.02).abs() < 0.02, "cd = {cd}");
        // Paper setting: k = 6 detectors, n = 24 streams.
        let cd_paper = bonferroni_dunn_critical_difference(6, 24, 0.05).unwrap();
        assert!(cd_paper > 1.3 && cd_paper < 1.6, "cd = {cd_paper}");
    }

    #[test]
    fn significance_flags_relative_to_control() {
        let ranks = vec![1.2, 2.0, 4.5, 5.0];
        let flags = bonferroni_dunn_significant(&ranks, 0, 24, 0.05).unwrap();
        assert!(!flags[0]);
        assert!(!flags[1]);
        assert!(flags[2]);
        assert!(flags[3]);
    }

    #[test]
    fn error_handling() {
        assert!(matches!(
            friedman_test(&[vec![1.0, 2.0]], true),
            Err(StatsError::InsufficientData { .. })
        ));
        assert!(matches!(
            friedman_test(&[vec![1.0], vec![2.0]], true),
            Err(StatsError::InsufficientData { .. })
        ));
        assert!(matches!(
            friedman_test(&[vec![1.0, 2.0], vec![2.0]], true),
            Err(StatsError::InvalidParameter(_))
        ));
        assert!(bonferroni_dunn_critical_difference(1, 10, 0.05).is_err());
        assert!(bonferroni_dunn_critical_difference(5, 10, 0.0).is_err());
        assert!(bonferroni_dunn_significant(&[1.0, 2.0], 5, 10, 0.05).is_err());
    }
}
