//! Experiment 3 — robustness to increasing imbalance ratio (Fig. 9).
//!
//! For each synthetic configuration the paper sweeps the multi-class
//! imbalance ratio over {50, 100, 200, 300, 400, 500} while keeping global
//! drift, dynamic imbalance and class-role switching active (Scenario 2),
//! and reports the pmAUC of the classifier driven by each detector.

use crate::detectors::DetectorKind;
use crate::pipeline::{run_grid_observed, GridStream, RunConfig, RunResult};
use crate::registry::DetectorRegistry;
use rbm_im_streams::drift::DriftKind;
use rbm_im_streams::scenarios::{scenario2, ScenarioConfig};
use serde::{Deserialize, Serialize};

/// Configuration of Experiment 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Experiment3Config {
    /// Detectors to evaluate.
    pub detectors: Vec<DetectorKind>,
    /// Number of features of the synthetic stream.
    pub num_features: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// Stream length in instances.
    pub length: u64,
    /// Imbalance ratios to sweep (the paper's grid when empty).
    pub imbalance_ratios: Vec<f64>,
    /// Number of global drift events.
    pub n_drifts: usize,
    /// Seed.
    pub seed: u64,
    /// Prequential run settings.
    pub run: RunConfig,
}

impl Default for Experiment3Config {
    fn default() -> Self {
        Experiment3Config {
            detectors: DetectorKind::paper_detectors(),
            num_features: 20,
            num_classes: 5,
            length: 50_000,
            imbalance_ratios: vec![50.0, 100.0, 200.0, 300.0, 400.0, 500.0],
            n_drifts: 2,
            seed: 42,
            run: RunConfig::default(),
        }
    }
}

/// One point of the Fig. 9 series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImbalancePoint {
    /// Imbalance ratio at this point.
    pub imbalance_ratio: f64,
    /// Run outcome of each detector.
    pub runs: Vec<RunResult>,
}

/// Full outcome of Experiment 3.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Experiment3Result {
    /// Swept points in increasing imbalance ratio.
    pub points: Vec<ImbalancePoint>,
    /// Detector order.
    pub detectors: Vec<DetectorKind>,
}

impl Experiment3Result {
    /// pmAUC series of one detector, aligned with `points`.
    pub fn series(&self, detector: DetectorKind) -> Vec<f64> {
        self.points
            .iter()
            .map(|p| {
                p.runs
                    .iter()
                    .find(|r| r.detector == detector.name())
                    .map(|r| r.pm_auc)
                    .unwrap_or(f64::NAN)
            })
            .collect()
    }
}

/// Runs the imbalance-ratio sweep: all (ratio × detector) cells form one
/// parallel grid. `progress` fires live as each cell completes (completion
/// order); the returned points are in deterministic ratio order.
pub fn run_experiment3(
    config: &Experiment3Config,
    progress: impl FnMut(f64, &RunResult) + Send,
) -> Experiment3Result {
    let ratios = if config.imbalance_ratios.is_empty() {
        vec![50.0, 100.0, 200.0, 300.0, 400.0, 500.0]
    } else {
        config.imbalance_ratios.clone()
    };
    let detectors: Vec<_> = config.detectors.iter().map(|d| d.spec()).collect();
    let streams: Vec<GridStream> = ratios
        .iter()
        .map(|&ir| {
            let scenario_config = ScenarioConfig {
                num_features: config.num_features,
                num_classes: config.num_classes,
                length: config.length,
                imbalance_ratio: ir,
                n_drifts: config.n_drifts,
                drift_kind: DriftKind::Sudden,
                seed: config.seed,
            };
            GridStream::new(format!("scenario2-ir{ir}"), move || scenario2(&scenario_config).stream)
        })
        .collect();
    // Recover the swept ratio of a completed cell from its stream label.
    let ir_by_name: std::collections::BTreeMap<String, f64> =
        streams.iter().map(|s| s.name.clone()).zip(ratios.iter().copied()).collect();
    let progress = std::sync::Mutex::new(progress);
    let results =
        run_grid_observed(DetectorRegistry::global(), &detectors, &streams, &config.run, |run| {
            let ir = ir_by_name[&run.stream];
            (progress.lock().expect("progress sink poisoned"))(ir, run);
        })
        .expect("every DetectorKind resolves against the default registry");
    let mut points = Vec::new();
    for (chunk, &ir) in results.chunks(detectors.len().max(1)).zip(ratios.iter()) {
        points.push(ImbalancePoint { imbalance_ratio: ir, runs: chunk.to_vec() });
    }
    Experiment3Result { points, detectors: config.detectors.clone() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_one_point_per_ratio() {
        let config = Experiment3Config {
            detectors: vec![DetectorKind::Ddm, DetectorKind::RbmIm],
            num_features: 8,
            num_classes: 3,
            length: 4_000,
            imbalance_ratios: vec![10.0, 50.0],
            n_drifts: 1,
            seed: 5,
            run: RunConfig { metric_window: 500, ..Default::default() },
        };
        let mut calls = 0usize;
        let result = run_experiment3(&config, |_, _| calls += 1);
        assert_eq!(calls, 4);
        assert_eq!(result.points.len(), 2);
        assert_eq!(result.points[0].imbalance_ratio, 10.0);
        let series = result.series(DetectorKind::RbmIm);
        assert_eq!(series.len(), 2);
        assert!(series.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn empty_ratio_list_falls_back_to_paper_grid() {
        let config = Experiment3Config { imbalance_ratios: Vec::new(), ..Default::default() };
        assert!(config.imbalance_ratios.is_empty());
        // The fallback grid is applied inside run_experiment3; validate the
        // constant here to keep it in sync with the paper.
        let expected = [50.0, 100.0, 200.0, 300.0, 400.0, 500.0];
        assert_eq!(Experiment3Config::default().imbalance_ratios, expected);
    }
}
