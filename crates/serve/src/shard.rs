//! Shard worker threads: each shard exclusively owns the pipeline state of
//! the streams routed to it.
//!
//! A shard is a plain loop over its bounded ingest channel. All state —
//! classifier, detector, prequential evaluator, and the pooled RBM scratch
//! [`Workspace`](rbm_im::Workspace)s — lives on the worker thread;
//! correctness needs no locks because nothing is shared. Per-stream
//! instance order is the channel order, so results are independent of how
//! streams interleave: every stream steps through exactly the code a
//! sequential [`PipelineBuilder`](rbm_im_harness::pipeline::PipelineBuilder)
//! run executes ([`PipelineStepper`]).

use crate::event::{EventBus, ServeEvent, ServeEventKind};
use crate::server::{ServeError, StreamSummary};
use rbm_im::pool::WorkspacePool;
use rbm_im::RbmIm;
use rbm_im_detectors::DriftDetector;
use rbm_im_harness::pipeline::{RunConfig, RunResult};
use rbm_im_harness::registry::{DetectorRegistry, DetectorSpec};
use rbm_im_harness::stepper::PipelineStepper;
use rbm_im_streams::{Instance, StreamSchema};
use std::collections::HashMap;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;

/// One or many instances carried by an ingest message. Client-side
/// micro-batches (`try_ingest_batch`) amortize channel traffic; either way
/// the pipeline's `detector_batch` micro-batching governs how observations
/// reach the detector kernels.
#[derive(Debug)]
pub(crate) enum Payload {
    /// A single instance.
    One(Instance),
    /// A client-side micro-batch, in per-stream arrival order.
    Many(Vec<Instance>),
}

impl Payload {
    pub(crate) fn into_instances(self) -> Vec<Instance> {
        match self {
            Payload::One(instance) => vec![instance],
            Payload::Many(instances) => instances,
        }
    }

    fn len(&self) -> u64 {
        match self {
            Payload::One(_) => 1,
            Payload::Many(instances) => instances.len() as u64,
        }
    }
}

/// Control/data messages of a shard's ingest channel. FIFO channel order
/// doubles as the consistency mechanism: a `Drain` marker reaching the
/// worker proves every earlier ingest has been fully processed.
pub(crate) enum ShardMsg {
    /// Create pipeline state for a stream.
    Attach {
        id: Arc<str>,
        schema: StreamSchema,
        spec: DetectorSpec,
        run: RunConfig,
        reply: Sender<Result<(), ServeError>>,
    },
    /// Close a stream's pipeline and report its final summary.
    Detach { id: Arc<str>, reply: Sender<Result<RunResult, ServeError>> },
    /// Instances for one stream.
    Ingest { id: Arc<str>, payload: Payload },
    /// Barrier: replied to once every earlier message is processed.
    Drain { reply: Sender<()> },
    /// Graceful stop: the worker finalizes every attached stream (flushing
    /// trailing detector micro-batches) and exits with its report.
    Shutdown,
}

/// Per-stream pipeline state owned by a shard.
struct StreamState {
    stepper: PipelineStepper,
    /// Whether the detector adopted a pooled workspace at attach (and must
    /// return it at close).
    pooled_workspace: bool,
}

/// What a shard hands back when it stops.
pub(crate) struct ShardReport {
    pub summaries: Vec<StreamSummary>,
    pub dropped_unknown: u64,
    pub workspace_reuse_hits: u64,
    pub workspace_reuse_misses: u64,
}

/// The worker owning one shard's streams.
pub(crate) struct ShardWorker {
    index: usize,
    registry: Arc<DetectorRegistry>,
    bus: Arc<EventBus>,
    streams: HashMap<Arc<str>, StreamState>,
    /// RBM scratch workspaces pooled across this shard's streams: attach
    /// checks one out, detach returns it, so successive streams inherit
    /// grown buffer capacity instead of re-allocating (`rbm_im::pool`).
    pool: WorkspacePool,
    /// Instances ingested for ids with no attached pipeline (dropped).
    dropped_unknown: u64,
}

impl ShardWorker {
    pub(crate) fn new(index: usize, registry: Arc<DetectorRegistry>, bus: Arc<EventBus>) -> Self {
        ShardWorker {
            index,
            registry,
            bus,
            streams: HashMap::new(),
            pool: WorkspacePool::new(),
            dropped_unknown: 0,
        }
    }

    /// The worker loop: runs until `Shutdown` (or every sender hung up),
    /// then finalizes all remaining streams.
    pub(crate) fn run(mut self, inbox: Receiver<ShardMsg>) -> ShardReport {
        while let Ok(msg) = inbox.recv() {
            match msg {
                ShardMsg::Attach { id, schema, spec, run, reply } => {
                    let result = self.attach(Arc::clone(&id), &schema, &spec, run);
                    let _ = reply.send(result);
                }
                ShardMsg::Ingest { id, payload } => self.ingest(&id, payload),
                ShardMsg::Detach { id, reply } => {
                    let result = match self.streams.remove(&id) {
                        Some(state) => Ok(self.close_stream(&id, state)),
                        None => Err(ServeError::UnknownStream(id.to_string())),
                    };
                    let _ = reply.send(result);
                }
                ShardMsg::Drain { reply } => {
                    let _ = reply.send(());
                }
                ShardMsg::Shutdown => break,
            }
        }
        // Finalize every stream still attached, in id order so reports are
        // deterministic.
        let mut ids: Vec<Arc<str>> = self.streams.keys().cloned().collect();
        ids.sort();
        let mut summaries = Vec::with_capacity(ids.len());
        for id in ids {
            let state = self.streams.remove(&id).expect("stream present");
            let result = self.close_stream(&id, state);
            summaries.push(StreamSummary { stream: id.to_string(), shard: self.index, result });
        }
        ShardReport {
            summaries,
            dropped_unknown: self.dropped_unknown,
            workspace_reuse_hits: self.pool.reuse_hits(),
            workspace_reuse_misses: self.pool.reuse_misses(),
        }
    }

    fn attach(
        &mut self,
        id: Arc<str>,
        schema: &StreamSchema,
        spec: &DetectorSpec,
        run: RunConfig,
    ) -> Result<(), ServeError> {
        if self.streams.contains_key(&id) {
            return Err(ServeError::AlreadyAttached(id.to_string()));
        }
        let mut stepper = PipelineStepper::from_spec(&self.registry, spec, schema, run)
            .map_err(ServeError::from)?;
        // RBM-family detectors adopt a pooled scratch workspace so a new
        // stream inherits the buffer capacity grown by its predecessors.
        let pooled_workspace = match stepper.detector_mut().as_any_mut() {
            Some(any) => match any.downcast_mut::<RbmIm>() {
                Some(rbm) => {
                    // The replaced workspace is the detector's pristine
                    // (capacity-free) one; nothing worth pooling.
                    let _ = rbm.adopt_workspace(self.pool.checkout());
                    true
                }
                None => false,
            },
            None => false,
        };
        self.bus.publish(ServeEvent {
            stream: Arc::clone(&id),
            shard: self.index,
            kind: ServeEventKind::Attached,
        });
        self.streams.insert(id, StreamState { stepper, pooled_workspace });
        Ok(())
    }

    fn ingest(&mut self, id: &Arc<str>, payload: Payload) {
        let Some(state) = self.streams.get_mut(id) else {
            self.dropped_unknown += payload.len();
            return;
        };
        let bus = &self.bus;
        let shard = self.index;
        let mut on_event = |event: &rbm_im_harness::pipeline::PipelineEvent<'_>| {
            bus.publish(ServeEvent {
                stream: Arc::clone(id),
                shard,
                kind: ServeEventKind::from_pipeline(event),
            });
        };
        match payload {
            Payload::One(instance) => state.stepper.step(instance, &mut on_event),
            Payload::Many(instances) => {
                for instance in instances {
                    state.stepper.step(instance, &mut on_event);
                }
            }
        }
    }

    /// Flushes the stream's trailing detector micro-batch (emitting its
    /// events), reclaims a pooled workspace, publishes the `Detached`
    /// event and returns the final summary.
    fn close_stream(&mut self, id: &Arc<str>, state: StreamState) -> RunResult {
        let bus = &self.bus;
        let shard = self.index;
        let mut on_event = |event: &rbm_im_harness::pipeline::PipelineEvent<'_>| {
            bus.publish(ServeEvent {
                stream: Arc::clone(id),
                shard,
                kind: ServeEventKind::from_pipeline(event),
            });
        };
        let (result, mut detector) = state.stepper.finish(id.to_string(), &mut on_event);
        if state.pooled_workspace {
            if let Some(rbm) = detector.as_any_mut().and_then(|any| any.downcast_mut::<RbmIm>()) {
                self.pool.restore(rbm.take_workspace());
            }
        }
        self.bus.publish(ServeEvent {
            stream: Arc::clone(id),
            shard: self.index,
            kind: ServeEventKind::Detached { result: result.clone() },
        });
        result
    }
}
