//! Ablation bench (DESIGN.md): cost and behaviour of RBM-IM variants
//! (class-balanced loss off, persistence off, coarse batches, fixed window)
//! on a Scenario-3 stream with a single drifting minority class.
//!
//! Every variant trains through the batched flat-kernel CD-k
//! (`rbm_im::linalg` + `RbmNetwork::train_flat`), so ablation timing
//! differences reflect the variants' detection behaviour, not allocator
//! noise from the old per-instance loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rbm_im_harness::ablation::{run_ablation, AblationVariant};
use rbm_im_streams::scenarios::ScenarioConfig;

fn bench_ablation(c: &mut Criterion) {
    rbm_im_bench::print_runner_metadata();
    let mut group = c.benchmark_group("ablation_rbm");
    group.sample_size(10);
    let scenario = ScenarioConfig {
        num_features: 10,
        num_classes: 4,
        length: 3_000,
        imbalance_ratio: 20.0,
        n_drifts: 1,
        seed: 21,
        ..Default::default()
    };
    for variant in AblationVariant::all() {
        group.bench_with_input(BenchmarkId::new("scenario3", variant.name()), &variant, |b, &v| {
            b.iter(|| run_ablation(v, &scenario, 1, 2_000))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
